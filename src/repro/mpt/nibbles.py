"""Nibble-path helpers for the Patricia trie.

Keys are fixed-size byte strings; the trie branches on 4-bit nibbles
(hexadecimal base, as in Ethereum).
"""

from __future__ import annotations

from typing import Tuple

Nibbles = Tuple[int, ...]


def bytes_to_nibbles(data: bytes) -> Nibbles:
    """Split each byte into (high, low) nibbles."""
    out = []
    for byte in data:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return tuple(out)


def nibbles_to_bytes(nibbles: Nibbles) -> bytes:
    """Inverse of :func:`bytes_to_nibbles` (even length required)."""
    if len(nibbles) % 2:
        raise ValueError("odd nibble path cannot round-trip to bytes")
    return bytes(
        (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
    )


def pack_nibbles(nibbles: Nibbles) -> bytes:
    """Length-prefixed packed encoding usable for odd-length paths."""
    padded = nibbles + (0,) if len(nibbles) % 2 else nibbles
    body = nibbles_to_bytes(padded)
    return bytes([len(nibbles) & 0xFF, len(nibbles) >> 8]) + body


def unpack_nibbles(data: bytes) -> Tuple[Nibbles, int]:
    """Decode :func:`pack_nibbles`; returns (nibbles, bytes consumed)."""
    length = data[0] | (data[1] << 8)
    body_len = (length + 1) // 2
    nibbles = bytes_to_nibbles(data[2 : 2 + body_len])[:length]
    return nibbles, 2 + body_len


def common_prefix_len(a: Nibbles, b: Nibbles) -> int:
    """Length of the longest common prefix of two nibble paths."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit
