"""Merkle Patricia Trie — Ethereum's authenticated index (Section 1, Fig. 1).

The trie is content-addressed: every node is stored in the backing KV
store under its own digest, so an update writes fresh copies of the whole
search path.  In *persistent* mode (the MPT baseline) the obsolete copies
are kept, which is what lets any historical root be traversed for
provenance — and what makes the index dominate blockchain storage.  In
*transient* mode (used by CMI's upper index) obsolete nodes are deleted,
keeping only the live trie.
"""

from repro.mpt.trie import MPTrie
from repro.mpt.proof import MPTProof, verify_mpt_proof

__all__ = ["MPTrie", "MPTProof", "verify_mpt_proof"]
