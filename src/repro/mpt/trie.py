"""The Merkle Patricia Trie over a KV node store.

``put`` is purely functional on the node graph: it returns the new root
digest and records which nodes were created and which were superseded.
The owner decides persistence policy: the MPT baseline keeps superseded
nodes (provenance via historical roots, at the storage cost the paper
quantifies); CMI's upper index deletes them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import IntegrityError
from repro.common.hashing import Digest
from repro.kvstore import LSMStore
from repro.mpt.nibbles import Nibbles, bytes_to_nibbles, common_prefix_len
from repro.mpt.node import (
    BranchNode,
    ExtensionNode,
    LeafNode,
    MPTNode,
    decode_node,
    encode_node,
    node_digest,
)
from repro.mpt.proof import MPTProof


class MPTrie:
    """A Patricia trie whose nodes live in an :class:`LSMStore`."""

    def __init__(self, store: LSMStore, persistent: bool = True) -> None:
        """Wrap ``store``.

        Args:
            store: node storage (digest -> serialized node).
            persistent: keep superseded nodes (Ethereum-style).  When
                False, superseded nodes are deleted — the "non-persistent
                MPT" of the CMI baseline.
        """
        self.store = store
        self.persistent = persistent
        self.nodes_written = 0
        self.node_bytes_written = 0

    # -- node IO -------------------------------------------------------------------

    def _load(self, digest: Digest) -> MPTNode:
        data = self.store.get(b"n" + digest)
        if data is None:
            raise IntegrityError(f"missing MPT node {digest.hex()[:16]}")
        return decode_node(data)

    def _save(self, node: MPTNode) -> Digest:
        data = encode_node(node)
        digest = node_digest(node)
        self.store.put(b"n" + digest, data)
        self.nodes_written += 1
        self.node_bytes_written += len(data)
        return digest

    def _discard(self, digest: Digest) -> None:
        if not self.persistent:
            self.store.delete(b"n" + digest)

    # -- write ----------------------------------------------------------------------

    def put(self, root: Optional[Digest], key: bytes, value: bytes) -> Digest:
        """Insert/overwrite ``key`` under ``root``; returns the new root."""
        path = bytes_to_nibbles(key)
        return self._insert(root, path, value)

    def _insert(self, ref: Optional[Digest], path: Nibbles, value: bytes) -> Digest:
        if ref is None:
            return self._save(LeafNode(path=path, value=value))
        node = self._load(ref)
        self._discard(ref)
        if isinstance(node, LeafNode):
            return self._insert_at_leaf(node, path, value)
        if isinstance(node, ExtensionNode):
            return self._insert_at_extension(node, path, value)
        return self._insert_at_branch(node, path, value)

    def _insert_at_leaf(self, node: LeafNode, path: Nibbles, value: bytes) -> Digest:
        if node.path == path:
            return self._save(LeafNode(path=path, value=value))
        shared = common_prefix_len(node.path, path)
        branch_children: List[Optional[Digest]] = [None] * 16
        branch_value: Optional[bytes] = None
        old_rest = node.path[shared:]
        new_rest = path[shared:]
        if not old_rest:
            branch_value = node.value
        else:
            child = self._save(LeafNode(path=old_rest[1:], value=node.value))
            branch_children[old_rest[0]] = child
        if not new_rest:
            branch_value = value
        else:
            child = self._save(LeafNode(path=new_rest[1:], value=value))
            branch_children[new_rest[0]] = child
        branch = self._save(BranchNode(children=tuple(branch_children), value=branch_value))
        if shared:
            return self._save(ExtensionNode(path=path[:shared], child=branch))
        return branch

    def _insert_at_extension(
        self, node: ExtensionNode, path: Nibbles, value: bytes
    ) -> Digest:
        shared = common_prefix_len(node.path, path)
        if shared == len(node.path):
            child = self._insert(node.child, path[shared:], value)
            return self._save(ExtensionNode(path=node.path, child=child))
        # Split the extension at the divergence point.
        branch_children: List[Optional[Digest]] = [None] * 16
        branch_value: Optional[bytes] = None
        ext_rest = node.path[shared:]
        remainder = ext_rest[1:]
        if remainder:
            branch_children[ext_rest[0]] = self._save(
                ExtensionNode(path=remainder, child=node.child)
            )
        else:
            branch_children[ext_rest[0]] = node.child
        new_rest = path[shared:]
        if not new_rest:
            branch_value = value
        else:
            branch_children[new_rest[0]] = self._save(
                LeafNode(path=new_rest[1:], value=value)
            )
        branch = self._save(BranchNode(children=tuple(branch_children), value=branch_value))
        if shared:
            return self._save(ExtensionNode(path=path[:shared], child=branch))
        return branch

    def _insert_at_branch(self, node: BranchNode, path: Nibbles, value: bytes) -> Digest:
        if not path:
            return self._save(BranchNode(children=node.children, value=value))
        children = list(node.children)
        children[path[0]] = self._insert(children[path[0]], path[1:], value)
        return self._save(BranchNode(children=tuple(children), value=node.value))

    # -- read -----------------------------------------------------------------------

    def get(self, root: Optional[Digest], key: bytes) -> Optional[bytes]:
        """Value of ``key`` in the trie rooted at ``root``."""
        if root is None:
            return None
        path = bytes_to_nibbles(key)
        ref: Optional[Digest] = root
        while ref is not None:
            node = self._load(ref)
            if isinstance(node, LeafNode):
                return node.value if node.path == path else None
            if isinstance(node, ExtensionNode):
                if path[: len(node.path)] != node.path:
                    return None
                path = path[len(node.path) :]
                ref = node.child
                continue
            if not path:
                return node.value
            ref = node.children[path[0]]
            path = path[1:]
        return None

    def get_with_proof(
        self, root: Optional[Digest], key: bytes
    ) -> Tuple[Optional[bytes], MPTProof]:
        """Value plus the Merkle path (the serialized nodes traversed)."""
        nodes: List[bytes] = []
        if root is None:
            return None, MPTProof(key=key, nodes=nodes)
        path = bytes_to_nibbles(key)
        ref: Optional[Digest] = root
        value: Optional[bytes] = None
        while ref is not None:
            node = self._load(ref)
            nodes.append(encode_node(node))
            if isinstance(node, LeafNode):
                value = node.value if node.path == path else None
                break
            if isinstance(node, ExtensionNode):
                if path[: len(node.path)] != node.path:
                    break
                path = path[len(node.path) :]
                ref = node.child
                continue
            if not path:
                value = node.value
                break
            ref = node.children[path[0]]
            path = path[1:]
        return value, MPTProof(key=key, nodes=nodes)

    # -- maintenance -------------------------------------------------------------------

    def depth(self, root: Optional[Digest], key: bytes) -> int:
        """Nodes on the search path of ``key`` (``d_MPT`` of Table 1)."""
        if root is None:
            return 0
        count = 0
        path = bytes_to_nibbles(key)
        ref: Optional[Digest] = root
        while ref is not None:
            node = self._load(ref)
            count += 1
            if isinstance(node, LeafNode):
                break
            if isinstance(node, ExtensionNode):
                if path[: len(node.path)] != node.path:
                    break
                path = path[len(node.path) :]
                ref = node.child
                continue
            if not path:
                break
            ref = node.children[path[0]]
            path = path[1:]
        return count
