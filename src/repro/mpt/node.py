"""MPT node types and their binary codec.

Three node kinds, as in Figure 1: leaf (path remainder + value), extension
(shared path + one child), branch (16 children + optional value).  A
node's digest is the SHA-256 of its serialization; children are referenced
by digest, which is also the node's key in the backing KV store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.common.codec import decode_u32, encode_u32
from repro.common.errors import StorageError
from repro.common.hashing import Digest, hash_bytes
from repro.mpt.nibbles import Nibbles, pack_nibbles, unpack_nibbles

_LEAF = 0x4C  # 'L'
_EXTENSION = 0x45  # 'E'
_BRANCH = 0x42  # 'B'


@dataclass(frozen=True)
class LeafNode:
    """Terminal node: remaining path + state value."""

    path: Nibbles
    value: bytes


@dataclass(frozen=True)
class ExtensionNode:
    """A shared path segment pointing at a single child."""

    path: Nibbles
    child: Digest


@dataclass(frozen=True)
class BranchNode:
    """16-way branch with an optional value terminating exactly here."""

    children: Tuple[Optional[Digest], ...]  # length 16
    value: Optional[bytes]


MPTNode = Union[LeafNode, ExtensionNode, BranchNode]


def encode_node(node: MPTNode) -> bytes:
    """Serialize a node (stable encoding; input to the node digest)."""
    if isinstance(node, LeafNode):
        return bytes([_LEAF]) + pack_nibbles(node.path) + node.value
    if isinstance(node, ExtensionNode):
        return bytes([_EXTENSION]) + pack_nibbles(node.path) + node.child
    if isinstance(node, BranchNode):
        if len(node.children) != 16:
            raise StorageError("branch node must have 16 child slots")
        bitmap = 0
        body = bytearray()
        for index, child in enumerate(node.children):
            if child is not None:
                bitmap |= 1 << index
                body += child
        header = bytes([_BRANCH, bitmap & 0xFF, bitmap >> 8])
        if node.value is None:
            return header + b"\x00" + bytes(body)
        return header + b"\x01" + encode_u32(len(node.value)) + node.value + bytes(body)
    raise StorageError(f"unknown node type {type(node).__name__}")


def decode_node(data: bytes) -> MPTNode:
    """Inverse of :func:`encode_node`."""
    if not data:
        raise StorageError("empty MPT node")
    tag = data[0]
    if tag == _LEAF:
        path, consumed = unpack_nibbles(data[1:])
        return LeafNode(path=path, value=data[1 + consumed :])
    if tag == _EXTENSION:
        path, consumed = unpack_nibbles(data[1:])
        child = data[1 + consumed :]
        if len(child) != 32:
            raise StorageError("extension child must be a 32-byte digest")
        return ExtensionNode(path=path, child=child)
    if tag == _BRANCH:
        bitmap = data[1] | (data[2] << 8)
        offset = 3
        has_value = data[offset] == 1
        offset += 1
        value: Optional[bytes] = None
        if has_value:
            length = decode_u32(data, offset)
            offset += 4
            value = data[offset : offset + length]
            offset += length
        children: List[Optional[Digest]] = []
        for index in range(16):
            if bitmap & (1 << index):
                children.append(data[offset : offset + 32])
                offset += 32
            else:
                children.append(None)
        return BranchNode(children=tuple(children), value=value)
    raise StorageError(f"unknown MPT node tag {tag:#x}")


def node_digest(node: MPTNode) -> Digest:
    """The node's content address."""
    return hash_bytes(encode_node(node))
