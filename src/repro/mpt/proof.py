"""MPT Merkle-path proofs and verification (Section 2's example).

A proof is the list of serialized nodes on the search path, root first.
The verifier recomputes each node's digest, checks it equals the parent's
child reference (the root digest for the first node), and walks the key's
nibbles through the disclosed nodes to confirm the claimed value (or its
absence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import VerificationError
from repro.common.hashing import Digest, hash_bytes
from repro.mpt.nibbles import bytes_to_nibbles
from repro.mpt.node import ExtensionNode, LeafNode, decode_node


@dataclass(frozen=True)
class MPTProof:
    """Merkle path for one key under one root."""

    key: bytes
    nodes: List[bytes]  # serialized nodes, root first

    def size_bytes(self) -> int:
        """Wire size of the proof."""
        return sum(len(node) for node in self.nodes) + len(self.key)


def verify_mpt_proof(
    proof: MPTProof, expected_root: Optional[Digest]
) -> Optional[bytes]:
    """Verify ``proof`` and return the proven value (None = non-existence).

    Raises :class:`VerificationError` if the node hashes do not chain to
    ``expected_root`` or the path walk is inconsistent.
    """
    if expected_root is None or not proof.nodes:
        if proof.nodes:
            raise VerificationError("proof nodes supplied for an empty trie")
        return None
    path = bytes_to_nibbles(proof.key)
    expected = expected_root
    value: Optional[bytes] = None
    terminated = False
    for raw in proof.nodes:
        if terminated:
            raise VerificationError("proof continues past a terminal node")
        if hash_bytes(raw) != expected:
            raise VerificationError("proof node digest does not chain")
        node = decode_node(raw)
        if isinstance(node, LeafNode):
            value = node.value if node.path == path else None
            terminated = True
            continue
        if isinstance(node, ExtensionNode):
            if path[: len(node.path)] != node.path:
                value = None
                terminated = True
                continue
            path = path[len(node.path) :]
            expected = node.child
            continue
        # Branch node.
        if not path:
            value = node.value
            terminated = True
            continue
        child = node.children[path[0]]
        if child is None:
            value = None
            terminated = True
            continue
        expected = child
        path = path[1:]
    if not terminated:
        raise VerificationError("proof ended before reaching a terminal node")
    return value
