"""The live-migration coordinator: move one shard with zero lost acks.

:func:`migrate_shard` drives a shard move entirely through the ADMIN
command surface of the two involved nodes — it holds no cluster state of
its own, so it can run from the CLI (``repro cluster migrate``), a test,
or any host that can reach the control ports.

The phases, and why the ordering is safe (DESIGN.md has the full
argument):

1. **snapshot** (source): flush + consistent on-disk snapshot of the
   moving shard, with the WAL tail included.
2. **adopt** (target): restore the snapshot, then serve the shard as a
   *replica of the source* — the stock replication machinery does the
   catch-up, with a local WAL mirror so the target can recover alone.
3. **catch-up wait**: poll the target's applied height until it is
   within ``catchup_lag`` blocks of the source.  Writes keep landing on
   the source the whole time.
4. **cutover** (source): the source atomically stops acking writes
   (every data op now answers ``MOVED`` naming the target) and flushes;
   the returned ``(height, root)`` is the final authoritative state.
5. **promote** (target): wait until the replica has applied-and-verified
   exactly that state, then restart it as a WAL-enabled primary on the
   same port.  On *any* promote failure the source is **reinstated** —
   authority never moves until the target has provably caught up.
6. **broadcast**: every node adopts the ``epoch + 1`` manifest; stale
   clients learn it via ``MOVED`` referrals instead.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.cluster.client import admin_call
from repro.cluster.manifest import ClusterManifest
from repro.common.errors import StorageError


async def migrate_shard(
    manifest: ClusterManifest,
    shard_id: int,
    to_node: str,
    *,
    snapshot_dir: str,
    catchup_lag: int = 2,
    poll_interval: float = 0.05,
    timeout: float = 60.0,
) -> ClusterManifest:
    """Move ``shard_id`` to ``to_node`` live; returns the new manifest.

    ``snapshot_dir`` must be an empty/absent directory reachable by both
    nodes (single-host clusters share a filesystem; a real deployment
    would put it on shared storage or stream it).
    """
    if not 0 <= shard_id < manifest.num_shards:
        raise StorageError(f"no shard {shard_id} in this manifest")
    if to_node not in manifest.nodes:
        raise StorageError(f"unknown target node {to_node!r}")
    source_node = manifest.shards[shard_id].node
    if source_node == to_node:
        raise StorageError(
            f"shard {shard_id} already lives on {to_node}"
        )
    source_control = manifest.nodes[source_node]
    target_control = manifest.nodes[to_node]
    source_address = manifest.address_of(shard_id)
    deadline = time.monotonic() + timeout

    # 1. snapshot (source keeps serving; the flush inside makes the
    #    snapshot cover every acked write so far).
    await admin_call(
        source_control,
        {"cmd": "snapshot", "shard": shard_id, "dest": snapshot_dir},
    )

    # 2. adopt: the target restores and starts tailing the source.
    adopted = await admin_call(
        target_control,
        {
            "cmd": "adopt",
            "shard": shard_id,
            "snapshot": snapshot_dir,
            "source": source_address,
        },
    )
    new_address = adopted["address"]

    # 3. wait until the target is nearly caught up — cutting over
    #    against a far-behind target would stretch the MOVED window.
    while True:
        status = await admin_call(
            target_control, {"cmd": "migration_status", "shard": shard_id}
        )
        if status.get("diverged"):
            raise StorageError(
                f"migration target diverged: {status.get('last_error')}"
            )
        if status.get("connected") and status.get("lag_blocks", 1 << 62) <= catchup_lag:
            break
        if time.monotonic() > deadline:
            raise StorageError(
                f"shard {shard_id} catch-up stalled at height "
                f"{status.get('applied_height')} "
                f"(lag {status.get('lag_blocks')})"
            )
        await asyncio.sleep(poll_interval)

    # 4. cutover: after this returns, the source never acks another
    #    write for the shard, and (height, root) is final.
    new_manifest = manifest.with_moved(shard_id, to_node, new_address)
    cut = await admin_call(
        source_control,
        {
            "cmd": "cutover",
            "shard": shard_id,
            "to_address": new_address,
            "epoch": new_manifest.epoch,
        },
    )

    # 5. promote — or reinstate the source and fail: authority moves
    #    only once the target provably holds the cutover state.
    try:
        await admin_call(
            target_control,
            {
                "cmd": "promote",
                "shard": shard_id,
                "height": cut["height"],
                "root": cut["root"],
                "manifest": new_manifest.to_dict(),
                "timeout": max(1.0, deadline - time.monotonic()),
            },
        )
    except Exception:
        try:
            await admin_call(
                source_control, {"cmd": "reinstate", "shard": shard_id}
            )
        except Exception:  # repro-lint: disable=error-taxonomy
            pass  # the original failure is the one worth raising
        raise

    # 6. broadcast the new epoch (best effort — MOVED referrals cover
    #    any node or client that misses it).
    for node, control in new_manifest.nodes.items():
        try:
            await admin_call(
                control,
                {"cmd": "set_manifest", "manifest": new_manifest.to_dict()},
            )
        except (StorageError, ConnectionError, OSError):
            pass
    return new_manifest


def migrate_shard_sync(
    manifest: ClusterManifest,
    shard_id: int,
    to_node: str,
    *,
    snapshot_dir: str,
    catchup_lag: int = 2,
    poll_interval: float = 0.05,
    timeout: float = 60.0,
    loop: Optional[asyncio.AbstractEventLoop] = None,
) -> ClusterManifest:
    """:func:`migrate_shard` for synchronous callers (CLI, tests)."""
    coro = migrate_shard(
        manifest,
        shard_id,
        to_node,
        snapshot_dir=snapshot_dir,
        catchup_lag=catchup_lag,
        poll_interval=poll_interval,
        timeout=timeout,
    )
    if loop is not None:
        return asyncio.run_coroutine_threadsafe(coro, loop).result()
    return asyncio.run(coro)
