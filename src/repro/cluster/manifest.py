"""The cluster manifest: one versioned document naming who owns what.

A :class:`ClusterManifest` maps every shard id to the ``host:port`` of
the :class:`~repro.server.ColeServer` currently serving it, plus the
control address of each node process.  Routing is the same crc32
partitioning the in-process sharded engine uses
(:func:`repro.sharding.router.shard_of`), so a key's shard id is
deterministic across every client and server without coordination.

The manifest is **epoch-versioned**: any ownership change (a live shard
migration's cutover) produces a *new* manifest with ``epoch + 1`` via
:meth:`ClusterManifest.with_moved` — manifests are immutable values, so
a stale epoch is detectable by one integer comparison and a client can
adopt the newer of two manifests without field-by-field reconciliation.

Two distribution channels carry the same JSON document:

* a **static file** (``repro cluster init`` writes it, ``repro cluster
  migrate`` rewrites it atomically), and
* the ``Op.CLUSTER`` frame, answered by every cluster member — clients
  bootstrap from any one seed address and refresh after a ``MOVED``
  referral.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.common.errors import StorageError
from repro.sharding.router import shard_of


@dataclass(frozen=True)
class ShardAssignment:
    """Where one shard lives: the owning node and its data address."""

    node: str      # node name (key into ClusterManifest.nodes)
    address: str   # host:port of the ColeServer serving this shard


@dataclass(frozen=True)
class ClusterManifest:
    """Immutable, epoch-versioned cluster topology."""

    epoch: int
    num_shards: int
    #: node name -> control server ``host:port`` (the ADMIN endpoint).
    nodes: Mapping[str, str]
    #: shard id -> assignment; index ``i`` is shard ``i``.
    shards: Tuple[ShardAssignment, ...]

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise StorageError("a cluster needs at least one shard")
        if len(self.shards) != self.num_shards:
            raise StorageError(
                f"manifest names {len(self.shards)} shards but num_shards "
                f"is {self.num_shards}"
            )
        for shard_id, assignment in enumerate(self.shards):
            if assignment.node not in self.nodes:
                raise StorageError(
                    f"shard {shard_id} is assigned to unknown node "
                    f"{assignment.node!r}"
                )

    # -- routing --------------------------------------------------------------

    def shard_for(self, addr: bytes) -> int:
        """The shard id owning ``addr`` (same crc32 as ShardedCole)."""
        return shard_of(addr, self.num_shards)

    def address_of(self, shard_id: int) -> str:
        return self.shards[shard_id].address

    def owner_address(self, addr: bytes) -> str:
        """Data ``host:port`` serving ``addr``."""
        return self.shards[self.shard_for(addr)].address

    def shards_of_node(self, node: str) -> Tuple[int, ...]:
        """Shard ids the named node serves."""
        return tuple(
            shard_id
            for shard_id, assignment in enumerate(self.shards)
            if assignment.node == node
        )

    # -- evolution ------------------------------------------------------------

    def with_moved(
        self, shard_id: int, node: str, address: str
    ) -> "ClusterManifest":
        """A new manifest (epoch + 1) with one shard reassigned.

        This is the cutover document of a live migration: every other
        assignment is carried over verbatim, so two manifests with the
        same epoch are byte-identical and a client can patch a single
        routing entry from a MOVED referral without losing the rest.
        """
        if not 0 <= shard_id < self.num_shards:
            raise StorageError(f"no shard {shard_id} in this manifest")
        if node not in self.nodes:
            raise StorageError(f"cannot move shard {shard_id} to unknown node {node!r}")
        shards = list(self.shards)
        shards[shard_id] = ShardAssignment(node=node, address=address)
        return ClusterManifest(
            epoch=self.epoch + 1,
            num_shards=self.num_shards,
            nodes=dict(self.nodes),
            shards=tuple(shards),
        )

    def with_addresses(self, bound: Mapping[int, str]) -> "ClusterManifest":
        """Same epoch, with shard data addresses patched in.

        Used when nodes bind ephemeral ports (tests, ``port 0``): the
        assignment topology is unchanged — only the addresses become
        concrete — so this is not an ownership change and the epoch
        stays put.
        """
        shards = list(self.shards)
        for shard_id, address in bound.items():
            shards[shard_id] = ShardAssignment(
                node=shards[shard_id].node, address=address
            )
        return ClusterManifest(
            epoch=self.epoch,
            num_shards=self.num_shards,
            nodes=dict(self.nodes),
            shards=tuple(shards),
        )

    def with_control(self, node: str, control: str) -> "ClusterManifest":
        """Same epoch, with one node's control address patched in."""
        nodes = dict(self.nodes)
        nodes[node] = control
        return ClusterManifest(
            epoch=self.epoch,
            num_shards=self.num_shards,
            nodes=nodes,
            shards=self.shards,
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "num_shards": self.num_shards,
            "nodes": dict(self.nodes),
            "shards": {
                str(shard_id): {
                    "node": assignment.node,
                    "address": assignment.address,
                }
                for shard_id, assignment in enumerate(self.shards)
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterManifest":
        try:
            num_shards = int(data["num_shards"])
            shard_map: Dict[int, ShardAssignment] = {
                int(shard_id): ShardAssignment(
                    node=entry["node"], address=entry["address"]
                )
                for shard_id, entry in data["shards"].items()
            }
            if sorted(shard_map) != list(range(num_shards)):
                raise StorageError(
                    f"manifest shard ids {sorted(shard_map)} are not "
                    f"0..{num_shards - 1}"
                )
            return cls(
                epoch=int(data["epoch"]),
                num_shards=num_shards,
                nodes=dict(data["nodes"]),
                shards=tuple(shard_map[i] for i in range(num_shards)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed cluster manifest: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "ClusterManifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StorageError(f"malformed cluster manifest: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        """Write atomically: a reader never sees a half-written manifest."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".manifest-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(self.to_json())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str) -> "ClusterManifest":
        with open(path, "r") as handle:
            return cls.from_json(handle.read())


def plan_manifest(
    num_nodes: int,
    num_shards: int,
    host: str = "127.0.0.1",
    base_port: int = 7450,
) -> ClusterManifest:
    """Epoch-0 manifest with round-robin shard placement.

    Node ``i`` gets control port ``base_port + 16*i`` and its shards get
    the ports after it — a deterministic layout ``repro cluster init``
    writes and ``repro cluster serve`` binds verbatim.
    """
    if num_nodes < 1:
        raise StorageError("a cluster needs at least one node")
    if num_shards < num_nodes:
        raise StorageError("cannot place fewer shards than nodes")
    nodes = {
        f"node-{i}": f"{host}:{base_port + 16 * i}" for i in range(num_nodes)
    }
    next_port = {i: base_port + 16 * i + 1 for i in range(num_nodes)}
    shards = []
    for shard_id in range(num_shards):
        owner = shard_id % num_nodes
        shards.append(
            ShardAssignment(
                node=f"node-{owner}", address=f"{host}:{next_port[owner]}"
            )
        )
        next_port[owner] += 1
    return ClusterManifest(
        epoch=0, num_shards=num_shards, nodes=nodes, shards=tuple(shards)
    )
