"""Cluster serving: one shard group per server process, live migration.

The pieces, in dependency order:

* :mod:`repro.cluster.manifest` — the epoch-versioned topology document
  (``shard_id -> host:port``) every client and node routes by.
* :mod:`repro.cluster.node` — :class:`ClusterNode`, hosting one
  WAL-enabled :class:`~repro.server.ColeServer` per owned shard plus the
  control port (``Op.CLUSTER`` / ``Op.ADMIN``), and :class:`ShardRole`,
  the per-server hook answering ``MOVED`` referrals.
* :mod:`repro.cluster.client` — :class:`ClusterClient`, the
  manifest-routed :class:`~repro.server.KVClient` (reached through
  ``repro.server.connect(manifest=...)``).
* :mod:`repro.cluster.migrate` — :func:`migrate_shard`, the live
  shard-move coordinator (snapshot -> catch-up -> cutover -> promote).
"""

from repro.cluster.client import ClusterClient, admin_call, fetch_manifest
from repro.cluster.manifest import (
    ClusterManifest,
    ShardAssignment,
    plan_manifest,
)
from repro.cluster.migrate import migrate_shard, migrate_shard_sync
from repro.cluster.node import (
    PHASE_CODES,
    ClusterNode,
    NodeThread,
    ShardRole,
    shard_dirname,
)

__all__ = [
    "PHASE_CODES",
    "ClusterClient",
    "ClusterManifest",
    "ClusterNode",
    "NodeThread",
    "ShardAssignment",
    "ShardRole",
    "admin_call",
    "fetch_manifest",
    "migrate_shard",
    "migrate_shard_sync",
    "plan_manifest",
    "shard_dirname",
]
