"""The cluster-aware client: manifest routing + transparent MOVED retry.

A :class:`ClusterClient` holds a :class:`~repro.cluster.manifest.ClusterManifest`
(loaded from a file, passed in, or bootstrapped from any *seed* address
via the ``Op.CLUSTER`` frame) and routes every key to the shard server
the manifest names, by the same crc32 partitioning the servers
themselves enforce.  Per-server connections are opened lazily and
pooled, so a client touching two shards pays for two connections, not
``num_shards``.

Referral handling is the cluster's consistency mechanism, not an error
path: a server answering ``MOVED`` (stale manifest, mid-migration
traffic) makes the client refresh its manifest — preferring the
document served by the *referred-to* address, falling back to patching
the single routing entry the referral carried — and retry, bounded by
``max_retries``.  A connection failure retries the same way after a
short delay, which also covers the one-moment window in which a
promoted shard server rebinds its port.

``multi_get`` / ``multi_put`` split each batch per owning server, issue
the sub-batches concurrently, and reassemble positionally; a referral
on any sub-batch re-splits only the affected keys.  ``scan`` fans the
range over every shard and k-way merges the per-shard pages into one
key-ordered stream.  ``root`` returns the composite ``Hstate`` — the
hash over the ordered per-shard roots, exactly
:meth:`repro.sharding.engine.ShardedCole.root_digest` — so a cluster's
state can be compared byte-for-byte against a single-process oracle.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.manifest import ClusterManifest
from repro.common.errors import StorageError
from repro.common.hashing import hash_concat
from repro.server import protocol
from repro.server.client import KVClient, ServerClient, _parse_addr
from repro.server.protocol import MovedError, Op, Referral, RootInfo


class ClusterClient(KVClient):
    """Route every op by the manifest; follow MOVED referrals."""

    def __init__(
        self,
        manifest: Optional[ClusterManifest] = None,
        manifest_file: Optional[str] = None,
        seeds: Sequence[str] = (),
        pool_size: int = 1,
        max_retries: int = 6,
        retry_delay: float = 0.05,
    ) -> None:
        if manifest is None and manifest_file is None and not seeds:
            raise StorageError(
                "a cluster client needs a manifest, a manifest file, or "
                "at least one seed address"
            )
        self._manifest = manifest
        self._manifest_file = manifest_file
        self._seeds = list(seeds)
        self.pool_size = pool_size
        self.max_retries = max_retries
        self.retry_delay = retry_delay
        self._clients: Dict[str, ServerClient] = {}
        self._connected = False
        #: MOVED referrals followed (the transparently-retried kind).
        self.moved_retries = 0
        #: Manifest refreshes performed (referrals + connection failures).
        self.manifest_refreshes = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def manifest(self) -> ClusterManifest:
        if self._manifest is None:
            raise StorageError("client is not connected")
        return self._manifest

    async def connect(self) -> "ClusterClient":
        """Resolve the manifest (file, then seeds); connections are lazy."""
        if self._manifest is None and self._manifest_file is not None:
            self._manifest = ClusterManifest.load(self._manifest_file)
        if self._manifest is None:
            self._manifest = await self._fetch_manifest(self._seeds)
        self._connected = True
        return self

    async def close(self) -> None:
        clients, self._clients = self._clients, {}
        self._connected = False
        for client in clients.values():
            await client.close()

    async def _client_for(self, address: str) -> ServerClient:
        client = self._clients.get(address)
        if client is None:
            client = ServerClient(*_parse_addr(address), pool_size=self.pool_size)
            await client.connect()
            self._clients[address] = client
        return client

    async def _drop_client(self, address: str) -> None:
        client = self._clients.pop(address, None)
        if client is not None:
            await client.close()

    # -- manifest refresh -----------------------------------------------------

    async def _fetch_manifest(
        self, addresses: Sequence[str]
    ) -> ClusterManifest:
        """The manifest as served by the first answering address."""
        last_error: Optional[Exception] = None
        for address in addresses:
            try:
                host, port = _parse_addr(address)
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(protocol.encode_simple(Op.CLUSTER))
                    await writer.drain()
                    body = await protocol.read_frame(reader)
                    if body is None:
                        raise StorageError(f"{address} closed the connection")
                    data = protocol.decode_json_response(body)
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        pass
                return ClusterManifest.from_dict(data)
            except (StorageError, ConnectionError, OSError) as exc:
                last_error = exc
        raise StorageError(
            f"no cluster manifest reachable via {list(addresses)}: {last_error}"
        )

    def _known_addresses(self) -> List[str]:
        """Every address worth asking for a manifest, dedup'd in order."""
        seen: Dict[str, None] = {}
        if self._manifest is not None:
            for assignment in self._manifest.shards:
                seen.setdefault(assignment.address)
            for control in self._manifest.nodes.values():
                seen.setdefault(control)
        for seed in self._seeds:
            seen.setdefault(seed)
        return list(seen)

    async def refresh_manifest(
        self, prefer: Optional[str] = None
    ) -> ClusterManifest:
        """Re-fetch the manifest, keeping the newest epoch seen."""
        self.manifest_refreshes += 1
        addresses = self._known_addresses()
        if prefer is not None:
            addresses = [prefer] + [a for a in addresses if a != prefer]
        fetched = await self._fetch_manifest(addresses)
        if self._manifest is None or fetched.epoch >= self._manifest.epoch:
            self._manifest = fetched
        return self._manifest

    async def _on_referral(self, exc: Referral) -> None:
        """Adopt what a MOVED referral teaches before retrying.

        The referred-to server has the post-cutover manifest, so prefer
        a full refresh from it; if unreachable (mid-promotion rebind),
        patch the single entry the referral named — enough to retry —
        and let a later refresh reconcile.
        """
        self.moved_retries += 1
        try:
            await self.refresh_manifest(prefer=exc.address)
        except StorageError:
            pass
        if (
            isinstance(exc, MovedError)
            and exc.shard_id is not None
            and self._manifest is not None
            and exc.manifest_epoch >= self._manifest.epoch
            and self._manifest.address_of(exc.shard_id) != exc.address
        ):
            # Refresh couldn't reach anyone with the newer document
            # (e.g. the promoted server is rebinding): patch the one
            # entry the referral named — enough to retry correctly.
            self._manifest = self._manifest.with_addresses(
                {exc.shard_id: exc.address}
            )

    async def _call(self, address_of, issue):
        """Issue ``issue(client)`` against ``address_of(manifest)``,
        retrying through referrals and connection failures."""
        last_exc: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            address = address_of(self.manifest)
            try:
                client = await self._client_for(address)
                return await issue(client)
            except Referral as exc:
                last_exc = exc
                await self._on_referral(exc)
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                await self._drop_client(address)
                try:
                    await self.refresh_manifest()
                except StorageError:
                    pass
                if attempt < self.max_retries:
                    await asyncio.sleep(self.retry_delay * (attempt + 1))
        raise StorageError(
            f"cluster op failed after {self.max_retries + 1} attempts: "
            f"{last_exc}"
        )

    def _shard_call(self, shard_id: int, issue):
        return self._call(lambda m: m.address_of(shard_id), issue)

    def _keyed_call(self, addr: bytes, issue):
        return self._call(lambda m: m.owner_address(addr), issue)

    # -- point ops ------------------------------------------------------------

    async def put(self, addr: bytes, value: bytes) -> int:
        return await self._keyed_call(addr, lambda c: c.put(addr, value))

    async def get(self, addr: bytes) -> Optional[bytes]:
        return await self._keyed_call(addr, lambda c: c.get(addr))

    async def get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        return await self._keyed_call(addr, lambda c: c.get_at(addr, blk))

    async def prov(
        self, addr: bytes, blk_low: int, blk_high: int
    ) -> Tuple[object, bytes]:
        return await self._keyed_call(
            addr, lambda c: c.prov(addr, blk_low, blk_high)
        )

    # -- batched ops ----------------------------------------------------------

    async def multi_get(self, addrs: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched read, split per owner and reassembled positionally."""
        addrs = list(addrs)
        results: List[Optional[bytes]] = [None] * len(addrs)

        async def issue(client: ServerClient, positions: List[int]) -> None:
            values = await client.multi_get([addrs[p] for p in positions])
            for position, value in zip(positions, values):
                results[position] = value

        await self._fan_out(list(enumerate(addrs)), issue)
        return results

    async def multi_put(self, items: Sequence[Tuple[bytes, bytes]]) -> int:
        """Batched write, split per owner; returns the *highest* height
        assigned — each shard commits independently, and the max is the
        height at which every key of the batch is readable."""
        items = list(items)
        heights: List[int] = []

        async def issue(client: ServerClient, positions: List[int]) -> None:
            heights.append(await client.multi_put([items[p] for p in positions]))

        await self._fan_out(
            [(pos, addr) for pos, (addr, _) in enumerate(items)], issue
        )
        return max(heights)

    async def _fan_out(self, indexed, issue) -> None:
        """Split ``(position, addr)`` pairs per owning server, run
        ``issue(client, positions)`` per group concurrently, and
        **re-split** any group a referral or connection failure touched.

        Re-splitting (rather than retrying a group verbatim against one
        server) matters mid-migration: a group built from the stale
        manifest can span keys that now live on *different* servers, and
        only re-grouping under the refreshed manifest can ever route it
        correctly.
        """
        pending: List[Tuple[int, bytes]] = list(indexed)
        last_exc: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            manifest = self.manifest
            groups: Dict[str, List[Tuple[int, bytes]]] = {}
            for position, addr in pending:
                groups.setdefault(manifest.owner_address(addr), []).append(
                    (position, addr)
                )
            failed: List[Tuple[int, bytes]] = []
            failures: List[Exception] = []

            async def run_group(address: str, members) -> None:
                try:
                    client = await self._client_for(address)
                    await issue(client, [p for p, _ in members])
                except Referral as exc:
                    failures.append(exc)
                    failed.extend(members)
                    await self._on_referral(exc)
                except (ConnectionError, OSError) as exc:
                    failures.append(exc)
                    failed.extend(members)
                    await self._drop_client(address)
                    try:
                        await self.refresh_manifest()
                    except StorageError:
                        pass

            await asyncio.gather(
                *(run_group(address, members) for address, members in groups.items())
            )
            if not failed:
                return
            last_exc = failures[-1]
            pending = failed
            if attempt < self.max_retries:
                await asyncio.sleep(self.retry_delay * (attempt + 1))
        raise StorageError(
            f"cluster batch failed after {self.max_retries + 1} attempts: "
            f"{last_exc}"
        )

    # -- range scans ----------------------------------------------------------

    async def scan(
        self,
        addr_low: bytes,
        addr_high: bytes,
        *,
        at_blk: Optional[int] = None,
        limit: Optional[int] = None,
        page_size: int = 0,
    ) -> List[Tuple[bytes, int, bytes]]:
        """Key-ordered range scan across every shard, k-way merged.

        The hash partitioning spreads any address range over all shards,
        so the fan-out is total by construction.  Each shard's pages are
        snapshot-consistent on that shard (the server pins them); the
        merged result is per-shard consistent, which is the cluster's
        contract — cross-shard heights advance independently.
        """
        per_shard = await asyncio.gather(
            *(
                self._shard_call(
                    shard_id,
                    lambda c: c.scan(
                        addr_low,
                        addr_high,
                        at_blk=at_blk,
                        limit=limit,
                        page_size=page_size,
                    ),
                )
                for shard_id in range(self.manifest.num_shards)
            )
        )
        merged = heapq.merge(*per_shard, key=lambda row: row[0])
        if limit is not None:
            return list(itertools.islice(merged, limit))
        return list(merged)

    # -- control plane --------------------------------------------------------

    async def shard_roots(self) -> List[RootInfo]:
        """Every shard's ROOT, in shard order."""
        return list(
            await asyncio.gather(
                *(
                    self._shard_call(shard_id, lambda c: c.root())
                    for shard_id in range(self.manifest.num_shards)
                )
            )
        )

    async def root(self) -> RootInfo:
        """The composite state anchor: ``hash(root_0 || ... || root_n)``
        over the ordered shard roots — byte-identical to a
        ``ShardedCole`` holding the same per-shard states, so cluster
        state is comparable against a single-process oracle."""
        roots = await self.shard_roots()
        return RootInfo(
            digest=hash_concat([info.digest for info in roots]),
            version=sum(info.version for info in roots),
            height=max(info.height for info in roots),
        )

    async def flush(self) -> RootInfo:
        """Force a group commit on every shard; composite anchor back."""
        flushed = await asyncio.gather(
            *(
                self._shard_call(shard_id, lambda c: c.flush())
                for shard_id in range(self.manifest.num_shards)
            )
        )
        return RootInfo(
            digest=hash_concat([info.digest for info in flushed]),
            version=sum(info.version for info in flushed),
            height=max(info.height for info in flushed),
        )

    async def stats(self) -> dict:
        """Cluster-shaped STATS: the manifest plus every shard's STATS."""
        per_shard = await asyncio.gather(
            *(
                self._shard_call(shard_id, lambda c: c.stats())
                for shard_id in range(self.manifest.num_shards)
            )
        )
        manifest = self.manifest
        return {
            "cluster": {
                "manifest_epoch": manifest.epoch,
                "num_shards": manifest.num_shards,
                "nodes": dict(manifest.nodes),
                "moved_retries": self.moved_retries,
                "manifest_refreshes": self.manifest_refreshes,
            },
            "shards": {
                str(shard_id): stats
                for shard_id, stats in enumerate(per_shard)
            },
            # Aggregates the loadgen report formatter reads.
            "ops": _sum_ops(per_shard),
            "cache": _merge_cache(
                [stats.get("cache", {}) for stats in per_shard]
            ),
            "negative_cache": _merge_cache(
                [stats.get("negative_cache", {}) for stats in per_shard]
            ),
        }

    async def metrics(self) -> str:
        """Per-shard-server expositions, concatenated with origin notes."""
        manifest = self.manifest
        addresses: Dict[str, List[int]] = {}
        for shard_id in range(manifest.num_shards):
            addresses.setdefault(manifest.address_of(shard_id), []).append(
                shard_id
            )
        parts: List[str] = []
        for address, shard_ids in addresses.items():
            text = await self._call(
                lambda m, a=address: a, lambda c: c.metrics()
            )
            parts.append(
                f"# cluster server {address} (shards {shard_ids})\n{text}"
            )
        return "\n".join(parts)


def _sum_ops(per_shard: List[dict]) -> dict:
    totals: Dict[str, int] = {}
    for stats in per_shard:
        for name, count in stats.get("ops", {}).items():
            totals[name] = totals.get(name, 0) + count
    return totals


def _merge_cache(snapshots: List[dict]) -> dict:
    hits = sum(s.get("hits", 0) for s in snapshots)
    misses = sum(s.get("misses", 0) for s in snapshots)
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "lookups": lookups,
        "hit_rate": hits / lookups if lookups else 0.0,
        "entries": sum(s.get("entries", 0) for s in snapshots),
    }


async def fetch_manifest(address: str) -> ClusterManifest:
    """One-shot manifest fetch from any cluster member (CLI helper)."""
    host, port = _parse_addr(address)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(protocol.encode_simple(Op.CLUSTER))
        await writer.drain()
        body = await protocol.read_frame(reader)
        if body is None:
            raise StorageError(f"{address} closed the connection")
        return ClusterManifest.from_dict(protocol.decode_json_response(body))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def admin_call(address: str, command: dict) -> dict:
    """One ADMIN command against a node's control server."""
    host, port = _parse_addr(address)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(protocol.encode_admin(command))
        await writer.drain()
        body = await protocol.read_frame(reader)
        if body is None:
            raise StorageError(f"{address} closed the connection mid-command")
        return protocol.decode_json_response(body)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
