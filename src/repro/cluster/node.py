"""One cluster node: a shard group of ColeServers plus a control server.

A :class:`ClusterNode` hosts one :class:`~repro.server.ColeServer` — its
own :class:`~repro.core.storage.Cole` engine and its own WAL — **per
shard it owns**, all on one event loop (one *process* per node in a real
deployment: ``repro cluster serve``).  Making each shard a full
WAL-enabled primary is the load-bearing choice of the whole design: a
shard is then exactly the thing the replication machinery already knows
how to snapshot, stream, and verify, so live migration composes from
parts PR 3/4 built instead of growing a parallel state-transfer path.

The node also runs a small **control server** speaking the same frame
protocol, answering ``Op.CLUSTER`` (the manifest) and ``Op.ADMIN`` (a
JSON command: status / snapshot / adopt / cutover / promote /
set_manifest).  Migration is driven entirely through these commands —
see :mod:`repro.cluster.migrate` for the coordinator and DESIGN.md
"Cluster & Migration" for the cutover ordering proof.

Each shard server carries a :class:`ShardRole`, the hook
:class:`~repro.server.ColeServer` consults before dispatching any op:

* a request for a key this shard does not own (a client with a stale or
  absent manifest) answers ``MOVED`` naming the owner;
* after a migration cutover every data op answers ``MOVED`` naming the
  new owner — the server keeps running as a *moved husk* so stale
  clients are referred instead of timing out, and so the replication
  stream stays available until the target confirms promotion.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.manifest import ClusterManifest
from repro.common.errors import StorageError
from repro.server import protocol
from repro.server.protocol import Op
from repro.server.server import ColeServer, ServerConfig

#: Migration phase -> gauge code (``repro_cluster_migration_phase``).
PHASE_CODES = {
    "serving": 0,
    "snapshot": 1,
    "catchup": 2,
    "promoting": 3,
    "moved": 4,
}

#: Ops that touch shard data and therefore obey MOVED referrals; control
#: ops (ROOT / STATS / METRICS / CLUSTER) keep answering on a moved husk
#: so operators and the migration coordinator can still observe it.
_DATA_OPS = frozenset(
    {
        Op.PUT,
        Op.GET,
        Op.GET_AT,
        Op.PROV,
        Op.SCAN,
        Op.MULTI_GET,
        Op.MULTI_PUT,
        Op.FLUSH,
    }
)

#: Single-key ops whose first argument is the address to route-check.
_KEYED_OPS = frozenset({Op.PUT, Op.GET, Op.GET_AT, Op.PROV})


class ShardRole:
    """One shard server's view of its place in the cluster.

    :class:`~repro.server.ColeServer` calls :meth:`referral_for` before
    dispatching; everything else (phase, counters) feeds STATS/METRICS.
    """

    def __init__(self, node: "ClusterNode", shard_id: int) -> None:
        self.node = node
        self.shard_id = shard_id
        #: Migration phase of this shard on this node (PHASE_CODES).
        self.phase = "serving"
        #: Set at cutover: every data op refers here from now on.
        self.moved_to: Optional[str] = None
        self.moved_epoch = 0
        #: MOVED referrals answered (stale clients + post-cutover traffic).
        self.moved_referrals = 0

    @property
    def manifest(self) -> ClusterManifest:
        return self.node.manifest

    def manifest_json(self) -> bytes:
        return self.manifest.to_json().encode("utf-8")

    def referral_for(self, op: int, args: tuple) -> Optional[bytes]:
        """A MOVED response when this server must not answer ``op``.

        Two referral sources, checked in order: the shard as a whole has
        moved (post-cutover), or the request's key belongs to a
        different shard (a client routing with a stale or absent
        manifest).  Scans are exempt from the key check — a cluster
        client legitimately fans a range over every shard.
        """
        if op not in _DATA_OPS:
            return None
        if self.moved_to is not None:
            self.moved_referrals += 1
            return protocol.encode_moved(
                self.moved_to, self.moved_epoch, self.shard_id
            )
        manifest = self.manifest
        if op in _KEYED_OPS:
            addrs = (args[0],)
        elif op == Op.MULTI_GET:
            addrs = tuple(args[0])
        elif op == Op.MULTI_PUT:
            addrs = tuple(addr for addr, _ in args[0])
        else:  # SCAN / FLUSH carry no routable key
            return None
        for addr in addrs:
            owner = manifest.shard_for(addr)
            if owner != self.shard_id:
                self.moved_referrals += 1
                return protocol.encode_moved(
                    manifest.address_of(owner), manifest.epoch, owner
                )
        return None

    def stats(self) -> dict:
        """The ``cluster`` STATS section of this shard's server."""
        return {
            "node": self.node.name,
            "shard_id": self.shard_id,
            "manifest_epoch": self.manifest.epoch,
            "phase": self.phase,
            "moved_to": self.moved_to,
            "moved_referrals": self.moved_referrals,
        }

    def record_metrics(self, registry) -> None:
        """Mirror ownership / migration state into a metrics registry."""
        registry.gauge(
            "repro_cluster_shard_id", help="Shard this server owns"
        ).set(self.shard_id)
        registry.gauge(
            "repro_cluster_manifest_epoch", help="Adopted manifest epoch"
        ).set(self.manifest.epoch)
        registry.gauge(
            "repro_cluster_migration_phase",
            help="Migration phase (0=serving 1=snapshot 2=catchup "
            "3=promoting 4=moved)",
        ).set(PHASE_CODES.get(self.phase, -1))
        registry.counter(
            "repro_cluster_moved_referrals_total",
            help="MOVED referrals answered",
        ).set(self.moved_referrals)


@dataclass
class _ShardServing:
    """Everything one hosted shard owns: engine, WAL, server, role."""

    shard_id: int
    engine: object
    wal: object
    server: ColeServer
    role: ShardRole
    #: Primary address this shard tails during migration catch-up
    #: (``None`` once promoted / for ordinary primaries).
    replica_source: Optional[Tuple[str, int]] = None
    directory: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def address(self) -> str:
        return f"{self.server.host}:{self.server.port}"


def _parse_hostport(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise StorageError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def shard_dirname(shard_id: int) -> str:
    return f"shard-{shard_id:02d}"


class ClusterNode:
    """Host the shard servers assigned to ``name`` plus the control port."""

    def __init__(
        self,
        workspace: str,
        name: str,
        manifest: ClusterManifest,
        config: Optional[ServerConfig] = None,
        mem_capacity: int = 512,
        wal_sync: str = "batch",
        ephemeral: bool = False,
    ) -> None:
        """``ephemeral=True`` binds every port as 0 regardless of the
        manifest addresses (in-process tests); the caller then reads the
        actual addresses back and patches a concrete manifest in via
        ``set_manifest``."""
        if name not in manifest.nodes:
            raise StorageError(f"manifest names no node {name!r}")
        self.workspace = workspace
        self.name = name
        self.manifest = manifest
        self.config = config
        self.mem_capacity = mem_capacity
        self.wal_sync = wal_sync
        self.ephemeral = ephemeral
        self.shards: Dict[int, _ShardServing] = {}
        self.control_host: Optional[str] = None
        self.control_port: Optional[int] = None
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._started_monotonic = 0.0

    # -- lifecycle ------------------------------------------------------------

    @property
    def control_address(self) -> str:
        return f"{self.control_host}:{self.control_port}"

    def data_addresses(self) -> Dict[int, str]:
        """shard id -> actually-bound ``host:port`` of its data server."""
        return {
            shard_id: serving.address for shard_id, serving in self.shards.items()
        }

    async def start(self) -> Tuple[str, int]:
        """Open engines, bind shard servers + control; returns the bound
        control ``(host, port)``."""
        self._started_monotonic = time.monotonic()
        try:
            for shard_id in self.manifest.shards_of_node(self.name):
                await self._start_shard_primary(shard_id)
            host, port = _parse_hostport(self.manifest.nodes[self.name])
            if self.ephemeral:
                port = 0
            self._control_server = await asyncio.start_server(
                self._handle_control, host, port
            )
            sock = self._control_server.sockets[0]
            self.control_host, self.control_port = sock.getsockname()[:2]
        except BaseException:
            await self.stop()
            raise
        return self.control_host, self.control_port

    async def _start_shard_primary(
        self,
        shard_id: int,
        address: Optional[str] = None,
        engine=None,
        wal=None,
        phase: str = "serving",
    ) -> _ShardServing:
        from repro.common.params import ColeParams
        from repro.core import Cole
        from repro.wal import WriteAheadLog

        directory = os.path.join(self.workspace, shard_dirname(shard_id))
        # Engine/WAL construction replays manifests and WAL tails from
        # disk — executor work, never event-loop work.
        loop = asyncio.get_running_loop()
        if engine is None:

            def _open_engine() -> "Cole":
                os.makedirs(directory, exist_ok=True)
                return Cole(
                    directory,
                    ColeParams(async_merge=True, mem_capacity=self.mem_capacity),
                )

            engine = await loop.run_in_executor(None, _open_engine)
        if wal is None:

            def _open_wal() -> "WriteAheadLog":
                return WriteAheadLog(
                    os.path.join(directory, "wal"),
                    num_shards=1,
                    sync_policy=self.wal_sync,
                )

            wal = await loop.run_in_executor(None, _open_wal)
        host, port = _parse_hostport(
            address or self.manifest.address_of(shard_id)
        )
        if self.ephemeral and address is None:
            port = 0
        role = ShardRole(self, shard_id)
        role.phase = phase
        server = ColeServer(
            engine, host, port, self.config, wal=wal, cluster=role
        )
        try:
            await server.start()
        except BaseException:
            await loop.run_in_executor(None, wal.close)
            await loop.run_in_executor(None, engine.close)
            raise
        serving = _ShardServing(
            shard_id=shard_id,
            engine=engine,
            wal=wal,
            server=server,
            role=role,
            directory=directory,
        )
        self.shards[shard_id] = serving
        return serving

    async def stop(self) -> None:
        """Stop every server and close every engine/WAL (idempotent)."""
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
            self._control_server = None
        loop = asyncio.get_running_loop()
        for serving in list(self.shards.values()):
            await serving.server.stop()

            def _close(serving: "_ShardServing" = serving) -> None:
                # Best-effort shutdown: a close failure only costs disk
                # (the WAL tail and run files replay on next open), and
                # the remaining shards must still get their turn.
                try:
                    serving.wal.close()
                except (StorageError, OSError):
                    pass
                try:
                    serving.engine.close()
                except (StorageError, OSError):
                    pass

            await loop.run_in_executor(None, _close)
        self.shards.clear()

    # -- control protocol -----------------------------------------------------

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                body = await protocol.read_frame(reader)
                if body is None:
                    break
                try:
                    op, args = protocol.decode_request(body)
                    if op == Op.CLUSTER:
                        response = protocol.encode_blob_response(
                            self.manifest.to_json().encode("utf-8")
                        )
                    elif op == Op.ADMIN:
                        result = await self._admin(json.loads(args[0]))
                        response = protocol.encode_blob_response(
                            json.dumps(result).encode("utf-8")
                        )
                    else:
                        response = protocol.encode_error(
                            "the control port answers CLUSTER and ADMIN only"
                        )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 — answer, don't die
                    response = protocol.encode_error(
                        f"{type(exc).__name__}: {exc}"
                    )
                writer.write(response)
                await writer.drain()
        except (StorageError, ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                pass

    async def _admin(self, command: dict) -> dict:
        """Dispatch one ADMIN command (the migration RPC surface)."""
        cmd = command.get("cmd")
        if cmd == "status":
            return self.status()
        if cmd == "set_manifest":
            return self._set_manifest(command["manifest"])
        if cmd == "snapshot":
            return await self._admin_snapshot(
                int(command["shard"]), command["dest"]
            )
        if cmd == "adopt":
            return await self._admin_adopt(
                int(command["shard"]), command["snapshot"], command["source"]
            )
        if cmd == "migration_status":
            return self._migration_status(int(command["shard"]))
        if cmd == "cutover":
            return await self._admin_cutover(
                int(command["shard"]),
                command["to_address"],
                int(command["epoch"]),
            )
        if cmd == "promote":
            return await self._admin_promote(
                int(command["shard"]),
                int(command["height"]),
                command["root"],
                command.get("manifest"),
                float(command.get("timeout", 30.0)),
            )
        if cmd == "reinstate":
            return self._admin_reinstate(int(command["shard"]))
        raise StorageError(f"unknown admin command {cmd!r}")

    def status(self) -> dict:
        return {
            "node": self.name,
            "manifest_epoch": self.manifest.epoch,
            "uptime_s": time.monotonic() - self._started_monotonic,
            "shards": {
                str(shard_id): {
                    "address": serving.address,
                    "phase": serving.role.phase,
                    "moved_to": serving.role.moved_to,
                    "moved_referrals": serving.role.moved_referrals,
                    "height": (
                        serving.server.batcher.last_height
                        if serving.server.batcher is not None
                        else serving.server.replica.applied_height
                    ),
                }
                for shard_id, serving in sorted(self.shards.items())
            },
        }

    def _set_manifest(self, data: dict) -> dict:
        manifest = ClusterManifest.from_dict(data)
        # Monotonic adoption: a delayed rebroadcast of an older epoch
        # must not roll routing back mid-migration.
        if manifest.epoch >= self.manifest.epoch:
            self.manifest = manifest
        return {"epoch": self.manifest.epoch}

    def _serving(self, shard_id: int) -> _ShardServing:
        serving = self.shards.get(shard_id)
        if serving is None:
            raise StorageError(f"node {self.name} does not host shard {shard_id}")
        return serving

    # -- migration: source side ----------------------------------------------

    async def _admin_snapshot(self, shard_id: int, dest: str) -> dict:
        """Phase 1 (source): a consistent snapshot of the moving shard.

        The batcher flushes first so every *acked* write is in the
        engine — :func:`~repro.wal.snapshot_store` records the root a
        restore must reproduce, and buffered-but-uncommitted puts would
        make the restored store recover past it.
        """
        serving = self._serving(shard_id)
        if serving.server.batcher is None:
            raise StorageError(f"shard {shard_id} is not a primary here")
        serving.role.phase = "snapshot"
        try:
            from repro.wal import snapshot_store

            await serving.server.batcher.flush()
            meta = await serving.server._run(
                snapshot_store, serving.engine, dest, serving.wal
            )
        finally:
            serving.role.phase = "serving"
        return {
            "dest": dest,
            "root_digest": meta["root_digest"],
            "files": len(meta["files"]),
        }

    async def _admin_cutover(
        self, shard_id: int, to_address: str, epoch: int
    ) -> dict:
        """Phase 3 (source): stop owning the shard, hand off authority.

        Ordering is the zero-loss argument (DESIGN.md): ``moved_to`` is
        set *first* — dispatch is synchronous between the referral check
        and the batcher insert, so after this line no new write can ack
        here — then the batcher flushes, committing every already-acked
        write and publishing it to the replication hub the target is
        subscribed to.  The returned ``(height, root)`` is the exact
        state the target must reach before promotion.
        """
        serving = self._serving(shard_id)
        if serving.server.batcher is None:
            raise StorageError(f"shard {shard_id} is not a primary here")
        serving.role.moved_to = to_address
        serving.role.moved_epoch = epoch
        serving.role.phase = "moved"
        root, height = await serving.server.batcher.flush()
        if serving.wal.sync_policy != "none":
            await serving.server._run(serving.wal.sync)
        return {"height": height, "root": bytes(root).hex()}

    def _admin_reinstate(self, shard_id: int) -> dict:
        """Abort path: a failed promotion hands authority back."""
        serving = self._serving(shard_id)
        serving.role.moved_to = None
        serving.role.moved_epoch = 0
        serving.role.phase = "serving"
        return {"shard": shard_id, "phase": "serving"}

    # -- migration: target side ----------------------------------------------

    async def _admin_adopt(
        self, shard_id: int, snapshot: str, source: str
    ) -> dict:
        """Phase 2 (target): bootstrap the shard and start catching up.

        Restores the snapshot (engine files + the source WAL's tail)
        into this node's shard directory, replays the tail, then serves
        the shard as a *replica of the source* — the stock
        :class:`~repro.replication.ReplicaApplier` does the catch-up —
        with a local ``replica_wal`` mirroring every applied batch so
        the state survives a crash-and-promote (see server.py).
        """
        from repro.common.params import ColeParams
        from repro.core import Cole
        from repro.wal import WriteAheadLog, replay_wal, restore_store

        if shard_id in self.shards:
            raise StorageError(
                f"node {self.name} already hosts shard {shard_id}"
            )
        directory = os.path.join(self.workspace, shard_dirname(shard_id))
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, restore_store, snapshot, directory)

        def _open_engine() -> "Cole":
            return Cole(
                directory,
                ColeParams(async_merge=True, mem_capacity=self.mem_capacity),
            )

        def _open_wal() -> "WriteAheadLog":
            return WriteAheadLog(
                os.path.join(directory, "wal"),
                num_shards=1,
                sync_policy=self.wal_sync,
            )

        engine = await loop.run_in_executor(None, _open_engine)
        wal = await loop.run_in_executor(None, _open_wal)
        await loop.run_in_executor(None, replay_wal, engine, wal)
        source_addr = _parse_hostport(source)
        host, _ = _parse_hostport(self.manifest.nodes[self.name])
        role = ShardRole(self, shard_id)
        role.phase = "catchup"
        server = ColeServer(
            engine,
            host,
            0,  # ephemeral: the new manifest records the actual port
            self.config,
            replica_of=source_addr,
            replica_wal=wal,
            cluster=role,
        )
        try:
            await server.start()
        except BaseException:
            await loop.run_in_executor(None, wal.close)
            await loop.run_in_executor(None, engine.close)
            raise
        serving = _ShardServing(
            shard_id=shard_id,
            engine=engine,
            wal=wal,
            server=server,
            role=role,
            replica_source=source_addr,
            directory=directory,
        )
        self.shards[shard_id] = serving
        return {"address": serving.address, "height": server.replica.applied_height}

    def _migration_status(self, shard_id: int) -> dict:
        serving = self._serving(shard_id)
        replica = serving.server.replica
        if replica is None:
            return {
                "phase": serving.role.phase,
                "applied_height": serving.server.batcher.last_height,
                "lag_blocks": 0,
                "connected": False,
                "diverged": False,
            }
        return {
            "phase": serving.role.phase,
            "applied_height": replica.applied_height,
            "primary_height": replica.primary_height,
            "lag_blocks": replica.lag_blocks,
            "connected": replica.connected,
            "diverged": replica.diverged,
            "last_error": replica.last_error,
        }

    async def _admin_promote(
        self,
        shard_id: int,
        height: int,
        root_hex: str,
        manifest_data: Optional[dict],
        timeout: float,
    ) -> dict:
        """Phase 4 (target): become the shard's primary.

        Waits until the applier has applied (and root-verified) the
        source's cutover height, then swaps the replica server for a
        WAL-enabled primary on the *same engine, same WAL, same port* —
        the replica WAL already holds every applied batch, so the
        promoted server's ordinary ``replay_wal`` recovery path covers a
        crash at any point after this returns.
        """
        serving = self._serving(shard_id)
        replica = serving.server.replica
        if replica is None:
            raise StorageError(f"shard {shard_id} is not in catch-up here")
        serving.role.phase = "promoting"
        deadline = time.monotonic() + timeout
        while replica.applied_height < height:
            if replica.diverged:
                raise StorageError(
                    f"cannot promote diverged shard {shard_id}: "
                    f"{replica.last_error}"
                )
            if time.monotonic() > deadline:
                raise StorageError(
                    f"shard {shard_id} catch-up stalled at height "
                    f"{replica.applied_height} < cutover {height}"
                )
            await asyncio.sleep(0.01)
        if (
            replica.applied_height == height
            and replica.last_root is not None
            and replica.last_root.hex() != root_hex
        ):
            raise StorageError(
                f"shard {shard_id} root mismatch at cutover height {height}"
            )
        host, port = serving.server.host, serving.server.port
        await serving.server.stop()
        if serving.wal.sync_policy != "none":
            # The replica server (and its executor) is stopped; fsync on
            # the default executor so the control loop stays responsive.
            await asyncio.get_running_loop().run_in_executor(
                None, serving.wal.sync
            )
        if manifest_data is not None:
            self._set_manifest(manifest_data)
        serving.replica_source = None
        del self.shards[shard_id]
        promoted = await self._start_shard_primary(
            shard_id,
            address=f"{host}:{port}",
            engine=serving.engine,
            wal=serving.wal,
        )
        return {
            "address": promoted.address,
            "height": promoted.server.batcher.last_height,
        }


class NodeThread:
    """A :class:`ClusterNode` on its own event-loop thread.

    The in-process deployment shape for tests and the demo — the cluster
    analogue of :class:`~repro.server.ServerThread`.  ``start`` blocks
    until every port is bound; all interaction afterwards goes through
    real sockets (data, CLUSTER, ADMIN), never cross-thread calls.
    """

    def __init__(self, node: ClusterNode) -> None:
        self.node = node
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        if self._thread is not None and self._thread.is_alive():
            return self.node.control_host, self.node.control_port
        self._thread = threading.Thread(
            target=self._run, name=f"cluster-{self.node.name}", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.node.control_host, self.node.control_port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.node.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.node.stop())
        finally:
            loop.close()

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
        thread.join()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "NodeThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
