"""A lightweight in-process metrics registry.

Three metric types — :class:`Counter`, :class:`Gauge`, and
:class:`LatencyHistogram` — keyed by ``(name, labels)`` in a
:class:`MetricsRegistry`, exposed two ways:

* ``registry.expose()`` renders Prometheus text exposition (the
  ``Op.METRICS`` payload), parseable by any scraper and by
  :func:`parse_exposition` below.
* histogram ``summary()`` dicts feed the ``latency`` section of the
  server's ``STATS`` response.

Design constraints, in order:

* **cheap on the hot path** — ``observe()`` is one log, one list index,
  and one lock acquisition; callers cache the metric object so the
  registry dict is only touched at setup.
* **safe under executor threads** — every mutation holds a per-metric
  ``threading.Lock``; the serving stack records from the event loop
  *and* from ``run_in_executor`` workers.
* **mergeable** — histograms with identical bucket geometry add
  bucket-wise, so per-worker histograms can be combined into one report
  (the load generator merges nothing today but the benchmarks may).

Buckets are log-spaced: bucket ``i`` covers ``(lo*growth**(i-1),
lo*growth**i]`` with bucket 0 absorbing everything ``<= lo`` and the
last bucket absorbing the overflow.  The default geometry —
``lo=1us, growth=2**0.25, 96 buckets`` — spans 1us..16.7s at quarter-
octave (~19%) resolution, so a reported p99 is within 19% of the true
sample percentile.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "parse_exposition",
]

#: Default histogram geometry: quarter-octave buckets from 1us.
DEFAULT_LO = 1e-6
DEFAULT_GROWTH = 2.0 ** 0.25
DEFAULT_BUCKETS = 96


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        """Scrape-time mirror of an externally maintained total.

        For counters whose source of truth lives elsewhere (e.g. the
        server's ``op_counts`` dict): the exposition snapshot copies the
        current total here instead of double-counting on the hot path.
        """
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (heights, occupancy, hit rates, lag)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LatencyHistogram:
    """Fixed log-spaced buckets with O(1) record and p50/p99 extraction.

    Despite the name the value axis is unit-agnostic — the batcher uses
    one with ``lo=1.0`` for batch-*size* distribution.  ``len(h)`` is
    the observation count and an empty histogram is falsy, so it can
    stand in for the raw sample lists the load generator used to keep.
    """

    __slots__ = (
        "_lock", "_lo", "_growth", "_log_growth", "_counts", "_count",
        "_sum", "_min", "_max",
    )

    def __init__(
        self,
        lo: float = DEFAULT_LO,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        if lo <= 0 or growth <= 1.0 or buckets < 1:
            raise ValueError("need lo > 0, growth > 1, buckets >= 1")
        self._lock = threading.Lock()
        self._lo = lo
        self._growth = growth
        self._log_growth = math.log(growth)
        self._counts = [0] * buckets
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    # -- recording -----------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self._lo:
            return 0
        # ceil(log_growth(value / lo)): the bucket whose upper bound is
        # the first >= value; the epsilon keeps exact bounds in their
        # own bucket despite float log error.
        index = int(math.ceil(math.log(value / self._lo) / self._log_growth - 1e-9))
        return min(index, len(self._counts) - 1)

    def observe(self, value: float) -> None:
        """Record one sample (O(1): a log, an index, a lock)."""
        index = self._index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def merge(self, other: "LatencyHistogram") -> None:
        """Add ``other``'s buckets into this one (same geometry only)."""
        if (other._lo, other._growth, len(other._counts)) != (
            self._lo, self._growth, len(self._counts)
        ):
            raise ValueError("cannot merge histograms with different buckets")
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            low, high = other._min, other._max
        with self._lock:
            for index, n in enumerate(counts):
                self._counts[index] += n
            self._count += count
            self._sum += total
            self._min = min(self._min, low)
            self._max = max(self._max, high)

    # -- reading -------------------------------------------------------------

    @property
    def bounds(self) -> List[float]:
        """Upper bound of each bucket."""
        return [self._lo * self._growth ** i for i in range(len(self._counts))]

    @property
    def counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the ``fraction`` rank.

        Clamped to the observed ``[min, max]`` so a single sample
        reports itself exactly; 0.0 when empty.
        """
        with self._lock:
            if not self._count:
                return 0.0
            rank = max(1, math.ceil(fraction * self._count))
            cumulative = 0
            last = len(self._counts) - 1
            for index, n in enumerate(self._counts):
                cumulative += n
                if cumulative >= rank:
                    if index == last:
                        # The overflow bucket spans to +Inf; its only
                        # honest upper bound is the observed max.
                        return self._max
                    bound = self._lo * self._growth ** index
                    return max(self._min, min(bound, self._max))
            return self._max

    def summary(self) -> dict:
        """The STATS-facing digest: count/sum/avg/min/max/p50/p99."""
        with self._lock:
            count, total = self._count, self._sum
        return {
            "count": count,
            "sum": total,
            "avg": total / count if count else 0.0,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.5),
            "p99": self.percentile(0.99),
        }

    def to_dict(self) -> dict:
        """JSON form with the non-empty buckets (loadgen ``--json``)."""
        with self._lock:
            pairs = [
                (self._lo * self._growth ** i, n)
                for i, n in enumerate(self._counts)
                if n
            ]
            return {
                "lo": self._lo,
                "growth": self._growth,
                "count": self._count,
                "sum": self._sum,
                "min": self.min,
                "max": self._max,
                "buckets": [[bound, n] for bound, n in pairs],
            }


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(items: Iterable[Tuple[str, str]]) -> str:
    pairs = [
        '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in items
    ]
    return "{%s}" % ",".join(pairs) if pairs else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Named metrics keyed by ``(name, labels)``; get-or-create access.

    ``counter`` / ``gauge`` / ``histogram`` return the live metric
    object — hot paths call once at setup and keep the reference, so
    recording never touches the registry lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    def _get(
        self,
        kind: str,
        name: str,
        help: str,
        labels: dict,
        factory: Callable[[], Any],
    ) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._kinds.get(name)
            if existing is not None and existing != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
                self._kinds[name] = kind
                if help:
                    self._help[name] = help
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        lo: float = DEFAULT_LO,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
        **labels: str,
    ) -> LatencyHistogram:
        return self._get(
            "histogram", name, help, labels,
            lambda: LatencyHistogram(lo=lo, growth=growth, buckets=buckets),
        )

    # -- reading -------------------------------------------------------------

    def histograms(self, name: str) -> List[Tuple[dict, LatencyHistogram]]:
        """All ``(labels, histogram)`` series of one histogram family."""
        with self._lock:
            return [
                (dict(key[1]), metric)
                for key, metric in self._metrics.items()
                if key[0] == name and isinstance(metric, LatencyHistogram)
            ]

    def expose(self) -> str:
        """Prometheus text exposition of every registered metric.

        Histograms emit the non-empty buckets (cumulative, per the
        format) plus the mandatory ``+Inf``, ``_sum``, and ``_count``
        series — sparse but scraper-valid.
        """
        with self._lock:
            items = sorted(self._metrics.items())
            kinds = dict(self._kinds)
            helps = dict(self._help)
        lines: List[str] = []
        seen_header = set()
        for (name, label_items), metric in items:
            if name not in seen_header:
                seen_header.add(name)
                if name in helps:
                    lines.append(f"# HELP {name} {helps[name]}")
                lines.append(f"# TYPE {name} {kinds[name]}")
            labels = _format_labels(label_items)
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{name}{labels} {_format_value(metric.value)}")
                continue
            with metric._lock:
                counts = list(metric._counts)
                count, total = metric._count, metric._sum
            cumulative = 0
            bounds = metric.bounds
            for index, n in enumerate(counts):
                if not n:
                    continue
                cumulative += n
                le = _format_labels(
                    label_items + (("le", _format_value(bounds[index])),)
                )
                lines.append(f"{name}_bucket{le} {cumulative}")
            inf = _format_labels(label_items + (("le", "+Inf"),))
            lines.append(f"{name}_bucket{inf} {count}")
            lines.append(f"{name}_sum{labels} {_format_value(total)}")
            lines.append(f"{name}_count{labels} {count}")
        return "\n".join(lines) + "\n"


# =============================================================================
# exposition parsing (repro query latency, round-trip tests)
# =============================================================================

def _parse_labels(text: str) -> dict:
    labels: dict = {}
    index = 0
    while index < len(text):
        eq = text.index("=", index)
        key = text[index:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"'
        value = []
        j = eq + 2
        while text[j] != '"':
            if text[j] == "\\":
                j += 1
            value.append(text[j])
            j += 1
        labels[key] = "".join(value)
        index = j + 1
    return labels


def parse_exposition(text: str) -> Dict[str, List[Tuple[dict, float]]]:
    """Parse Prometheus text exposition into ``{name: [(labels, value)]}``.

    Inverse of :meth:`MetricsRegistry.expose` (histograms come back as
    their ``_bucket``/``_sum``/``_count`` series).  Raises
    ``ValueError`` on a malformed sample line.
    """
    series: Dict[str, List[Tuple[dict, float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            try:
                labels = _parse_labels(label_text)
            except (AssertionError, IndexError) as exc:
                raise ValueError(f"bad labels in exposition line: {raw!r}") from exc
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"bad exposition line: {raw!r}")
            name, value_text = parts
            labels = {}
        value_text = value_text.strip()
        value = math.inf if value_text == "+Inf" else float(value_text)
        series.setdefault(name, []).append((labels, value))
    return series


def quantile_from_buckets(
    buckets: List[Tuple[dict, float]], fraction: float
) -> Optional[float]:
    """p-th value from one series' cumulative ``_bucket`` samples.

    ``buckets`` is the ``(labels, cumulative_count)`` list of a single
    histogram series (labels differing only in ``le``).  Returns the
    first bucket bound whose cumulative count reaches the rank, or
    ``None`` for an empty series.
    """
    ordered = sorted(
        (
            (math.inf if b[0]["le"] == "+Inf" else float(b[0]["le"]), b[1])
            for b in buckets
        ),
        key=lambda pair: pair[0],
    )
    if not ordered:
        return None
    total = ordered[-1][1]
    if not total:
        return None
    rank = max(1, math.ceil(fraction * total))
    for bound, cumulative in ordered:
        if cumulative >= rank:
            return bound
    return ordered[-1][0]
