"""Observability: the process-wide metrics registry and the operator CLI.

``repro.obs`` is deliberately dependency-free (stdlib only) and safe to
import from any layer — the engine, the serving stack, the benchmarks,
and the CLI all meter through the same registry types.

* :mod:`repro.obs.registry` — counters, gauges, log-bucketed latency
  histograms, Prometheus-style text exposition, and an exposition
  parser (used by ``repro query latency`` and the round-trip tests).
* :mod:`repro.obs.query` — the ``repro query`` click subcommand group
  (imported lazily by ``repro.cli`` so click stays an optional,
  CLI-only dependency).
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    parse_exposition,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "parse_exposition",
]
