"""``repro query`` — the operator inspection CLI.

A click subcommand group answering questions against **either** a cold
workspace directory (``--workspace``) or a live server (``--server
HOST:PORT``), in ``table`` / ``csv`` / ``json`` formats::

    repro query -w /data/cole levels
    repro query -w /data/cole segments -f json
    repro query -s 127.0.0.1:7407 latency
    repro query -s 127.0.0.1:7407 audit 00ff 01ff --limit 16

File-backed subcommands (``levels``, ``segments``, ``bloom``, ``wal``)
read the immutable on-disk artifacts directly — manifests, run files,
WAL segments — which is safe against a concurrently running server
because committed runs never mutate and the WAL record scanner stops
cleanly at a torn tail.  Against ``--server`` they resolve the
workspace path from the server's STATS.  Control-plane subcommands
(``replication``, ``caches``, ``latency``) read live STATS / METRICS;
against a cold workspace they degrade to an empty answer with a note
(process state does not outlive the process).

``click`` is imported at module load, but :mod:`repro.cli` only imports
*this module* inside the ``query`` command — environments without click
keep every other CLI command working.
"""

from __future__ import annotations

import asyncio
import csv
import functools
import io
import json
import os
import random
import sys
from typing import Any, Callable, List, Optional, Tuple

import click

from repro.bench.report import format_table
from repro.common.errors import StorageError
from repro.obs.registry import parse_exposition, quantile_from_buckets

#: Random absent-address probes for the measured bloom FPR.
DEFAULT_BLOOM_PROBES = 512


# =============================================================================
# target resolution (workspace path vs live server)
# =============================================================================

class QueryTarget:
    """Where answers come from: a directory, a server, or both.

    STATS / METRICS are fetched once per invocation and cached — every
    subcommand sees one consistent snapshot.
    """

    def __init__(
        self, workspace: Optional[str], server: Optional[Tuple[str, int]]
    ) -> None:
        self.workspace = workspace
        self.server = server
        self._stats: Optional[dict] = None
        self._metrics_text: Optional[str] = None

    @property
    def live(self) -> bool:
        return self.server is not None

    def call(self, fn: Callable[[Any], Any]) -> Any:
        """Run ``fn(client)`` (async) against the live server."""

        async def go() -> Any:
            from repro.server.client import connect

            async with connect(self.server) as client:
                return await fn(client)

        return asyncio.run(go())

    def stats(self) -> dict:
        if self._stats is None:
            self._stats = self.call(lambda client: client.stats())
        return self._stats

    def metrics_text(self) -> str:
        if self._metrics_text is None:
            self._metrics_text = self.call(lambda client: client.metrics())
        return self._metrics_text

    def resolve_workspace(self) -> str:
        """The on-disk workspace: given directly, or asked of the server."""
        if self.workspace is not None:
            return self.workspace
        path = (self.stats().get("engine") or {}).get("workspace")
        if not path:
            raise click.ClickException(
                "the server did not report a workspace path in STATS"
            )
        return path


def _parse_server(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise click.BadParameter(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


# =============================================================================
# shared decorators and rendering
# =============================================================================

def error_handler(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Convert storage/IO failures into clean CLI errors (no tracebacks)."""

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        try:
            return fn(*args, **kwargs)
        except click.ClickException:
            raise
        except (StorageError, OSError, ValueError) as exc:
            raise click.ClickException(f"{type(exc).__name__}: {exc}")

    return wrapper


def format_option(fn: Callable[..., Any]) -> Callable[..., Any]:
    return click.option(
        "--format",
        "-f",
        "fmt",
        type=click.Choice(["table", "csv", "json"]),
        default="table",
        show_default=True,
        help="output format",
    )(fn)


def format_output(columns: List[str], rows: List[dict], fmt: str) -> str:
    """Render ``rows`` (list of dicts) in the requested format."""
    if fmt == "json":
        return json.dumps(rows, indent=2)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(columns)
        for row in rows:
            writer.writerow([row.get(column, "") for column in columns])
        return buffer.getvalue().rstrip("\n")
    return format_table(
        columns, [[row.get(column, "") for column in columns] for row in rows]
    )


def emit(columns: List[str], rows: List[dict], fmt: str, note: str = "") -> None:
    if note:
        click.echo(note, err=True)
    click.echo(format_output(columns, rows, fmt))


# =============================================================================
# collectors (plain functions — the tests drive these directly too)
# =============================================================================

def shard_roots(workspace: str) -> List[Tuple[str, str]]:
    """``(shard_label, directory)`` pairs covering the workspace.

    A sharded workspace is a directory of ``shard-NN`` subdirectories
    (no root manifest); a single-engine workspace is its own root.
    """
    from repro.core.manifest import MANIFEST_NAME

    if os.path.isdir(workspace):
        shard_dirs = sorted(
            name
            for name in os.listdir(workspace)
            if name.startswith("shard-")
            and os.path.isdir(os.path.join(workspace, name))
        )
        if shard_dirs and not os.path.isfile(
            os.path.join(workspace, MANIFEST_NAME)
        ):
            return [(name, os.path.join(workspace, name)) for name in shard_dirs]
    return [("-", workspace)]


def committed_runs(workspace: str) -> List[Tuple[str, str, int, str, object]]:
    """Every manifest-committed run: ``(shard, dir, level, group, record)``."""
    from repro.core.manifest import load_manifest

    out = []
    for shard, directory in shard_roots(workspace):
        manifest = load_manifest(directory)
        for level, groups in sorted(manifest.levels.items()):
            for role, records in sorted(groups.items()):
                for record in records:
                    out.append((shard, directory, level, role, record))
    return out


def collect_levels(workspace: str) -> List[dict]:
    """Runs, entry counts, and byte sizes per level per shard."""
    from repro.core.run import RUN_SUFFIXES

    rows = []
    for shard, directory, level, role, record in committed_runs(workspace):
        size = 0
        for suffix in RUN_SUFFIXES:
            path = os.path.join(directory, record.name + suffix)
            if os.path.exists(path):
                size += os.path.getsize(path)
        rows.append(
            {
                "shard": shard,
                "level": level,
                "group": role,
                "run": record.name,
                "entries": record.num_entries,
                "bytes": size,
            }
        )
    return rows


def collect_segments(workspace: str, page_size: int = 4096) -> List[dict]:
    """Learned-index (PLM) statistics per committed run.

    The index file is self-describing (its metadata page records the
    layer table and ``models_per_page``), so a cold read needs only the
    page size.  ``seek_pages`` is the predicted point-lookup IO: one
    page per model layer plus one value page — the ``Cmodel`` bound.
    """
    from repro.core.indexfile import IndexFile
    from repro.common.params import SystemParams
    from repro.diskio.workspace import Workspace

    rows = []
    params = SystemParams(page_size=page_size)
    for shard, directory, level, _role, record in committed_runs(workspace):
        ws = Workspace(directory, page_size)
        try:
            index = IndexFile(
                ws.open_file(f"{record.name}.idx", category="index", create=False),
                params,
            )
            segments = index.num_bottom_models
            epsilon = index.models_per_page // 2
            rows.append(
                {
                    "shard": shard,
                    "level": level,
                    "run": record.name,
                    "entries": record.num_entries,
                    "segments": segments,
                    "layers": index.num_layers,
                    "models_per_page": index.models_per_page,
                    "epsilon": epsilon,
                    "entries_per_segment": (
                        round(record.num_entries / segments, 1) if segments else 0.0
                    ),
                    "seek_pages": index.num_layers + 1,
                }
            )
        finally:
            ws.close()
    return rows


def collect_bloom(
    workspace: str, probes: int = DEFAULT_BLOOM_PROBES, seed: int = 0xB100
) -> List[dict]:
    """Bloom-filter geometry and false-positive rates per committed run.

    ``fpr_measured`` probes the filter with ``probes`` seeded random
    32-byte addresses (absent with overwhelming probability) — the
    empirical check on the theoretical rate.
    """
    from repro.bloomfilter import BloomFilter

    rng = random.Random(seed)
    probe_keys = [rng.getrandbits(256).to_bytes(32, "big") for _ in range(probes)]
    rows = []
    for shard, directory, level, _role, record in committed_runs(workspace):
        path = os.path.join(directory, f"{record.name}.blm")
        if not os.path.exists(path):
            continue
        with open(path, "rb") as handle:
            bloom = BloomFilter.from_bytes(handle.read())
        hits = sum(1 for key in probe_keys if bloom.may_contain(key))
        rows.append(
            {
                "shard": shard,
                "level": level,
                "run": record.name,
                "keys": bloom.count,
                "bits": bloom.num_bits,
                "hashes": bloom.num_hashes,
                "size_bytes": bloom.size_bytes(),
                "fpr_theory": round(bloom.false_positive_rate(), 6),
                "fpr_measured": round(hits / probes, 6) if probes else 0.0,
            }
        )
    return rows


def collect_wal(wal_dir: str) -> List[dict]:
    """Per-segment WAL state read directly from disk.

    Safe against a live writer: the record scanner stops at the first
    torn record, which for the active tail just means "scanned up to
    the bytes durable at read time".  The highest-numbered segment of
    each shard chain is the active one.
    """
    from repro.wal.record import RecordType, scan_records

    rows = []
    if not os.path.isdir(wal_dir):
        return rows
    shard_dirs = sorted(
        name
        for name in os.listdir(wal_dir)
        if name.startswith("shard-") and os.path.isdir(os.path.join(wal_dir, name))
    )
    for shard in shard_dirs:
        directory = os.path.join(wal_dir, shard)
        segments = sorted(
            name
            for name in os.listdir(directory)
            if name.startswith("seg-") and name.endswith(".wal")
        )
        for position, segment in enumerate(segments):
            path = os.path.join(directory, segment)
            with open(path, "rb") as handle:
                data = handle.read()
            result = scan_records(data)
            puts = sum(
                1 for record in result.records if record.type == RecordType.PUTS
            )
            commits = sum(
                1 for record in result.records if record.type == RecordType.COMMIT
            )
            max_height = max(
                (record.height for record in result.records), default=0
            )
            rows.append(
                {
                    "shard": shard,
                    "segment": segment,
                    "state": "active" if position == len(segments) - 1 else "sealed",
                    "bytes": len(data),
                    "records": len(result.records),
                    "puts": puts,
                    "commits": commits,
                    "max_height": max_height,
                    "torn": bool(result.torn),
                }
            )
    return rows


def collect_caches(stats: dict) -> List[dict]:
    """One row per cache (read / negative / page) from a STATS snapshot."""
    rows = []
    for label in ("cache", "negative_cache"):
        snapshot = stats.get(label)
        if not snapshot:
            continue
        rows.append(
            {
                "cache": "read" if label == "cache" else "negative",
                "hits": snapshot["hits"],
                "misses": snapshot["misses"],
                "lookups": snapshot["lookups"],
                "hit_rate": round(snapshot["hit_rate"], 4),
                "entries": snapshot["entries"],
                "capacity": snapshot["capacity"],
            }
        )
    page = (stats.get("io") or {}).get("page_cache")
    if page:
        rows.append(
            {
                "cache": "page",
                "hits": page["hits"],
                "misses": page["misses"],
                "lookups": page["hits"] + page["misses"],
                "hit_rate": round(page["hit_rate"], 4),
                "entries": page.get("promotions", ""),
                "capacity": "",
            }
        )
    return rows


def _compaction_rows(
    shard: str, policy: str, flushed: int, rewritten: int, levels: List[tuple]
) -> List[dict]:
    """Shared row shaping of the cold and live compaction collectors:
    one row per level plus a ``*`` summary row carrying the cumulative
    write-amplification (merge bytes over flush bytes)."""
    rows = []
    for level, runs, entries, size, level_rewritten in levels:
        rows.append(
            {
                "shard": shard,
                "level": level,
                "policy": policy,
                "runs": runs,
                "entries": entries,
                "bytes": size,
                "bytes_rewritten": level_rewritten,
                "write_amp": "",
            }
        )
    rows.append(
        {
            "shard": shard,
            "level": "*",
            "policy": policy,
            "runs": sum(row[1] for row in levels),
            "entries": sum(row[2] for row in levels),
            "bytes": flushed,
            "bytes_rewritten": rewritten,
            "write_amp": round(rewritten / flushed, 4) if flushed else 0.0,
        }
    )
    return rows


def collect_compaction(workspace: str) -> List[dict]:
    """Compaction policy and write-amp accounting from cold manifests.

    The summary row's ``bytes`` column is cumulative flush output (the
    write-amp denominator); per-level rows show the live run layout and
    the merge bytes ever written onto that level.
    """
    from repro.core.manifest import load_manifest
    from repro.core.run import RUN_SUFFIXES

    rows = []
    for shard, directory in shard_roots(workspace):
        manifest = load_manifest(directory)
        policy = manifest.compaction
        if not policy:
            policy = "leveling" if manifest.next_run_seq > 0 else "-"
        levels = []
        for level, groups in sorted(manifest.levels.items()):
            records = [
                record
                for role in sorted(groups)
                for record in groups[role]
            ]
            size = 0
            for record in records:
                for suffix in RUN_SUFFIXES:
                    path = os.path.join(directory, record.name + suffix)
                    if os.path.exists(path):
                        size += os.path.getsize(path)
            levels.append(
                (
                    level,
                    len(records),
                    sum(record.num_entries for record in records),
                    size,
                    manifest.level_bytes_rewritten.get(level, 0),
                )
            )
        rows.extend(
            _compaction_rows(
                shard,
                policy,
                manifest.bytes_flushed,
                manifest.bytes_rewritten,
                levels,
            )
        )
    return rows


def collect_compaction_live(stats: dict) -> List[dict]:
    """Compaction accounting from a live server's STATS snapshot
    (aggregated across shards by the engine)."""
    snapshot = (stats.get("engine") or {}).get("compaction")
    if not snapshot:
        return []
    levels = []
    for level, row in sorted(
        (int(level), row) for level, row in snapshot["levels"].items()
    ):
        levels.append(
            (level, row["runs"], row["entries"], row["bytes"], row["bytes_rewritten"])
        )
    return _compaction_rows(
        "-",
        snapshot["policy"],
        snapshot["bytes_flushed"],
        snapshot["bytes_rewritten"],
        levels,
    )


def collect_latency(metrics_text: str) -> List[dict]:
    """Histogram digests parsed back out of the METRICS exposition.

    One row per histogram series: the ``_count`` / ``_sum`` samples give
    count and mean, the cumulative ``_bucket`` samples give p50/p99 —
    exactly what any scraper would compute.
    """
    series = parse_exposition(metrics_text)
    rows = []
    for name in sorted(series):
        if not name.endswith("_count"):
            continue
        base = name[: -len("_count")]
        buckets = series.get(base + "_bucket")
        if not buckets:
            continue  # a counter family that happens to end in _count
        sums = {
            tuple(sorted(labels.items())): value
            for labels, value in series.get(base + "_sum", [])
        }
        for labels, count in series[name]:
            key = tuple(sorted(labels.items()))
            mine = [
                (bucket_labels, value)
                for bucket_labels, value in buckets
                if tuple(
                    sorted(
                        (k, v) for k, v in bucket_labels.items() if k != "le"
                    )
                )
                == key
            ]
            total = sums.get(key, 0.0)
            rows.append(
                {
                    "metric": base,
                    "labels": ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                    or "-",
                    "count": int(count),
                    "avg_s": round(total / count, 6) if count else 0.0,
                    "p50_s": round(quantile_from_buckets(mine, 0.5) or 0.0, 6),
                    "p99_s": round(quantile_from_buckets(mine, 0.99) or 0.0, 6),
                }
            )
    return rows


def flatten(mapping: dict) -> List[dict]:
    """A nested dict as sorted ``metric`` / ``value`` rows."""
    rows = []

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, dict):
            for key in sorted(value):
                walk(f"{prefix}.{key}" if prefix else str(key), value[key])
        else:
            rows.append({"metric": prefix, "value": value})

    walk("", mapping)
    return rows


def collect_audit(
    target: QueryTarget, addr_low: bytes, addr_high: bytes, limit: int
) -> List[dict]:
    """Provenance walk over the live addresses in ``[addr_low, addr_high]``.

    Scans the range for up to ``limit`` live addresses, then asks the
    full version history of each (block 0 .. the committed height).
    Live mode drives SCAN + PROV over the wire; cold mode opens the
    engine read-style under the workspace flock (committed state only —
    an unreplayed WAL tail is the server's to recover, not ours).
    """
    if target.live:
        async def run(client: Any) -> Any:
            info = await client.root()
            triples = await client.scan(addr_low, addr_high, limit=limit)
            out = []
            for addr in dict.fromkeys(addr for addr, _blk, _value in triples):
                result, _root = await client.prov(addr, 0, max(info.height, 0))
                out.append((addr, result))
            return out

        histories = target.call(run)
        return [_audit_row(addr, result) for addr, result in histories]
    from repro.cli import _detect_shards, _lock_workspace, _open_engine

    workspace = target.resolve_workspace()
    lock = _lock_workspace(workspace, "repro query audit")
    engine = _open_engine(workspace, _detect_shards(workspace))
    try:
        height = max(engine.current_blk, engine.checkpoint_blk, 0)
        triples = engine.scan(addr_low, addr_high, limit=limit)
        rows = []
        for addr in dict.fromkeys(addr for addr, _blk, _value in triples):
            result, _root = engine.prov_query_anchored(addr, 0, height)
            rows.append(_audit_row(addr, result))
        return rows
    finally:
        engine.close()
        lock.close()


def _audit_row(addr: bytes, result: Any) -> dict:
    versions = list(result.versions)
    return {
        "addr": addr.hex(),
        "versions": len(versions),
        "first_blk": versions[0][0] if versions else "",
        "last_blk": versions[-1][0] if versions else "",
        "latest_bytes": len(versions[-1][1]) if versions else 0,
        "boundary": result.boundary_version is not None,
    }


# =============================================================================
# the click group
# =============================================================================

@click.group(name="query")
@click.option(
    "--workspace",
    "-w",
    type=click.Path(),
    default=None,
    help="cold workspace directory to inspect",
)
@click.option(
    "--server",
    "-s",
    "server_addr",
    default=None,
    metavar="HOST:PORT",
    help="live server to inspect",
)
@click.pass_context
def query_group(ctx: click.Context, workspace: Optional[str], server_addr: Optional[str]) -> None:
    """Inspect a COLE deployment: levels, indexes, blooms, WAL,
    replication, caches, latencies, and provenance audits.

    Give exactly one of --workspace (cold, file-backed) or --server
    (live).  Global options come before the subcommand:
    ``repro query -s 127.0.0.1:7407 latency -f json``.
    """
    if (workspace is None) == (server_addr is None):
        raise click.UsageError(
            "give exactly one of --workspace/-w or --server/-s"
        )
    server = _parse_server(server_addr) if server_addr is not None else None
    ctx.obj = QueryTarget(workspace, server)


@query_group.command()
@format_option
@click.pass_obj
@error_handler
def levels(target: QueryTarget, fmt: str) -> None:
    """Runs and sizes per level per shard."""
    rows = collect_levels(target.resolve_workspace())
    emit(["shard", "level", "group", "run", "entries", "bytes"], rows, fmt)


@query_group.command()
@format_option
@click.pass_obj
@error_handler
def segments(target: QueryTarget, fmt: str) -> None:
    """Learned-index segment counts, epsilon, predicted seek cost."""
    rows = collect_segments(target.resolve_workspace())
    emit(
        [
            "shard", "level", "run", "entries", "segments", "layers",
            "models_per_page", "epsilon", "entries_per_segment", "seek_pages",
        ],
        rows,
        fmt,
    )


@query_group.command()
@click.option(
    "--probes",
    type=int,
    default=DEFAULT_BLOOM_PROBES,
    show_default=True,
    help="random absent-key probes for the measured FPR",
)
@format_option
@click.pass_obj
@error_handler
def bloom(target: QueryTarget, probes: int, fmt: str) -> None:
    """Bloom bits, hash counts, theoretical and measured FPR."""
    rows = collect_bloom(target.resolve_workspace(), probes=probes)
    emit(
        [
            "shard", "level", "run", "keys", "bits", "hashes",
            "size_bytes", "fpr_theory", "fpr_measured",
        ],
        rows,
        fmt,
    )


@query_group.command()
@format_option
@click.pass_obj
@error_handler
def wal(target: QueryTarget, fmt: str) -> None:
    """WAL segments: sealed/active state, record counts, torn tails."""
    if target.live:
        wal_stats = target.stats().get("wal")
        wal_dir = wal_stats.get("directory") if wal_stats else None
        note = "" if wal_dir else "server runs without a WAL"
    else:
        from repro.cli import WAL_DIRNAME

        wal_dir = os.path.join(target.resolve_workspace(), WAL_DIRNAME)
        note = "" if os.path.isdir(wal_dir) else f"no WAL directory at {wal_dir}"
    rows = collect_wal(wal_dir) if wal_dir else []
    emit(
        [
            "shard", "segment", "state", "bytes", "records", "puts",
            "commits", "max_height", "torn",
        ],
        rows,
        fmt,
        note=note,
    )


@query_group.command()
@format_option
@click.pass_obj
@error_handler
def replication(target: QueryTarget, fmt: str) -> None:
    """Replication role, lag, and subscriber state."""
    if target.live:
        section = target.stats().get("replication") or {"role": "standalone"}
        note = ""
    else:
        section = {"role": "offline"}
        note = "replication state is process state; inspect a live server"
    emit(["metric", "value"], flatten(section), fmt, note=note)


@query_group.command()
@format_option
@click.pass_obj
@error_handler
def compaction(target: QueryTarget, fmt: str) -> None:
    """Compaction policy, per-level layout, cumulative write-amp.

    The ``*`` row totals a shard: ``bytes`` is cumulative flush output,
    ``bytes_rewritten`` cumulative merge output, ``write_amp`` their
    ratio — the number the leveling/tiering trade-off moves.
    """
    if target.live:
        rows = collect_compaction_live(target.stats())
    else:
        rows = collect_compaction(target.resolve_workspace())
    emit(
        [
            "shard", "level", "policy", "runs", "entries", "bytes",
            "bytes_rewritten", "write_amp",
        ],
        rows,
        fmt,
    )


@query_group.command()
@format_option
@click.pass_obj
@error_handler
def caches(target: QueryTarget, fmt: str) -> None:
    """Read / negative / page cache hit rates and occupancy."""
    if target.live:
        rows = collect_caches(target.stats())
        note = ""
    else:
        rows = []
        note = "cache state is process state; inspect a live server"
    emit(
        ["cache", "hits", "misses", "lookups", "hit_rate", "entries", "capacity"],
        rows,
        fmt,
        note=note,
    )


@query_group.command()
@format_option
@click.pass_obj
@error_handler
def latency(target: QueryTarget, fmt: str) -> None:
    """Per-op latency histograms (parsed from METRICS exposition)."""
    if target.live:
        rows = collect_latency(target.metrics_text())
        note = ""
    else:
        rows = []
        note = "latency histograms are process state; inspect a live server"
    emit(
        ["metric", "labels", "count", "avg_s", "p50_s", "p99_s"],
        rows,
        fmt,
        note=note,
    )


@query_group.command()
@click.argument("addr_low")
@click.argument("addr_high")
@click.option(
    "--limit",
    type=int,
    default=32,
    show_default=True,
    help="max live addresses audited in the range",
)
@click.option(
    "--addr-size",
    type=int,
    default=32,
    show_default=True,
    help="address width in bytes (short hex args are padded to this)",
)
@format_option
@click.pass_obj
@error_handler
def audit(
    target: QueryTarget,
    addr_low: str,
    addr_high: str,
    limit: int,
    addr_size: int,
    fmt: str,

) -> None:
    """Provenance walk over ADDR_LOW..ADDR_HIGH (hex; prefixes allowed).

    For each live address in the range (up to --limit): its version
    count and first/last change heights, proven against the committed
    state root.
    """
    low = bytes.fromhex(addr_low)
    high = bytes.fromhex(addr_high)
    if len(low) > addr_size or len(high) > addr_size:
        raise click.BadParameter(f"addresses are at most {addr_size} bytes")
    low = low + b"\x00" * (addr_size - len(low))
    high = high + b"\xff" * (addr_size - len(high))
    rows = collect_audit(target, low, high, limit)
    emit(
        ["addr", "versions", "first_blk", "last_blk", "latest_bytes", "boundary"],
        rows,
        fmt,
    )


def run_query(argv: List[str]) -> int:
    """Entry point used by ``repro.cli``: run the group, return an exit
    code instead of raising ``SystemExit`` (testable, embeddable)."""
    try:
        result = query_group.main(
            args=list(argv), prog_name="repro query", standalone_mode=False
        )
    except click.exceptions.Exit as exc:
        return exc.exit_code
    except click.exceptions.Abort:
        click.echo("aborted", err=True)
        return 130
    except click.ClickException as exc:
        exc.show()
        return exc.exit_code
    return int(result) if isinstance(result, int) else 0


if __name__ == "__main__":
    sys.exit(run_query(sys.argv[1:]))
