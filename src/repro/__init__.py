"""COLE: Column-based Learned Storage for Blockchain Systems (FAST 2024).

A from-scratch Python reproduction of the paper and all of its
substrates.  The most common entry points:

>>> from repro import Cole, ColeParams, verify_provenance

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for measured reproductions of every table and figure.
"""

from repro.common.params import ColeParams, ShardParams, SystemParams
from repro.core import Cole, CompoundKey, verify_provenance
from repro.sharding import ShardedCole, verify_sharded_provenance
from repro.wal import WriteAheadLog, replay_wal, restore_store, snapshot_store

__version__ = "1.2.0"

__all__ = [
    "Cole",
    "ColeParams",
    "ShardedCole",
    "ShardParams",
    "SystemParams",
    "CompoundKey",
    "verify_provenance",
    "verify_sharded_provenance",
    "WriteAheadLog",
    "replay_wal",
    "snapshot_store",
    "restore_store",
    "__version__",
]
