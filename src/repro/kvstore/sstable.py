"""Sorted-string tables: immutable sorted runs of the LSM store.

File layout (page granular):

* data pages: packed ``u32 klen || key || u32 vlen || value`` records
  (``vlen == 0xFFFFFFFF`` marks a tombstone);
* one footer page: entry count, data page count;
* sparse index (first key of every data page) and bloom filter are
  rebuilt on open from the data pages — their in-memory footprint is
  registered with the workspace so storage accounting stays honest.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.bloomfilter import BloomFilter
from repro.common.codec import decode_u32, decode_u64, encode_u32, encode_u64
from repro.common.errors import StorageError
from repro.diskio.pagefile import PagedFile

TOMBSTONE = 0xFFFFFFFF

Record = Tuple[bytes, Optional[bytes]]  # value None == tombstone


class SSTableWriter:
    """Streaming writer for one sorted run."""

    def __init__(self, file: PagedFile, bloom_bits_per_key: int = 10) -> None:
        self._file = file
        self._page = bytearray()
        self._first_keys: List[bytes] = []
        self._count = 0
        self._last_key: Optional[bytes] = None
        self._records: List[Record] = []
        self._bloom_bits = bloom_bits_per_key
        self._keys_for_bloom: List[bytes] = []

    def add(self, key: bytes, value: Optional[bytes]) -> None:
        """Append one record (keys strictly increasing; None = tombstone)."""
        if self._last_key is not None and key <= self._last_key:
            raise StorageError("sstable keys must be strictly increasing")
        self._last_key = key
        record = _encode_record(key, value)
        if self._page and len(self._page) + len(record) > self._file.page_size:
            self._file.append_page(bytes(self._page))
            self._page.clear()
        if len(record) > self._file.page_size:
            raise StorageError("record larger than a page")
        if not self._page:
            self._first_keys.append(key)
        self._page += record
        self._count += 1
        self._keys_for_bloom.append(key)

    def finish(self) -> "SSTable":
        """Flush, write the footer, and return a reader."""
        if self._page:
            self._file.append_page(bytes(self._page))
            self._page.clear()
        data_pages = self._file.num_pages
        footer = encode_u64(self._count) + encode_u64(data_pages)
        self._file.append_page(footer)
        self._file.flush()
        bloom = BloomFilter.for_capacity(
            max(1, self._count), self._bloom_bits, num_hashes=7
        )
        for key in self._keys_for_bloom:
            bloom.add(key)
        return SSTable(self._file, self._count, data_pages, self._first_keys, bloom)


class SSTable:
    """Read access to one sorted run."""

    def __init__(
        self,
        file: PagedFile,
        count: int,
        data_pages: int,
        first_keys: List[bytes],
        bloom: BloomFilter,
    ) -> None:
        self._file = file
        self.count = count
        self.data_pages = data_pages
        self._first_keys = first_keys
        self.bloom = bloom

    @classmethod
    def open(cls, file: PagedFile, bloom_bits_per_key: int = 10) -> "SSTable":
        """Re-open a finished table, rebuilding index and bloom."""
        footer = file.read_page(file.num_pages - 1)
        count = decode_u64(footer, 0)
        data_pages = decode_u64(footer, 8)
        first_keys: List[bytes] = []
        bloom = BloomFilter.for_capacity(max(1, count), bloom_bits_per_key, 7)
        for page_id in range(data_pages):
            records = _decode_page(file.read_page(page_id))
            if records:
                first_keys.append(records[0][0])
            for key, _value in records:
                bloom.add(key)
        return cls(file, count, data_pages, first_keys, bloom)

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Lookup: returns ``(found, value)``; value None == tombstone."""
        if key not in self.bloom:
            return False, None
        page_index = bisect.bisect_right(self._first_keys, key) - 1
        if page_index < 0:
            return False, None
        for record_key, value in _decode_page(self._file.read_page(page_index)):
            if record_key == key:
                return True, value
        return False, None

    def iter_records(self) -> Iterator[Record]:
        """All records in key order (sequential page reads)."""
        for page_id in range(self.data_pages):
            yield from _decode_page(self._file.read_page(page_id))

    def memory_overhead_bytes(self) -> int:
        """In-memory sparse index + bloom (registered with the workspace)."""
        index_bytes = sum(len(key) + 8 for key in self._first_keys)
        return index_bytes + self.bloom.size_bytes()


def _encode_record(key: bytes, value: Optional[bytes]) -> bytes:
    if value is None:
        return encode_u32(len(key)) + key + encode_u32(TOMBSTONE)
    return encode_u32(len(key)) + key + encode_u32(len(value)) + value


def _decode_page(page: bytes) -> List[Record]:
    records: List[Record] = []
    offset = 0
    while offset + 4 <= len(page):
        klen = decode_u32(page, offset)
        if klen == 0:
            break  # zero padding reached
        offset += 4
        key = page[offset : offset + klen]
        offset += klen
        vlen = decode_u32(page, offset)
        offset += 4
        if vlen == TOMBSTONE:
            records.append((key, None))
        else:
            records.append((key, page[offset : offset + vlen]))
            offset += vlen
    return records


def _tag_stream(stream: Iterable[Record], priority: int) -> Iterator[Tuple[bytes, int, Optional[bytes]]]:
    """Bind the stream's merge priority eagerly (avoids late-binding bugs)."""
    for key, value in stream:
        yield key, priority, value


def merge_tables(tables: List[Iterable[Record]]) -> Iterator[Record]:
    """Merge sorted record streams, newest stream last; newest key wins."""
    import heapq

    tagged = [_tag_stream(stream, -index) for index, stream in enumerate(tables)]
    last_key: Optional[bytes] = None
    for key, _priority, value in heapq.merge(*tagged):
        if key == last_key:
            continue
        last_key = key
        yield key, value
