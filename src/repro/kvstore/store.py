"""The LSM store: memtable + tiered levels of sorted-run files.

Mirrors the structure RocksDB gives the paper's baselines: writes land in
an in-memory memtable, full memtables flush to level-1 tables, and a level
holding ``size_ratio`` tables is merge-compacted into the next level.
Reads consult the memtable, then tables newest-first with bloom
pre-checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import StorageError
from repro.diskio.iostats import IOStats
from repro.diskio.workspace import Workspace
from repro.kvstore.sstable import Record, SSTable, SSTableWriter, merge_tables


class LSMStore:
    """A write-optimized byte-key / byte-value store with deletes."""

    def __init__(
        self,
        directory: str,
        page_size: int = 4096,
        memtable_capacity: int = 4096,
        size_ratio: int = 4,
        stats: Optional[IOStats] = None,
        name: str = "kv",
    ) -> None:
        """Open a store rooted at ``directory``.

        Args:
            directory: workspace directory (created if needed).
            page_size: bytes per page of every table file.
            memtable_capacity: entries held in memory before a flush.
            size_ratio: tables per level before compaction (RocksDB's
                tiered style; the paper's baselines use default RocksDB).
            stats: shared IO counters.
            name: file-name prefix, letting several stores share a
                workspace directory.
        """
        self.workspace = Workspace(directory, page_size, stats)
        self.memtable_capacity = memtable_capacity
        self.size_ratio = size_ratio
        self.name = name
        self._memtable: Dict[bytes, Optional[bytes]] = {}
        self._levels: List[List[SSTable]] = []  # levels[i] = tables, oldest first
        self._table_seq = 0

    # -- write path ---------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        if not key:
            raise StorageError("empty keys are not supported")
        self._memtable[key] = value
        if len(self._memtable) >= self.memtable_capacity:
            self.flush()

    def delete(self, key: bytes) -> None:
        """Delete ``key`` (tombstone; reclaimed at compaction)."""
        if not key:
            raise StorageError("empty keys are not supported")
        self._memtable[key] = None
        if len(self._memtable) >= self.memtable_capacity:
            self.flush()

    def flush(self) -> None:
        """Write the memtable as a new level-0 table and compact."""
        if not self._memtable:
            return
        records = sorted(self._memtable.items())
        self._memtable.clear()
        table = self._write_table(iter(records))
        self._push_table(0, table)

    def _write_table(self, records: Iterator[Record]) -> SSTable:
        file_name = f"{self.name}_{self._table_seq:08d}.sst"
        self._table_seq += 1
        handle = self.workspace.open_file(file_name, category="kvstore")
        writer = SSTableWriter(handle)
        for key, value in records:
            writer.add(key, value)
        table = writer.finish()
        self.workspace.register_raw(file_name + ":mem", table.memory_overhead_bytes())
        table.file_name = file_name  # type: ignore[attr-defined]
        return table

    def _push_table(self, level: int, table: SSTable) -> None:
        while len(self._levels) <= level:
            self._levels.append([])
        self._levels[level].append(table)
        if len(self._levels[level]) >= self.size_ratio:
            self._compact(level)

    def _compact(self, level: int) -> None:
        tables = self._levels[level]
        # Tombstones may be dropped only when no older data lives at the
        # destination level or deeper (it could resurrect otherwise).
        drop_tombstones = all(
            not self._levels[deeper] for deeper in range(level + 1, len(self._levels))
        )
        merged = merge_tables([table.iter_records() for table in tables])
        if drop_tombstones:
            merged = ((k, v) for k, v in merged if v is not None)
        new_table = self._write_table(merged)
        for table in tables:
            name = table.file_name  # type: ignore[attr-defined]
            self.workspace.remove_file(name)
            self.workspace.unregister_raw(name + ":mem")
        self._levels[level] = []
        self._push_table(level + 1, new_table)

    # -- read path -----------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Latest value of ``key`` or ``None``."""
        if key in self._memtable:
            return self._memtable[key]
        for level in self._levels:
            for table in reversed(level):
                found, value = table.get(key)
                if found:
                    return value
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All live key-value pairs in key order (full merge scan)."""
        streams: List[Iterator[Record]] = []
        for level in reversed(self._levels):
            for table in level:
                streams.append(table.iter_records())
        streams.append(iter(sorted(self._memtable.items())))
        for key, value in merge_tables(streams):
            if value is not None:
                yield key, value

    # -- accounting / lifecycle --------------------------------------------------------

    def storage_bytes(self) -> int:
        """On-disk footprint plus registered in-memory index overhead."""
        return self.workspace.storage_bytes()

    def close(self) -> None:
        """Close all file handles."""
        self.workspace.close()
