"""A from-scratch LSM key-value store (the baselines' RocksDB stand-in).

Ethereum stores its MPT nodes in RocksDB [18]; the paper's MPT / LIPP /
CMI baselines do the same.  This package provides the equivalent
substrate: an in-memory memtable, immutable sorted-run files with sparse
indexes and bloom filters, and tiered compaction — the same write/read
asymptotics, built on the same paged-file substrate, so the baselines'
storage footprint and IO are measured the same way as COLE's.
"""

from repro.kvstore.store import LSMStore
from repro.kvstore.sstable import SSTable

__all__ = ["LSMStore", "SSTable"]
