"""Crash recovery: replay the WAL tail into a recovered engine.

After a crash, the engine's own recovery (Section 4.3) restores every
committed run from the manifest — but the in-memory level is gone, and
with it every acked write newer than the durable checkpoint.  Those
writes are exactly what the WAL still holds: :func:`replay_wal` reads
each shard chain, drops records the owning shard already holds durably
(``height <= checkpoint_blk``, per shard — shards checkpoint
independently), groups the survivors by block height, and re-commits
them in ascending height order through the engine's ordinary block
lifecycle.  Replay preserves each write's original block assignment, so
the recovered compound keys — and therefore ``Hstate`` — are identical
to the pre-crash state.

Replay is idempotent: running it twice re-inserts the same
``<addr, blk>`` keys with the same values, which overwrite in L0 to the
same state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import StorageError
from repro.wal.log import WriteAheadLog
from repro.wal.record import RecordType


@dataclass
class ReplayStats:
    """What one recovery replay did."""

    records_scanned: int = 0
    puts_replayed: int = 0
    puts_skipped_durable: int = 0  # already in committed runs (<= checkpoint)
    puts_skipped_invalid: int = 0  # rejected by the engine (malformed)
    blocks_replayed: int = 0
    first_height: int = -1
    last_height: int = -1
    commits_seen: Dict[int, bytes] = field(default_factory=dict)
    #: height -> root of every block this replay re-committed.  Replayed
    #: blocks have no COMMIT marker of their own in the WAL (recovery
    #: does not write), so a primary that ships its WAL to replicas
    #: re-marks them from this map before serving (see repro.replication).
    replayed_roots: Dict[int, bytes] = field(default_factory=dict)

    @property
    def replayed_anything(self) -> bool:
        return self.blocks_replayed > 0


def replay_wal(engine, wal: WriteAheadLog) -> ReplayStats:
    """Replay ``wal``'s unacked tail into ``engine``; returns statistics.

    ``engine`` is a freshly opened ``Cole`` or ``ShardedCole`` whose
    shard count matches the WAL's (the WAL meta enforces its own side).
    The engine is left with every surviving write committed at its
    original height; the WAL itself is not modified — truncation happens
    later, once the engine checkpoints the replayed blocks into runs.
    """
    checkpoints = engine.shard_checkpoints()
    if len(checkpoints) != wal.num_shards:
        raise StorageError(
            f"engine has {len(checkpoints)} shards but the WAL was written "
            f"for {wal.num_shards}"
        )
    stats = ReplayStats()
    by_height: Dict[int, List[Tuple[bytes, bytes]]] = {}
    for shard, records in enumerate(wal.scan()):
        for record in records:
            stats.records_scanned += 1
            if record.type == RecordType.COMMIT:
                stats.commits_seen[record.height] = record.root
                continue
            if record.height <= checkpoints[shard]:
                stats.puts_skipped_durable += len(record.items)
                continue
            by_height.setdefault(record.height, []).extend(record.items)
    # Shards checkpoint independently, so a lagging shard's survivors can
    # sit at heights another shard already holds durably — those blocks
    # are re-entered (legal: a fresh engine opens at current_blk 0, and
    # heights replay in ascending order) and the already-durable shards
    # simply receive no writes for them.  Only heights below what *this
    # process* already executed are skipped (an in-process re-replay).
    floor = engine.current_blk
    for height in sorted(by_height):
        if height < floor:
            stats.puts_skipped_durable += len(by_height[height])
            continue
        engine.begin_block(height)
        applied = _apply(engine, by_height[height], stats)
        root = engine.commit_block()
        if applied:
            stats.blocks_replayed += 1
            stats.replayed_roots[height] = bytes(root)
            if stats.first_height < 0:
                stats.first_height = height
            stats.last_height = height
    return stats


def _apply(engine, items: List[Tuple[bytes, bytes]], stats: ReplayStats) -> int:
    """Apply one block's surviving writes; malformed ones are skipped.

    A write the engine rejects (wrong address width after a parameter
    change, for example) can never become readable state, so recovery
    counts it and moves on instead of wedging the whole store.
    """
    try:
        engine.put_many(items)
        stats.puts_replayed += len(items)
        return len(items)
    except StorageError:
        applied = 0
        for addr, value in items:
            try:
                engine.put(addr, value)
                applied += 1
            except StorageError:
                stats.puts_skipped_invalid += 1
        stats.puts_replayed += applied
        return applied
