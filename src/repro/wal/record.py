"""WAL record format: checksummed, torn-tail-safe framing.

Every record in a segment file is::

    u32 crc32(body) | u32 body_len | body
    body := u8 type | u64 height | payload

Two record types:

* ``PUTS`` — one group-commit batch's writes for one shard, all assigned
  to block ``height``::

      payload := u32 count | count x (u16 addr_len | addr | u32 value_len | value)

* ``COMMIT`` — the engine committed block ``height`` with state root
  ``digest``::

      payload := u16 digest_len | digest

All integers are big-endian.  The crc covers the body only, so a torn
header and a torn body are both detected the same way: the record (and
everything after it in that segment) is ignored.

Scanning is **prefix-safe**: :func:`scan_records` yields every record up
to the first anomaly — truncated header, truncated body, impossible
length, checksum mismatch, or unparseable body — and then reports *how*
it stopped instead of raising.  A crash can only tear the un-synced tail
of a segment (appends are sequential and acks wait for fsync under the
batched policy), so the valid prefix is exactly the durable prefix.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import StorageError

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_HEADER = struct.Struct(">II")  # crc32, body_len

#: Hard cap on one record's body: a batch cannot legitimately exceed it,
#: so a larger length prefix means corruption, not data.
MAX_RECORD = 64 * 1024 * 1024


class RecordType:
    """WAL record type tags."""

    PUTS = 1
    COMMIT = 2


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record."""

    type: int
    height: int
    #: PUTS: the ordered ``(addr, value)`` batch.  COMMIT: empty.
    items: Tuple[Tuple[bytes, bytes], ...] = ()
    #: COMMIT: the committed state root.  PUTS: ``b""``.
    root: bytes = b""


def encode_puts(height: int, items: List[Tuple[bytes, bytes]]) -> bytes:
    """Encode one shard's batch of puts assigned to block ``height``."""
    parts = [bytes([RecordType.PUTS]), _U64.pack(height), _U32.pack(len(items))]
    for addr, value in items:
        parts.append(_U16.pack(len(addr)))
        parts.append(addr)
        parts.append(_U32.pack(len(value)))
        parts.append(value)
    return _seal(b"".join(parts))


def encode_commit(height: int, root: bytes) -> bytes:
    """Encode an engine-commit marker for block ``height``."""
    body = (
        bytes([RecordType.COMMIT])
        + _U64.pack(height)
        + _U16.pack(len(root))
        + root
    )
    return _seal(body)


def _seal(body: bytes) -> bytes:
    if len(body) > MAX_RECORD:
        raise StorageError("WAL record exceeds MAX_RECORD")
    return _HEADER.pack(zlib.crc32(body), len(body)) + body


def _decode_body(body: bytes) -> WalRecord:
    """Decode a checksum-verified body; raises StorageError on bad shape."""
    if len(body) < 9:
        raise StorageError("WAL body shorter than its fixed header")
    rtype = body[0]
    (height,) = _U64.unpack_from(body, 1)
    pos = 9
    if rtype == RecordType.PUTS:
        if len(body) < pos + 4:
            raise StorageError("truncated PUTS count")
        (count,) = _U32.unpack_from(body, pos)
        pos += 4
        items = []
        for _ in range(count):
            if len(body) < pos + 2:
                raise StorageError("truncated PUTS address length")
            (alen,) = _U16.unpack_from(body, pos)
            pos += 2
            addr = body[pos:pos + alen]
            pos += alen
            if len(addr) != alen or len(body) < pos + 4:
                raise StorageError("truncated PUTS address or value length")
            (vlen,) = _U32.unpack_from(body, pos)
            pos += 4
            value = body[pos:pos + vlen]
            pos += vlen
            if len(value) != vlen:
                raise StorageError("truncated PUTS value")
            items.append((addr, value))
        if pos != len(body):
            raise StorageError("trailing bytes after PUTS payload")
        return WalRecord(type=rtype, height=height, items=tuple(items))
    if rtype == RecordType.COMMIT:
        if len(body) < pos + 2:
            raise StorageError("truncated COMMIT digest length")
        (dlen,) = _U16.unpack_from(body, pos)
        pos += 2
        root = body[pos:pos + dlen]
        if len(root) != dlen or pos + dlen != len(body):
            raise StorageError("truncated COMMIT digest")
        return WalRecord(type=rtype, height=height, root=root)
    raise StorageError(f"unknown WAL record type {rtype}")


@dataclass
class ScanResult:
    """Outcome of scanning one segment file."""

    records: List[WalRecord]
    #: ``None`` when the segment ended exactly at a record boundary;
    #: otherwise a short reason ("torn header", "bad checksum", ...).
    anomaly: Optional[str] = None
    #: Byte offset of the first anomalous record (== file size when clean).
    clean_bytes: int = 0

    @property
    def torn(self) -> bool:
        return self.anomaly is not None


def scan_records(data: bytes) -> ScanResult:
    """Decode the valid record prefix of one segment's raw bytes."""
    records: List[WalRecord] = []
    pos = 0
    size = len(data)
    while pos < size:
        if size - pos < _HEADER.size:
            return ScanResult(records, "torn header", pos)
        crc, body_len = _HEADER.unpack_from(data, pos)
        if body_len == 0 or body_len > MAX_RECORD:
            return ScanResult(records, "impossible length", pos)
        body_start = pos + _HEADER.size
        if size - body_start < body_len:
            return ScanResult(records, "torn body", pos)
        body = data[body_start:body_start + body_len]
        if zlib.crc32(body) != crc:
            return ScanResult(records, "bad checksum", pos)
        try:
            records.append(_decode_body(body))
        except StorageError as exc:
            return ScanResult(records, f"bad body: {exc}", pos)
        pos = body_start + body_len
    return ScanResult(records, None, pos)
