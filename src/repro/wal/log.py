"""The segmented write-ahead log: fsync-batched durability for acked puts.

One :class:`WriteAheadLog` owns a directory of per-shard segment chains::

    <directory>/WAL.json                  # num_shards, format version
    <directory>/shard-00/seg-00000001.wal
    <directory>/shard-00/seg-00000002.wal
    <directory>/shard-01/seg-00000001.wal
    ...

Records (see :mod:`repro.wal.record`) are routed to a shard chain with
the same crc32 partition the sharded engine uses, so each shard's WAL
replays into exactly the shard that lost the writes.  A single-engine
store is the one-shard special case.

Appends are cheap and thread-safe: segment files are opened unbuffered,
so one append is one ``write`` syscall into the OS page cache under the
log's lock.  Durability is a separate step — :meth:`sync` — whose cost
(one ``fsync`` per dirty segment file) is what the serving layer's group
commit amortizes across every put acknowledged by that sync.

Sync policies (``sync_policy``):

* ``"batch"``  — acks wait for a group fsync: many puts, one fsync.
* ``"always"`` — every ack issues its own fsync (the slow, strictest mode).
* ``"none"``   — acks return once the record reached the OS page cache;
  data survives a process kill but not a machine crash.

Segments **seal** when they outgrow ``segment_max_bytes`` (checked at
append time; records never straddle segments).  A sealed segment's file
handle stays open until a sync covers it, then closes.  Truncation —
:meth:`truncate` — deletes sealed, synced segments whose newest record
height is at or below the owning shard's engine checkpoint: those puts
are durable in committed runs and named by the manifest, so the WAL no
longer owes them to recovery.

On open, every segment's torn tail (a crash mid-append) is trimmed to
the last clean record boundary, so new appends never land after garbage.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.debuglock import maybe_debug_lock
from repro.common.errors import StorageError
from repro.sharding.router import shard_of
from repro.wal.record import (
    ScanResult,
    WalRecord,
    encode_commit,
    encode_puts,
    scan_records,
)

WAL_META_NAME = "WAL.json"
SEGMENT_PREFIX = "seg-"
SEGMENT_SUFFIX = ".wal"

SYNC_POLICIES = ("none", "batch", "always")


def segment_name(seq: int) -> str:
    return f"{SEGMENT_PREFIX}{seq:08d}{SEGMENT_SUFFIX}"


def _fsync_dir(path: str) -> None:
    """fsync a directory so freshly created entries survive a crash."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _segment_seq(name: str) -> Optional[int]:
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    try:
        return int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])
    except ValueError:
        return None


@dataclass
class _Sealed:
    """A rotated-out segment awaiting (or past) its covering fsync."""

    path: str
    max_height: int
    handle: Optional[object] = None  # open file while fsync is still owed


@dataclass
class _ShardChain:
    """One shard's segment chain state (guarded by the log's lock)."""

    directory: str
    seq: int = 0
    handle: Optional[object] = None
    path: str = ""
    size: int = 0
    max_height: int = -1
    dirty: bool = False
    #: A segment file was created since the last directory fsync.
    dir_dirty: bool = True
    sealed_dirty: List[_Sealed] = field(default_factory=list)
    sealed_synced: List[_Sealed] = field(default_factory=list)


class WriteAheadLog:
    """Segmented, checksummed, fsync-batched write-ahead log."""

    def __init__(
        self,
        directory: str,
        num_shards: int = 1,
        sync_policy: str = "batch",
        segment_max_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        """Open (creating or trimming) the WAL rooted at ``directory``."""
        if num_shards < 1:
            raise StorageError("WAL needs at least one shard chain")
        if sync_policy not in SYNC_POLICIES:
            raise StorageError(
                f"unknown sync policy {sync_policy!r}; choose from {SYNC_POLICIES}"
            )
        if segment_max_bytes < 1:
            raise StorageError("segment_max_bytes must be positive")
        self.directory = directory
        self.num_shards = num_shards
        self.sync_policy = sync_policy
        self.segment_max_bytes = segment_max_bytes
        self._lock = maybe_debug_lock("wal-append")
        # Serializes whole sync() passes.  Without it, a second concurrent
        # sync would observe `dirty == False` (cleared by the first pass),
        # skip the fsync, and advance `synced_lsn` past records whose
        # fsync is still in flight — acking a write before it is durable.
        self._sync_lock = maybe_debug_lock("wal-sync")
        self._lsn = 0
        self.synced_lsn = 0
        self._closed = False
        # Accounting (exposed via the server's STATS op).
        self.puts_appended = 0
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        self.truncated_segments = 0
        self.trimmed_tails = 0
        os.makedirs(directory, exist_ok=True)
        self._check_meta()
        self._chains: List[_ShardChain] = [
            self._open_chain(index) for index in range(num_shards)
        ]

    # =========================================================================
    # open / recovery hygiene
    # =========================================================================

    def _check_meta(self) -> None:
        path = os.path.join(self.directory, WAL_META_NAME)
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            if meta.get("num_shards") != self.num_shards:
                raise StorageError(
                    f"WAL at {self.directory} was written for "
                    f"{meta.get('num_shards')} shards, not {self.num_shards}; "
                    "replay it with the original shard count first"
                )
            return
        temp = path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump({"format": 1, "num_shards": self.num_shards}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        _fsync_dir(self.directory)

    def shard_dir(self, index: int) -> str:
        return os.path.join(self.directory, f"shard-{index:02d}")

    def _open_chain(self, index: int) -> _ShardChain:
        directory = self.shard_dir(index)
        os.makedirs(directory, exist_ok=True)
        chain = _ShardChain(directory=directory)
        sequences = sorted(
            seq
            for name in os.listdir(directory)
            if (seq := _segment_seq(name)) is not None
        )
        for seq in sequences:
            path = os.path.join(directory, segment_name(seq))
            result = self._trim_tail(path)
            max_height = max(
                (record.height for record in result.records), default=-1
            )
            chain.sealed_synced.append(_Sealed(path=path, max_height=max_height))
        # The newest existing segment (if any) becomes the append target
        # again only when it has room; otherwise start a fresh one.  Either
        # way appends land after the trimmed clean prefix.
        chain.seq = (sequences[-1] if sequences else 0) + 1
        if sequences and os.path.getsize(
            os.path.join(directory, segment_name(sequences[-1]))
        ) < self.segment_max_bytes:
            reopened = chain.sealed_synced.pop()
            chain.seq = sequences[-1]
            chain.path = reopened.path
            chain.max_height = reopened.max_height
        else:
            chain.path = os.path.join(directory, segment_name(chain.seq))
        chain.handle = open(chain.path, "ab", buffering=0)
        chain.size = os.path.getsize(chain.path)
        return chain

    def _trim_tail(self, path: str) -> ScanResult:
        """Cut a segment back to its last clean record boundary."""
        with open(path, "rb") as handle:
            result = scan_records(handle.read())
        if result.torn:
            with open(path, "r+b") as handle:
                handle.truncate(result.clean_bytes)
            self.trimmed_tails += 1
        return result

    # =========================================================================
    # append path
    # =========================================================================

    def append_put(self, addr: bytes, value: bytes, height: int) -> int:
        """Append one put record; returns the LSN a sync must cover."""
        record = encode_puts(height, [(addr, value)])
        shard = shard_of(addr, self.num_shards)
        with self._lock:
            self.puts_appended += 1
            return self._append(shard, record, height)

    def append_puts(self, items: List[Tuple[bytes, bytes]], height: int) -> int:
        """Append a whole batch, routed per shard; returns the batch LSN.

        The bulk variant for embedders logging outside the serving layer
        (the server itself appends per put, pre-ack).
        """
        buckets: Dict[int, List[Tuple[bytes, bytes]]] = {}
        for addr, value in items:
            buckets.setdefault(shard_of(addr, self.num_shards), []).append(
                (addr, value)
            )
        with self._lock:
            lsn = self._lsn
            for shard, bucket in sorted(buckets.items()):
                self.puts_appended += len(bucket)
                lsn = self._append(shard, encode_puts(height, bucket), height)
        return lsn

    def append_commit(self, height: int, root: bytes) -> int:
        """Mark block ``height`` committed (appended to every chain)."""
        record = encode_commit(height, root)
        with self._lock:
            lsn = self._lsn
            for shard in range(self.num_shards):
                lsn = self._append(shard, record, height)
        return lsn

    def _append(self, shard: int, record: bytes, height: int) -> int:
        """Write one encoded record (caller holds the lock)."""
        if self._closed:
            raise StorageError("write-ahead log is closed")
        chain = self._chains[shard]
        self._write_all(chain, record)
        chain.size += len(record)
        chain.max_height = max(chain.max_height, height)
        chain.dirty = True
        self.records_appended += 1
        self.bytes_appended += len(record)
        self._lsn += 1
        if chain.size >= self.segment_max_bytes:
            self._seal(chain)
        return self._lsn

    def _write_all(self, chain: _ShardChain, record: bytes) -> None:
        """Write every byte of ``record``, or leave no trace of it.

        Raw (unbuffered) ``write`` may report a short count without
        raising — ENOSPC with some space left is the classic trigger.
        A half-written record would poison the segment: the checksum
        scan stops at it, silently discarding every *later* acked record
        in the chain.  So on any failure the segment is truncated back
        to the last record boundary; if even that fails, the log closes
        and refuses further appends rather than ack over a torn file.
        """
        view = memoryview(record)
        written = 0
        try:
            while written < len(view):
                count = chain.handle.write(view[written:])
                if not count:
                    raise StorageError("WAL segment write returned no progress")
                written += count
        except BaseException:
            if written:
                try:
                    chain.handle.truncate(chain.size)
                except OSError:
                    self._closed = True  # cannot restore the boundary: poison
            raise

    def _seal(self, chain: _ShardChain) -> None:
        """Rotate to a fresh segment (caller holds the lock).

        The outgoing handle stays open until a sync covers it — closing
        early would let truncation treat never-fsynced bytes as durable.
        """
        chain.sealed_dirty.append(
            _Sealed(path=chain.path, max_height=chain.max_height, handle=chain.handle)
        )
        chain.seq += 1
        chain.path = os.path.join(chain.directory, segment_name(chain.seq))
        chain.handle = open(chain.path, "ab", buffering=0)
        chain.size = 0
        chain.max_height = -1
        chain.dirty = True
        chain.dir_dirty = True  # the next sync persists the new entry

    # =========================================================================
    # durability
    # =========================================================================

    def sync(self) -> int:
        """fsync every dirty segment; returns the LSN now durable.

        Safe to call from any thread, concurrently with appends: the
        fsyncs run outside the append lock against captured handles, and
        the returned LSN only claims what was appended before they
        started.  Concurrent syncs serialize on their own lock (the
        ``always`` policy issues one per ack from a thread pool) — each
        pass re-captures, so a caller never returns until an fsync *it
        observed complete* covered its records.  Directories that gained
        a segment file since the last sync are fsynced too, or a machine
        crash could drop a freshly rotated segment whose data blocks
        were flushed but whose directory entry was not.
        """
        with self._sync_lock:
            with self._lock:
                if self._closed:
                    return self.synced_lsn
                covered = self._lsn
                to_sync = []
                dirs_to_sync = []
                for chain in self._chains:
                    if chain.dirty:
                        to_sync.append(chain.handle)
                        chain.dirty = False
                    to_sync.extend(sealed.handle for sealed in chain.sealed_dirty)
                    if chain.dir_dirty:
                        dirs_to_sync.append(chain.directory)
                        chain.dir_dirty = False
                captured = set(to_sync)
            for handle in to_sync:
                os.fsync(handle.fileno())
            for path in dirs_to_sync:
                _fsync_dir(path)
            # Settle only segments whose handle this pass captured: a
            # segment sealed *during* the fsyncs (its handle was the
            # active one we captured) may have gained pre-seal bytes
            # after our fsync call, so fsync it once more — usually a
            # no-op — before the handle closes forever.  Segments sealed
            # from a handle we never captured stay dirty for the next
            # pass; closing them here would orphan never-fsynced bytes
            # that a later `covered` would then falsely claim.
            with self._lock:
                to_settle = [
                    (chain, sealed)
                    for chain in self._chains
                    for sealed in chain.sealed_dirty
                    if sealed.handle in captured
                ]
            for _chain, sealed in to_settle:
                os.fsync(sealed.handle.fileno())
            with self._lock:
                for chain, sealed in to_settle:
                    if sealed not in chain.sealed_dirty:
                        continue  # a concurrent truncate settled it
                    chain.sealed_dirty.remove(sealed)
                    sealed.handle.close()
                    sealed.handle = None
                    chain.sealed_synced.append(sealed)
                self.syncs += 1
                if covered > self.synced_lsn:
                    self.synced_lsn = covered
                return self.synced_lsn

    def flush(self) -> None:
        """No-op for the OS buffer (appends are unbuffered); kept for
        symmetry with callers that must not fsync (snapshot copies)."""

    def _settle_sealed(self, close_handles: bool) -> None:
        """Move sealed-dirty segments to sealed-synced (lock held)."""
        for chain in self._chains:
            for sealed in chain.sealed_dirty:
                if close_handles and sealed.handle is not None:
                    sealed.handle.close()
                    sealed.handle = None
                chain.sealed_synced.append(sealed)
            chain.sealed_dirty = []

    # =========================================================================
    # truncation
    # =========================================================================

    def truncate(self, checkpoints: List[int]) -> int:
        """Delete sealed segments fully covered by the engine checkpoints.

        ``checkpoints[i]`` is shard *i*'s durable checkpoint height
        (``Cole.checkpoint_blk``): a segment whose newest record height is
        at or below it holds only writes already named by the manifest.
        Returns the number of segments deleted.
        """
        if len(checkpoints) != self.num_shards:
            raise StorageError(
                f"got {len(checkpoints)} checkpoints for {self.num_shards} shards"
            )
        deleted = 0
        with self._lock:
            if self.sync_policy == "none":
                # Never fsynced by design; close so the files are deletable.
                self._settle_sealed(close_handles=True)
            for shard, chain in enumerate(self._chains):
                keep: List[_Sealed] = []
                for sealed in chain.sealed_synced:
                    if sealed.max_height <= checkpoints[shard]:
                        os.remove(sealed.path)
                        deleted += 1
                    else:
                        keep.append(sealed)
                chain.sealed_synced = keep
            self.truncated_segments += deleted
        return deleted

    # =========================================================================
    # scanning (recovery / inspection)
    # =========================================================================

    def scan(self) -> List[List[WalRecord]]:
        """Per-shard valid record prefixes, oldest segment first.

        Reads from disk, so it sees exactly what recovery after a crash
        would see; segments are scanned independently and each one's torn
        tail (if any) is skipped without failing the scan.
        """
        with self._lock:
            chains = [
                [sealed.path for sealed in chain.sealed_dirty + chain.sealed_synced]
                + [chain.path]
                for chain in self._chains
            ]
        per_shard: List[List[WalRecord]] = []
        for paths in chains:
            records: List[WalRecord] = []
            for path in sorted(set(paths)):
                if not os.path.exists(path):
                    continue
                with open(path, "rb") as handle:
                    records.extend(scan_records(handle.read()).records)
            per_shard.append(records)
        return per_shard

    def live_files(self) -> List[Tuple[int, str, int]]:
        """``(shard, path, copy_bytes)`` per live segment, oldest first.

        Captured under the append lock, so every byte count lands on a
        record boundary even while appends continue — the snapshot path
        copies exactly these prefixes instead of racing a mid-record
        append.
        """
        with self._lock:
            out: List[Tuple[int, str, int]] = []
            for index, chain in enumerate(self._chains):
                for sealed in chain.sealed_dirty + chain.sealed_synced:
                    out.append((index, sealed.path, os.path.getsize(sealed.path)))
                out.append((index, chain.path, chain.size))
            return out

    def live_segments(self) -> int:
        """Number of segment files currently on disk."""
        with self._lock:
            return sum(
                1 + len(chain.sealed_dirty) + len(chain.sealed_synced)
                for chain in self._chains
            )

    def stats(self) -> dict:
        """Counters for the server's STATS op."""
        return {
            "policy": self.sync_policy,
            "shards": self.num_shards,
            "directory": self.directory,
            "puts_appended": self.puts_appended,
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "syncs": self.syncs,
            "synced_lsn": self.synced_lsn,
            "appended_lsn": self._lsn,
            "segments": self.live_segments(),
            "truncated_segments": self.truncated_segments,
            "trimmed_tails": self.trimmed_tails,
        }

    # =========================================================================
    # lifecycle
    # =========================================================================

    def close(self) -> None:
        """Make appended records durable (per policy) and close handles."""
        if self.sync_policy != "none":
            self.sync()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for chain in self._chains:
                for sealed in chain.sealed_dirty:
                    if sealed.handle is not None:
                        sealed.handle.close()
                        sealed.handle = None
                    chain.sealed_synced.append(sealed)
                chain.sealed_dirty = []
                if chain.handle is not None:
                    chain.handle.close()
                    chain.handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
