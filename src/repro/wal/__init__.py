"""Durability subsystem: write-ahead log, crash recovery, snapshots.

The serving layer acks a PUT only after its WAL record is durable (one
group fsync covers many acks); crash recovery replays the WAL tail into
a recovered engine at the original block heights; snapshots copy the
manifest + runs + WAL tail under the commit gate.  See DESIGN.md
("Durability") for the record format and the truncation protocol.
"""

from repro.wal.log import SYNC_POLICIES, WriteAheadLog, segment_name
from repro.wal.record import (
    MAX_RECORD,
    RecordType,
    ScanResult,
    WalRecord,
    encode_commit,
    encode_puts,
    scan_records,
)
from repro.wal.recovery import ReplayStats, replay_wal
from repro.wal.snapshot import (
    SNAPSHOT_META_NAME,
    load_snapshot_meta,
    restore_store,
    snapshot_store,
    verify_snapshot,
)

__all__ = [
    "WriteAheadLog",
    "SYNC_POLICIES",
    "segment_name",
    "WalRecord",
    "RecordType",
    "ScanResult",
    "MAX_RECORD",
    "encode_puts",
    "encode_commit",
    "scan_records",
    "ReplayStats",
    "replay_wal",
    "snapshot_store",
    "restore_store",
    "verify_snapshot",
    "load_snapshot_meta",
    "SNAPSHOT_META_NAME",
]
