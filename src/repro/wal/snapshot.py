"""Snapshot / restore: a consistent point-in-time copy of a store.

A snapshot is a directory holding

* every shard's ``MANIFEST.json`` and the run files it names,
* the WAL segment chains (the tail of writes newer than the manifest
  checkpoints — the in-memory level's durable twin), and
* ``SNAPSHOT.json``: the store kind, the live root digest at the copy
  instant, per-shard checkpoints, and a crc32 per copied file.

Consistency: the copy happens under the engine's :class:`CommitGate`
held **exclusive**, so no commit checkpoint can replace the manifest,
attach a merge output, or delete a merged-away run mid-copy.  Background
merges may keep running — their half-built files are not named by the
manifest and are not copied.  Runs are immutable once built, so the
named files cannot change under the copy.

Restoring verifies every file against its recorded crc32, lays the files
back out, and leaves opening the engine (plus replaying the copied WAL
tail) to the caller — ``repro restore`` does both and checks the
recovered root digest against the recorded one.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from typing import Dict, List, Optional

from repro.common.errors import IntegrityError, StorageError
from repro.common.hashing import hash_concat
from repro.core.manifest import MANIFEST_NAME, load_manifest
from repro.core.run import RUN_SUFFIXES
from repro.wal.log import WriteAheadLog

SNAPSHOT_META_NAME = "SNAPSHOT.json"
WAL_DIR_NAME = "wal"


def _file_crc(path: str) -> int:
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def _shards_of(engine) -> List[object]:
    return list(engine.shards) if hasattr(engine, "shards") else [engine]


def _live_root(engine) -> bytes:
    """Root digest with the engine's top-level gate already held.

    The public ``root_digest`` re-acquires the gate (not reentrant), so
    the snapshot path reads the same digests through the gate-free
    internals: per-shard ``root_digest`` only takes the *shard* gate,
    which the top-level exclusive hold does not own.
    """
    if hasattr(engine, "shards"):
        return hash_concat([shard.root_digest() for shard in engine.shards])
    return engine._root_digest()


def snapshot_store(
    engine, dest: str, wal: Optional[WriteAheadLog] = None
) -> dict:
    """Copy ``engine``'s durable state (and ``wal``'s tail) into ``dest``.

    Returns the written metadata.  ``dest`` must be absent or empty.
    The engine stays open and serving-capable afterwards.

    The recorded ``root_digest`` equals the root a restore-plus-replay
    reproduces when every copied WAL record is already reflected in the
    engine — true after :func:`~repro.wal.replay_wal` (the ``repro
    snapshot`` flow) or any quiesced store.  Snapshotting a *live
    served* store, force a group commit (the FLUSH op) first: puts still
    buffered in the write batcher have WAL records but are not yet in
    the engine root, so a restore would recover *more* than the recorded
    root and report a mismatch.
    """
    if os.path.exists(dest) and os.listdir(dest):
        raise StorageError(f"snapshot destination {dest} is not empty")
    os.makedirs(dest, exist_ok=True)
    shards = _shards_of(engine)
    files: Dict[str, dict] = {}

    def copy_one(src_path: str, rel: str, limit: Optional[int] = None) -> None:
        # The crc accumulates over the chunks already flowing through the
        # copy — re-reading the target to checksum it would double the
        # IO done while the commit gate stalls every writer.
        target = os.path.join(dest, rel)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        crc = 0
        copied = 0
        remaining = limit
        with open(src_path, "rb") as src, open(target, "wb") as out:
            while remaining is None or remaining > 0:
                step = 1 << 20 if remaining is None else min(1 << 20, remaining)
                chunk = src.read(step)
                if not chunk:
                    break
                out.write(chunk)
                crc = zlib.crc32(chunk, crc)
                copied += len(chunk)
                if remaining is not None:
                    remaining -= len(chunk)
        files[rel] = {"size": copied, "crc32": crc}

    with engine.gate.exclusive():
        for index, shard in enumerate(shards):
            shard.workspace.flush_all()
            prefix = f"shard-{index:02d}" if len(shards) > 1 else ""
            manifest = load_manifest(shard.workspace.root)
            manifest_src = os.path.join(shard.workspace.root, MANIFEST_NAME)
            if os.path.exists(manifest_src):
                rel = os.path.join(prefix, MANIFEST_NAME) if prefix else MANIFEST_NAME
                copy_one(manifest_src, rel)
            for groups in manifest.levels.values():
                for records in groups.values():
                    for record in records:
                        for suffix in RUN_SUFFIXES:
                            name = record.name + suffix
                            src_path = shard.workspace.path_of(name)
                            if os.path.exists(src_path):
                                rel = os.path.join(prefix, name) if prefix else name
                                copy_one(src_path, rel)
        if wal is not None:
            # Segment prefixes captured at record boundaries: appends
            # racing the copy can neither tear a record nor leak records
            # past the capture instant into the snapshot.
            for shard_index, path, copy_bytes in wal.live_files():
                copy_one(
                    path,
                    os.path.join(
                        WAL_DIR_NAME,
                        f"shard-{shard_index:02d}",
                        os.path.basename(path),
                    ),
                    limit=copy_bytes,
                )
            meta_path = os.path.join(wal.directory, "WAL.json")
            if os.path.exists(meta_path):
                copy_one(meta_path, os.path.join(WAL_DIR_NAME, "WAL.json"))
        meta = {
            "format": 1,
            "kind": "sharded" if len(shards) > 1 else "cole",
            "num_shards": len(shards),
            "root_digest": _live_root(engine).hex(),
            "checkpoints": engine.shard_checkpoints(),
            "current_blk": engine.current_blk,
            "has_wal": wal is not None,
            "files": files,
        }
    meta_path = os.path.join(dest, SNAPSHOT_META_NAME)
    temp_path = meta_path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=1)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, meta_path)
    return meta


def load_snapshot_meta(src: str) -> dict:
    path = os.path.join(src, SNAPSHOT_META_NAME)
    if not os.path.exists(path):
        raise StorageError(f"{src} is not a snapshot (no {SNAPSHOT_META_NAME})")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def verify_snapshot(src: str) -> dict:
    """Check every snapshot file against its recorded size and crc32."""
    meta = load_snapshot_meta(src)
    for rel, attrs in meta["files"].items():
        path = os.path.join(src, rel)
        if not os.path.exists(path):
            raise IntegrityError(f"snapshot file missing: {rel}")
        if os.path.getsize(path) != attrs["size"]:
            raise IntegrityError(f"snapshot file resized: {rel}")
        if _file_crc(path) != attrs["crc32"]:
            raise IntegrityError(f"snapshot file corrupted: {rel}")
    return meta


def restore_store(src: str, dest: str) -> dict:
    """Verify the snapshot at ``src`` and lay its files out under ``dest``.

    Returns the snapshot metadata.  The caller opens the engine on
    ``dest`` (same shard count) and replays ``dest/wal`` to finish —
    ``repro restore`` does exactly that and compares the recovered root
    against ``meta["root_digest"]``.
    """
    meta = verify_snapshot(src)
    if os.path.exists(dest) and os.listdir(dest):
        raise StorageError(f"restore destination {dest} is not empty")
    os.makedirs(dest, exist_ok=True)
    for rel in meta["files"]:
        target = os.path.join(dest, rel)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        shutil.copyfile(os.path.join(src, rel), target)
    return meta
