"""Snapshot / restore: a consistent point-in-time copy of a store.

A snapshot is a directory holding

* every shard's ``MANIFEST.json`` and the run files it names,
* the WAL segment chains (the tail of writes newer than the manifest
  checkpoints — the in-memory level's durable twin), and
* ``SNAPSHOT.json``: the store kind, the live root digest at the copy
  instant, per-shard checkpoints, and a crc32 per copied file.

Consistency: the copy happens under the engine's :class:`CommitGate`
held **exclusive**, so no commit checkpoint can replace the manifest,
attach a merge output, or delete a merged-away run mid-copy.  Background
merges may keep running — their half-built files are not named by the
manifest and are not copied.  Runs are immutable once built, so the
named files cannot change under the copy.

Restoring verifies every file against its recorded crc32, lays the files
back out, and leaves opening the engine (plus replaying the copied WAL
tail) to the caller — ``repro restore`` does both and checks the
recovered root digest against the recorded one.

Incremental snapshots (``parent=`` / ``repro snapshot
--incremental-from``): runs are immutable and uniquely named (the
monotonic ``next_run_seq``), so a run file whose name **and size** match
a record anywhere up the parent chain is byte-identical and need not be
copied again.  An incremental snapshot copies only the manifest, the WAL
tail, and runs new since the parent, and records the rest under
``reused`` (with the ancestor's size + crc32) plus a ``parent`` pointer
(relative, so a family of snapshots can move together).  Verification
walks the whole chain — every hop's copied files against their crcs,
every reused record against the ancestor inventory — and restore lays
out exactly ``files + reused``, each fetched from the nearest hop that
physically holds it.  Runs merged away between parent and child appear
in neither set and are not restored.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from typing import Dict, List, Optional

from repro.common.errors import IntegrityError, StorageError
from repro.common.hashing import hash_concat
from repro.core.manifest import MANIFEST_NAME, load_manifest
from repro.core.run import RUN_SUFFIXES
from repro.wal.log import WriteAheadLog

SNAPSHOT_META_NAME = "SNAPSHOT.json"
WAL_DIR_NAME = "wal"

#: Upper bound on parent-chain length — far beyond any sane backup
#: rotation, tight enough to turn a parent-pointer cycle into an error.
MAX_CHAIN_DEPTH = 256


def _file_crc(path: str) -> int:
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def _shards_of(engine) -> List[object]:
    return list(engine.shards) if hasattr(engine, "shards") else [engine]


def _live_root(engine) -> bytes:
    """Root digest with the engine's top-level gate already held.

    The public ``root_digest`` re-acquires the gate (not reentrant), so
    the snapshot path reads the same digests through the gate-free
    internals: per-shard ``root_digest`` only takes the *shard* gate,
    which the top-level exclusive hold does not own.
    """
    if hasattr(engine, "shards"):
        return hash_concat([shard.root_digest() for shard in engine.shards])
    return engine._root_digest()


def _chain_hops(src: str) -> List[tuple]:
    """The snapshot chain rooted at ``src``: ``[(dir, meta), ...]``,
    newest hop first, ending at a full snapshot.  Guards against broken
    parent pointers and cycles."""
    hops: List[tuple] = []
    seen = set()
    current = src
    while True:
        real = os.path.realpath(current)
        if real in seen:
            raise IntegrityError(f"snapshot parent chain has a cycle at {current}")
        if len(hops) >= MAX_CHAIN_DEPTH:
            raise IntegrityError(f"snapshot parent chain deeper than {MAX_CHAIN_DEPTH}")
        seen.add(real)
        meta = load_snapshot_meta(current)
        hops.append((current, meta))
        parent_rel = meta.get("parent")
        if parent_rel is None:
            return hops
        current = os.path.normpath(os.path.join(current, parent_rel))
        if not os.path.isdir(current):
            raise IntegrityError(
                f"snapshot parent missing: {current} (chain from {src})"
            )


def _chain_inventory(hops: List[tuple]) -> Dict[str, dict]:
    """Every file record reachable from the chain (rel -> attrs), with
    the newest hop's record winning.  Includes ``reused`` records, so a
    grandchild can reuse against a parent that itself reused."""
    inventory: Dict[str, dict] = {}
    for directory, meta in reversed(hops):  # oldest first; newest wins
        inventory.update(meta.get("reused", {}))
        inventory.update(meta["files"])
    return inventory


def snapshot_store(
    engine,
    dest: str,
    wal: Optional[WriteAheadLog] = None,
    parent: Optional[str] = None,
) -> dict:
    """Copy ``engine``'s durable state (and ``wal``'s tail) into ``dest``.

    Returns the written metadata.  ``dest`` must be absent or empty.
    The engine stays open and serving-capable afterwards.

    With ``parent`` (a previous snapshot of the *same* store), run files
    already recorded anywhere up the parent chain are skipped and listed
    under ``reused`` instead — the incremental mode of the module
    docstring.  The parent chain is resolved and its metadata loaded
    before the commit gate stalls writers.

    The recorded ``root_digest`` equals the root a restore-plus-replay
    reproduces when every copied WAL record is already reflected in the
    engine — true after :func:`~repro.wal.replay_wal` (the ``repro
    snapshot`` flow) or any quiesced store.  Snapshotting a *live
    served* store, force a group commit (the FLUSH op) first: puts still
    buffered in the write batcher have WAL records but are not yet in
    the engine root, so a restore would recover *more* than the recorded
    root and report a mismatch.
    """
    if os.path.exists(dest) and os.listdir(dest):
        raise StorageError(f"snapshot destination {dest} is not empty")
    shards = _shards_of(engine)
    inherited: Dict[str, dict] = {}
    parent_meta: Optional[dict] = None
    if parent is not None:
        hops = _chain_hops(parent)
        parent_meta = hops[0][1]
        if parent_meta["num_shards"] != len(shards):
            raise StorageError(
                "incremental parent has a different shard count "
                f"({parent_meta['num_shards']} vs {len(shards)})"
            )
        inherited = _chain_inventory(hops)
    os.makedirs(dest, exist_ok=True)
    files: Dict[str, dict] = {}
    reused: Dict[str, dict] = {}

    def copy_one(src_path: str, rel: str, limit: Optional[int] = None) -> None:
        # The crc accumulates over the chunks already flowing through the
        # copy — re-reading the target to checksum it would double the
        # IO done while the commit gate stalls every writer.
        target = os.path.join(dest, rel)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        crc = 0
        copied = 0
        remaining = limit
        with open(src_path, "rb") as src, open(target, "wb") as out:
            while remaining is None or remaining > 0:
                step = 1 << 20 if remaining is None else min(1 << 20, remaining)
                chunk = src.read(step)
                if not chunk:
                    break
                out.write(chunk)
                crc = zlib.crc32(chunk, crc)
                copied += len(chunk)
                if remaining is not None:
                    remaining -= len(chunk)
        files[rel] = {"size": copied, "crc32": crc}

    with engine.gate.exclusive():
        for index, shard in enumerate(shards):
            shard.workspace.flush_all()
            prefix = f"shard-{index:02d}" if len(shards) > 1 else ""
            manifest = load_manifest(shard.workspace.root)
            manifest_src = os.path.join(shard.workspace.root, MANIFEST_NAME)
            if os.path.exists(manifest_src):
                rel = os.path.join(prefix, MANIFEST_NAME) if prefix else MANIFEST_NAME
                copy_one(manifest_src, rel)
            for groups in manifest.levels.values():
                for records in groups.values():
                    for record in records:
                        for suffix in RUN_SUFFIXES:
                            name = record.name + suffix
                            src_path = shard.workspace.path_of(name)
                            if not os.path.exists(src_path):
                                continue
                            rel = os.path.join(prefix, name) if prefix else name
                            known = inherited.get(rel)
                            if (
                                known is not None
                                and known["size"] == os.path.getsize(src_path)
                            ):
                                # Same name + size up the chain: runs are
                                # immutable and names never recycle, so
                                # the bytes (and the ancestor's crc) are
                                # already in the chain.
                                reused[rel] = {
                                    "size": known["size"],
                                    "crc32": known["crc32"],
                                }
                                continue
                            copy_one(src_path, rel)
        if wal is not None:
            # Segment prefixes captured at record boundaries: appends
            # racing the copy can neither tear a record nor leak records
            # past the capture instant into the snapshot.
            for shard_index, path, copy_bytes in wal.live_files():
                copy_one(
                    path,
                    os.path.join(
                        WAL_DIR_NAME,
                        f"shard-{shard_index:02d}",
                        os.path.basename(path),
                    ),
                    limit=copy_bytes,
                )
            meta_path = os.path.join(wal.directory, "WAL.json")
            if os.path.exists(meta_path):
                copy_one(meta_path, os.path.join(WAL_DIR_NAME, "WAL.json"))
        meta = {
            "format": 2,
            "kind": "sharded" if len(shards) > 1 else "cole",
            "num_shards": len(shards),
            "root_digest": _live_root(engine).hex(),
            "checkpoints": engine.shard_checkpoints(),
            "current_blk": engine.current_blk,
            "has_wal": wal is not None,
            "files": files,
            "reused": reused,
        }
        if parent is not None and parent_meta is not None:
            meta["parent"] = os.path.relpath(
                os.path.abspath(parent), os.path.abspath(dest)
            )
            meta["parent_root"] = parent_meta["root_digest"]
    meta_path = os.path.join(dest, SNAPSHOT_META_NAME)
    temp_path = meta_path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=1)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, meta_path)
    return meta


def load_snapshot_meta(src: str) -> dict:
    path = os.path.join(src, SNAPSHOT_META_NAME)
    if not os.path.exists(path):
        raise StorageError(f"{src} is not a snapshot (no {SNAPSHOT_META_NAME})")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _verify_hop(directory: str, meta: dict) -> None:
    """Check one hop's *copied* files against their recorded size/crc."""
    for rel, attrs in meta["files"].items():
        path = os.path.join(directory, rel)
        if not os.path.exists(path):
            raise IntegrityError(f"snapshot file missing: {rel}")
        if os.path.getsize(path) != attrs["size"]:
            raise IntegrityError(f"snapshot file resized: {rel}")
        if _file_crc(path) != attrs["crc32"]:
            raise IntegrityError(f"snapshot file corrupted: {rel}")


def verify_snapshot(src: str) -> dict:
    """Verify the snapshot at ``src`` — its whole parent chain.

    Every hop's copied files are checked against their recorded size and
    crc32, and every ``reused`` record must resolve to a matching record
    somewhere up the chain (a hop verified on-disk).  Returns the newest
    hop's metadata.
    """
    hops = _chain_hops(src)
    for directory, meta in hops:
        _verify_hop(directory, meta)
    # Ancestor copies are now known good; a reused record is sound iff
    # it matches what some ancestor actually holds.
    for index, (directory, meta) in enumerate(hops):
        ancestors = _chain_inventory(hops[index + 1 :])
        for rel, attrs in meta.get("reused", {}).items():
            known = ancestors.get(rel)
            if known is None:
                raise IntegrityError(
                    f"snapshot reuses {rel} but no ancestor holds it"
                )
            if known["size"] != attrs["size"] or known["crc32"] != attrs["crc32"]:
                raise IntegrityError(
                    f"snapshot reused-file record mismatch: {rel}"
                )
    return hops[0][1]


def _resolve_sources(hops: List[tuple]) -> Dict[str, str]:
    """Map the newest hop's full inventory (files + reused) to the
    nearest hop directory that physically holds each file."""
    directory, meta = hops[0]
    sources: Dict[str, str] = {rel: directory for rel in meta["files"]}
    for rel in meta.get("reused", {}):
        for ancestor_dir, ancestor_meta in hops[1:]:
            if rel in ancestor_meta["files"]:
                sources[rel] = ancestor_dir
                break
        else:
            raise IntegrityError(f"snapshot reuses {rel} but no ancestor holds it")
    return sources


def restore_store(src: str, dest: str) -> dict:
    """Verify the snapshot chain at ``src`` and lay its files out under
    ``dest``.

    Returns the snapshot metadata.  The restored layout is exactly the
    newest hop's inventory — copied files from ``src``, reused files
    from the nearest ancestor holding them; ancestor files the newest
    manifest no longer names are left behind.  The caller opens the
    engine on ``dest`` (same shard count) and replays ``dest/wal`` to
    finish — ``repro restore`` does exactly that and compares the
    recovered root against ``meta["root_digest"]``.
    """
    meta = verify_snapshot(src)
    hops = _chain_hops(src)
    if os.path.exists(dest) and os.listdir(dest):
        raise StorageError(f"restore destination {dest} is not empty")
    os.makedirs(dest, exist_ok=True)
    for rel, source_dir in _resolve_sources(hops).items():
        target = os.path.join(dest, rel)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        shutil.copyfile(os.path.join(source_dir, rel), target)
    return meta
