"""Engine construction and workload execution for the experiments.

Engine names follow the paper: ``mpt``, ``cole``, ``cole*`` (asynchronous
merge), ``lipp``, ``cmi`` — plus ``cole-shard``, the hash-partitioned
scale-out engine (4 COLE* shards by default).  All engines share one
address/value geometry so the contracts issue byte-identical state
accesses.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.baselines import CMIStorage, LIPPStorage, MPTStorage
from repro.chain.contracts import ExecutionContext
from repro.chain.executor import BlockExecutor, ExecutionMetrics
from repro.chain.transaction import Transaction
from repro.common.params import ColeParams, ShardParams, SystemParams
from repro.core import Cole
from repro.diskio.iostats import IOStats
from repro.sharding import ShardedCole

#: Geometry shared by every engine in the benchmarks (32-byte addresses +
#: 40-byte values: an 80-byte pair, within rounding of the paper's 88).
BENCH_SYSTEM = SystemParams(addr_size=32, value_size=40, page_size=4096)

BENCH_CONTEXT = ExecutionContext(
    addr_size=BENCH_SYSTEM.addr_size, value_size=BENCH_SYSTEM.value_size
)


@dataclass(frozen=True)
class EngineSpec:
    """How to build one engine under test."""

    name: str
    factory: Callable[[str, Optional[IOStats]], object]
    max_blocks: Optional[int] = None  # paper's "cannot scale" cut-offs


#: Table 2 geometry every COLE-family benchmark engine starts from; the
#: sharded engine derives per-shard parameters from the same object so
#: the two cannot drift apart.
BENCH_COLE_PARAMS = ColeParams(
    system=BENCH_SYSTEM, mem_capacity=512, size_ratio=4, mht_fanout=4
)


def _make_cole(directory: str, stats: Optional[IOStats], **overrides) -> Cole:
    params = BENCH_COLE_PARAMS
    if overrides:
        params = replace(params, **overrides)
    return Cole(directory, params, stats=stats)


def _make_sharded(
    directory: str,
    stats: Optional[IOStats],
    num_shards: Optional[int] = None,
    **overrides,
) -> ShardedCole:
    """A sharded COLE* engine: each shard sized like the single-node one.

    ``num_shards`` defaults to :class:`ShardParams`'s own default so the
    bench registry cannot drift from the engine's.
    """
    cole = BENCH_COLE_PARAMS.with_async(True)
    if overrides:
        cole = replace(cole, **overrides)
    params = ShardParams(cole=cole)
    if num_shards is not None:
        params = params.with_shards(num_shards)
    return ShardedCole(directory, params, stats=stats)


#: The paper gives RocksDB and COLE's in-memory level the same 64 MB
#: budget; scaled down, the baselines' memtables get the same entry count
#: as COLE's B.
BASELINE_MEMTABLE = 512

ENGINES: Dict[str, EngineSpec] = {
    "mpt": EngineSpec(
        "mpt", lambda d, s: MPTStorage(d, stats=s, memtable_capacity=BASELINE_MEMTABLE)
    ),
    "cole": EngineSpec("cole", lambda d, s: _make_cole(d, s, async_merge=False)),
    "cole*": EngineSpec("cole*", lambda d, s: _make_cole(d, s, async_merge=True)),
    "cole-shard": EngineSpec("cole-shard", lambda d, s: _make_sharded(d, s)),
    # The paper could not finish LIPP past ~10^2-10^3 blocks and CMI past
    # 10^4; the same cliffs exist here, scaled down.
    "lipp": EngineSpec(
        "lipp",
        lambda d, s: LIPPStorage(d, stats=s, memtable_capacity=BASELINE_MEMTABLE),
        max_blocks=120,
    ),
    "cmi": EngineSpec(
        "cmi",
        lambda d, s: CMIStorage(d, stats=s, memtable_capacity=BASELINE_MEMTABLE),
        max_blocks=400,
    ),
}


def make_engine(
    name: str,
    directory: str,
    stats: Optional[IOStats] = None,
    cole_overrides: Optional[dict] = None,
):
    """Instantiate the named engine in ``directory``.

    For ``cole-shard``, ``cole_overrides`` may carry a ``num_shards`` key
    alongside the per-shard :class:`ColeParams` overrides.
    """
    if name in ("cole", "cole*") and cole_overrides:
        overrides = dict(cole_overrides)
        overrides["async_merge"] = name == "cole*"
        return _make_cole(directory, stats, **overrides)
    if name == "cole-shard" and cole_overrides:
        overrides = dict(cole_overrides)
        num_shards = overrides.pop("num_shards", None)
        return _make_sharded(directory, stats, num_shards=num_shards, **overrides)
    return ENGINES[name].factory(directory, stats)


def fresh_dir(prefix: str = "repro-bench-") -> str:
    """A temporary workspace directory (caller removes it)."""
    return tempfile.mkdtemp(prefix=prefix)


def run_chain(
    backend,
    transactions: Iterable[Transaction],
    txs_per_block: int = 10,
    record_latencies: bool = True,
    executor: Optional[BlockExecutor] = None,
) -> Tuple[BlockExecutor, ExecutionMetrics]:
    """Execute ``transactions`` on ``backend``; returns executor + metrics.

    Pass the ``executor`` of a previous phase (e.g. the loading phase) to
    keep appending blocks to the same chain.
    """
    if executor is None:
        executor = BlockExecutor(
            backend,
            BENCH_CONTEXT,
            txs_per_block=txs_per_block,
            record_latencies=record_latencies,
        )
    else:
        executor.record_latencies = record_latencies
        executor.txs_per_block = txs_per_block
    metrics = executor.run(transactions)
    return executor, metrics


def cleanup(backend, directory: str) -> None:
    """Close the engine and delete its workspace."""
    backend.close()
    shutil.rmtree(directory, ignore_errors=True)
