"""Experiment drivers — one per table/figure of the paper's Section 8.

Every driver returns a list of result rows (dictionaries) and can be run
at any scale; the defaults are sized for minutes, not hours, on a laptop
(the paper's 10^2..10^5 block sweep becomes 10^1..10^3 at 10 tx/block —
see EXPERIMENTS.md for the mapping and measured outcomes).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ENGINES, cleanup, fresh_dir, make_engine, run_chain
from repro.core import Cole, verify_provenance
from repro.workloads import Mix, ProvenanceWorkload, SmallBankWorkload, YCSBWorkload

Row = Dict[str, object]


# =============================================================================
# Figures 9 & 10: storage size and throughput vs block height
# =============================================================================

def run_overall_performance(
    workload_name: str = "smallbank",
    heights: Sequence[int] = (30, 100, 300, 1000),
    txs_per_block: int = 10,
    engines: Sequence[str] = ("mpt", "cole", "cole*", "lipp", "cmi"),
    num_accounts: int = 100,
    seed: int = 7,
) -> List[Row]:
    """Figure 9 (SmallBank) / Figure 10 (KVStore): storage + TPS series."""
    rows: List[Row] = []
    for engine_name in engines:
        spec = ENGINES[engine_name]
        for height in heights:
            if spec.max_blocks is not None and height > spec.max_blocks:
                rows.append(
                    {"engine": engine_name, "blocks": height, "storage_bytes": None,
                     "tps": None, "note": "did not finish (as in the paper)"}
                )
                continue
            directory = fresh_dir()
            backend = make_engine(engine_name, directory)
            try:
                if workload_name == "smallbank":
                    workload = SmallBankWorkload(num_accounts=num_accounts, seed=seed)
                    setup, _ = run_chain(backend, workload.setup_transactions(), txs_per_block)
                    stream = workload.transactions(height * txs_per_block)
                else:
                    workload = YCSBWorkload(num_keys=num_accounts * 2, seed=seed)
                    setup, _ = run_chain(backend, workload.load_transactions(), txs_per_block)
                    stream = workload.run_transactions(height * txs_per_block, Mix.READ_WRITE)
                _executor, metrics = run_chain(backend, stream, txs_per_block, executor=setup)
                if hasattr(backend, "wait_for_merges"):
                    backend.wait_for_merges()
                rows.append(
                    {
                        "engine": engine_name,
                        "blocks": height,
                        "storage_bytes": backend.storage_bytes(),
                        "tps": metrics.throughput_tps,
                        "note": "",
                    }
                )
            finally:
                cleanup(backend, directory)
    return rows


# =============================================================================
# Figure 11: throughput vs workload mix (RO / RW / WO)
# =============================================================================

def run_workload_mix(
    heights: Sequence[int] = (100, 300),
    txs_per_block: int = 10,
    engines: Sequence[str] = ("mpt", "cole", "cole*"),
    num_keys: int = 200,
    seed: int = 7,
) -> List[Row]:
    """Figure 11: KVStore throughput under RO / RW / WO mixes."""
    rows: List[Row] = []
    for engine_name in engines:
        for height in heights:
            for mix in (Mix.READ_ONLY, Mix.READ_WRITE, Mix.WRITE_ONLY):
                directory = fresh_dir()
                backend = make_engine(engine_name, directory)
                try:
                    workload = YCSBWorkload(num_keys=num_keys, seed=seed)
                    setup, _ = run_chain(backend, workload.load_transactions(), txs_per_block)
                    _executor, metrics = run_chain(
                        backend,
                        workload.run_transactions(height * txs_per_block, mix),
                        txs_per_block,
                        executor=setup,
                    )
                    rows.append(
                        {
                            "engine": engine_name,
                            "blocks": height,
                            "mix": mix.value,
                            "tps": metrics.throughput_tps,
                        }
                    )
                finally:
                    cleanup(backend, directory)
    return rows


# =============================================================================
# Figure 12: latency box plot (tail latency, sync vs async merge)
# =============================================================================

def run_latency(
    workload_name: str = "smallbank",
    heights: Sequence[int] = (300, 1000),
    txs_per_block: int = 10,
    engines: Sequence[str] = ("mpt", "cole", "cole*"),
    num_accounts: int = 100,
    seed: int = 7,
) -> List[Row]:
    """Figure 12: per-transaction latency distribution per engine."""
    rows: List[Row] = []
    for engine_name in engines:
        for height in heights:
            directory = fresh_dir()
            backend = make_engine(engine_name, directory)
            try:
                if workload_name == "smallbank":
                    workload = SmallBankWorkload(num_accounts=num_accounts, seed=seed)
                    setup, _ = run_chain(backend, workload.setup_transactions(), txs_per_block)
                    stream = workload.transactions(height * txs_per_block)
                else:
                    workload = YCSBWorkload(num_keys=num_accounts * 2, seed=seed)
                    setup, _ = run_chain(backend, workload.load_transactions(), txs_per_block)
                    stream = workload.run_transactions(height * txs_per_block, Mix.READ_WRITE)
                _executor, metrics = run_chain(backend, stream, txs_per_block, executor=setup)
                rows.append(
                    {
                        "engine": engine_name,
                        "blocks": height,
                        "median_s": metrics.median_latency,
                        "p99_s": metrics.latency_percentile(0.99),
                        "tail_s": metrics.tail_latency,
                    }
                )
            finally:
                cleanup(backend, directory)
    return rows


# =============================================================================
# Figure 13: impact of the size ratio T
# =============================================================================

def run_size_ratio(
    size_ratios: Sequence[int] = (2, 4, 6, 8, 10, 12),
    blocks: int = 300,
    txs_per_block: int = 10,
    num_accounts: int = 100,
    seed: int = 7,
) -> List[Row]:
    """Figure 13: COLE / COLE* throughput and latency across T."""
    rows: List[Row] = []
    for engine_name in ("cole", "cole*"):
        for size_ratio in size_ratios:
            directory = fresh_dir()
            backend = make_engine(
                engine_name, directory, cole_overrides={"size_ratio": size_ratio}
            )
            try:
                workload = SmallBankWorkload(num_accounts=num_accounts, seed=seed)
                setup, _ = run_chain(backend, workload.setup_transactions(), txs_per_block)
                _executor, metrics = run_chain(
                    backend,
                    workload.transactions(blocks * txs_per_block),
                    txs_per_block,
                    executor=setup,
                )
                rows.append(
                    {
                        "engine": engine_name,
                        "size_ratio": size_ratio,
                        "tps": metrics.throughput_tps,
                        "median_s": metrics.median_latency,
                        "tail_s": metrics.tail_latency,
                    }
                )
            finally:
                cleanup(backend, directory)
    return rows


# =============================================================================
# Figures 14 & 15: provenance query performance
# =============================================================================

def _build_provenance_chain(engine_name: str, blocks: int, txs_per_block: int,
                            cole_overrides: Optional[dict] = None):
    directory = fresh_dir()
    backend = make_engine(engine_name, directory, cole_overrides=cole_overrides)
    workload = ProvenanceWorkload(num_base_keys=100, seed=11)
    setup, _ = run_chain(backend, workload.load_transactions(), txs_per_block)
    executor, _metrics = run_chain(
        backend, workload.update_transactions(blocks * txs_per_block), txs_per_block,
        record_latencies=False, executor=setup,
    )
    return backend, directory, workload, executor.height


def run_provenance_range(
    query_ranges: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
    blocks: int = 300,
    txs_per_block: int = 10,
    engines: Sequence[str] = ("mpt", "cole", "cole*"),
    queries_per_point: int = 10,
) -> List[Row]:
    """Figure 14: provenance CPU time and proof size vs block range q.

    COLE's in-memory level is shrunk (B = 64) so recent versions reach
    the on-disk runs, as they do at the paper's 10^5-block scale.
    """
    rows: List[Row] = []
    from repro.bench.harness import BENCH_CONTEXT, BENCH_SYSTEM
    from repro.chain.contracts import KVStoreContract

    contract = KVStoreContract(BENCH_CONTEXT)
    for engine_name in engines:
        backend, directory, workload, height = _build_provenance_chain(
            engine_name, blocks, txs_per_block,
            cole_overrides={"mem_capacity": 64},
        )
        try:
            if hasattr(backend, "wait_for_merges"):
                backend.wait_for_merges()
            state_root = backend.commit_block()
            for query_range in query_ranges:
                total_cpu = 0.0
                total_proof = 0
                count = 0
                for key, blk_low, blk_high in workload.queries(
                    queries_per_point, height, query_range
                ):
                    addr = contract.key_addr(key)
                    tick = time.perf_counter()
                    result = backend.prov_query(addr, blk_low, blk_high)
                    if isinstance(backend, Cole):
                        verify_provenance(
                            result, state_root, addr_size=BENCH_SYSTEM.addr_size
                        )
                        proof_size = result.proof.size_bytes()
                    else:
                        proof_size = result.proof_size_bytes()
                    total_cpu += time.perf_counter() - tick
                    total_proof += proof_size
                    count += 1
                rows.append(
                    {
                        "engine": engine_name,
                        "range": query_range,
                        "cpu_s": total_cpu / count,
                        "proof_bytes": total_proof / count,
                    }
                )
        finally:
            cleanup(backend, directory)
    return rows


def run_mht_fanout(
    fanouts: Sequence[int] = (2, 4, 8, 16, 32, 64),
    blocks: int = 300,
    txs_per_block: int = 10,
    query_range: int = 16,
    queries_per_point: int = 10,
) -> List[Row]:
    """Figure 15: provenance cost vs COLE's MHT fanout m (q = 16)."""
    rows: List[Row] = []
    from repro.bench.harness import BENCH_CONTEXT, BENCH_SYSTEM
    from repro.chain.contracts import KVStoreContract

    contract = KVStoreContract(BENCH_CONTEXT)
    for engine_name in ("cole", "cole*"):
        for fanout in fanouts:
            backend, directory, workload, height = _build_provenance_chain(
                engine_name, blocks, txs_per_block,
                cole_overrides={"mht_fanout": fanout, "mem_capacity": 64},
            )
            try:
                if hasattr(backend, "wait_for_merges"):
                    backend.wait_for_merges()
                state_root = backend.commit_block()
                total_cpu = 0.0
                total_proof = 0
                count = 0
                for key, blk_low, blk_high in workload.queries(
                    queries_per_point, height, query_range
                ):
                    addr = contract.key_addr(key)
                    tick = time.perf_counter()
                    result = backend.prov_query(addr, blk_low, blk_high)
                    verify_provenance(result, state_root, addr_size=BENCH_SYSTEM.addr_size)
                    total_cpu += time.perf_counter() - tick
                    total_proof += result.proof.size_bytes()
                    count += 1
                rows.append(
                    {
                        "engine": engine_name,
                        "fanout": fanout,
                        "cpu_s": total_cpu / count,
                        "proof_bytes": total_proof / count,
                    }
                )
            finally:
                cleanup(backend, directory)
    return rows


# =============================================================================
# Figure 16 (extension): put throughput vs shard count
# =============================================================================

def run_sharding_scalability(
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    blocks: int = 200,
    puts_per_block: int = 512,
    num_addresses: int = 4096,
    mem_capacity: int = 512,
    seed: int = 7,
    repeats: int = 1,
) -> List[Row]:
    """Figure 16 (new): write throughput and storage vs shard count N.

    Feeds the identical put stream to a ``cole-shard`` engine at each N —
    each shard an independent COLE* instance sized like the single-node
    engine, as horizontal scale-out would provision it — and measures the
    blocking path: batched puts plus parallel block commits.  The
    composite ``Hstate`` per N is recorded so determinism across repeated
    runs is checkable from the printed series.

    With ``repeats > 1`` each shard count is run that many times on fresh
    workspaces — sweeps interleaved so background noise hits every N
    alike — and the *fastest* run per N is reported (the standard
    noise-robust estimator for wall-clock benchmarks).
    """
    from repro.bench.harness import BENCH_SYSTEM

    best: Dict[int, float] = {}
    storage: Dict[int, int] = {}
    roots: Dict[int, bytes] = {}
    for _attempt in range(max(1, repeats)):
        for num_shards in shard_counts:
            directory = fresh_dir()
            backend = make_engine(
                "cole-shard",
                directory,
                cole_overrides={"num_shards": num_shards, "mem_capacity": mem_capacity},
            )
            try:
                import gc

                rng = random.Random(seed)
                pool = [
                    rng.randbytes(BENCH_SYSTEM.addr_size) for _ in range(num_addresses)
                ]
                # Pre-generate the stream: the timer measures the engine,
                # not the workload generator (which is identical per N).
                batches = [
                    [
                        (rng.choice(pool), rng.randbytes(BENCH_SYSTEM.value_size))
                        for _ in range(puts_per_block)
                    ]
                    for _ in range(blocks)
                ]
                root = b""
                gc_was_enabled = gc.isenabled()
                gc.disable()  # GC pauses are noise at this timescale
                try:
                    started = time.perf_counter()
                    for blk, batch in enumerate(batches, 1):
                        backend.begin_block(blk)
                        backend.put_many(batch)
                        root = backend.commit_block()
                    elapsed = time.perf_counter() - started
                finally:
                    if gc_was_enabled:
                        gc.enable()
                backend.wait_for_merges()
                storage[num_shards] = backend.storage_bytes()
                roots[num_shards] = root
                if num_shards not in best or elapsed < best[num_shards]:
                    best[num_shards] = elapsed
            finally:
                cleanup(backend, directory)
    total_puts = blocks * puts_per_block
    return [
        {
            "shards": num_shards,
            "puts": total_puts,
            "elapsed_s": best[num_shards],
            "puts_per_s": total_puts / best[num_shards] if best[num_shards] else 0.0,
            "storage_bytes": storage[num_shards],
            "hstate": roots[num_shards].hex()[:16],
        }
        for num_shards in shard_counts
    ]


# =============================================================================
# Figure 17 (extension): service throughput vs concurrent clients
# =============================================================================

def run_service_throughput(
    client_counts: Sequence[int] = (1, 8, 32),
    ops_per_client: int = 200,
    num_keys: int = 1024,
    read_fraction: float = 0.5,
    num_shards: int = 2,
    mem_capacity: int = 512,
    batch_puts: int = 256,
    batch_delay_s: float = 0.004,
    seed: int = 7,
) -> List[Row]:
    """Figure 17 (new): the serving layer under concurrent load.

    For each client count a fresh sharded engine is stood up behind a
    :class:`~repro.server.ColeServer` (on its own event-loop thread) and
    driven closed-loop with mixed YCSB read/write traffic over real TCP
    sockets.  Reported per point: completed ops/s, p50/p99 latency, the
    read-cache hit rate, and the group-commit batch size — the knobs the
    batching and caching design trades against each other.
    """
    from repro.bench.harness import BENCH_SYSTEM
    from repro.bench.report import percentile
    from repro.server import (
        LoadgenParams,
        ServerConfig,
        ServerThread,
        run_loadgen_sync,
    )

    from repro.server.eventloop import install_event_loop_policy

    # Record which loop flavor served the section — uvloop when the
    # optional package is present, the stdlib loop otherwise — so rows
    # from different machines stay comparable.
    loop_name = install_event_loop_policy()
    rows: List[Row] = []
    for clients in client_counts:
        directory = fresh_dir()
        backend = make_engine(
            "cole-shard",
            directory,
            cole_overrides={"num_shards": num_shards, "mem_capacity": mem_capacity},
        )
        try:
            config = ServerConfig(
                batch_max_puts=batch_puts, batch_max_delay=batch_delay_s
            )
            with ServerThread(backend, config=config) as thread:
                params = LoadgenParams(
                    clients=clients,
                    ops_per_client=ops_per_client,
                    read_fraction=read_fraction,
                    num_keys=num_keys,
                    addr_size=BENCH_SYSTEM.addr_size,
                    value_size=BENCH_SYSTEM.value_size,
                    seed=seed,
                )
                report = run_loadgen_sync(
                    thread.server.host, thread.server.port, params
                )
            backend.wait_for_merges()
            batcher = report.server_stats.get("batcher", {})
            rows.append(
                {
                    "clients": clients,
                    "ops": report.ops,
                    "errors": report.errors,
                    "ops_per_s": report.throughput,
                    "p50_s": percentile(report.latencies, 0.5),
                    "p99_s": percentile(report.latencies, 0.99),
                    "cache_hit_rate": report.cache_hit_rate,
                    "avg_batch": batcher.get("avg_batch", 0.0),
                    "commits": batcher.get("commits", 0),
                    "event_loop": loop_name,
                }
            )
        finally:
            cleanup(backend, directory)
    return rows


# =============================================================================
# Figure 18 (extension): durability cost — WAL fsync policies
# =============================================================================

def run_durability(
    policies: Sequence[str] = ("off", "none", "batch", "always"),
    clients: int = 16,
    ops_per_client: int = 150,
    num_keys: int = 1024,
    read_fraction: float = 0.1,
    num_shards: int = 2,
    mem_capacity: int = 512,
    batch_puts: int = 256,
    batch_delay_s: float = 0.004,
    seed: int = 7,
    repeats: int = 1,
) -> List[Row]:
    """Figure 18 (new): what durable acks cost, per fsync policy.

    The same write-heavy closed-loop workload drives a served sharded
    engine once per policy: ``off`` (no WAL — PR 2's volatile serving),
    ``none`` (records reach the OS page cache before the ack), ``batch``
    (acks wait for a group fsync; many acks amortize one fsync — the
    production default), and ``always`` (an fsync per ack — the strict
    floor).  Reported per point: throughput, p50/p99 latency, and the
    fsyncs-per-acked-put ratio that explains the ordering.  The headline
    claim is ``batch`` staying within ~2x of ``off`` while ``always``
    pays the full per-op fsync.

    ``repeats`` runs each policy that many times (interleaved, like the
    fig16 sweep) and keeps the best-throughput row per policy — scheduler
    and fsync-latency noise hits a single run hard.
    """
    from repro.bench.harness import BENCH_SYSTEM
    from repro.bench.report import percentile
    from repro.server import (
        LoadgenParams,
        ServerConfig,
        ServerThread,
        run_loadgen_sync,
    )
    from repro.wal import WriteAheadLog

    def run_policy(policy: str) -> Row:
        directory = fresh_dir()
        backend = make_engine(
            "cole-shard",
            directory,
            cole_overrides={"num_shards": num_shards, "mem_capacity": mem_capacity},
        )
        wal = None
        try:
            if policy != "off":
                import os

                wal = WriteAheadLog(
                    os.path.join(directory, "wal"),
                    num_shards=num_shards,
                    sync_policy=policy,
                )
            config = ServerConfig(
                batch_max_puts=batch_puts, batch_max_delay=batch_delay_s
            )
            with ServerThread(backend, config=config, wal=wal) as thread:
                params = LoadgenParams(
                    clients=clients,
                    ops_per_client=ops_per_client,
                    read_fraction=read_fraction,
                    num_keys=num_keys,
                    addr_size=BENCH_SYSTEM.addr_size,
                    value_size=BENCH_SYSTEM.value_size,
                    seed=seed,
                )
                report = run_loadgen_sync(
                    thread.server.host, thread.server.port, params
                )
            backend.wait_for_merges()
            wal_stats = report.server_stats.get("wal", {})
            puts = wal_stats.get("puts_appended", 0)
            return {
                "policy": policy,
                "ops": report.ops,
                "errors": report.errors,
                "ops_per_s": report.throughput,
                "p50_s": percentile(report.latencies, 0.5),
                "p99_s": percentile(report.latencies, 0.99),
                "wal_syncs": wal_stats.get("syncs", 0),
                "wal_mb": wal_stats.get("bytes_appended", 0) / 1e6,
                "syncs_per_put": (
                    wal_stats.get("syncs", 0) / puts if puts else 0.0
                ),
            }
        finally:
            if wal is not None:
                wal.close()
            cleanup(backend, directory)

    best: Dict[str, Row] = {}
    total_errors: Dict[str, int] = {}
    for _ in range(max(1, repeats)):
        for policy in policies:
            row = run_policy(policy)
            total_errors[policy] = total_errors.get(policy, 0) + int(row["errors"])
            if policy not in best or row["ops_per_s"] > best[policy]["ops_per_s"]:
                best[policy] = row
    for policy, row in best.items():
        row["errors"] = total_errors[policy]  # an error in any repeat shows
    return [best[policy] for policy in policies]


# =============================================================================
# Figure 19 (extension): read scaling across live replicas
# =============================================================================

def _spawn_cli_process(argv: Sequence[str], timeout_s: float = 60.0):
    """Start ``repro.cli`` in a subprocess and wait for its readiness line.

    Subprocesses (not threads) on purpose: scaling across servers is a
    claim about independent engines on independent cores, which the GIL
    would flatten inside one interpreter.  Both ``repro serve`` and
    ``repro cluster serve`` print the same ``serving ... on HOST:PORT``
    line once every port is bound; returns ``(proc, host, port)``.
    """
    import os
    import re
    import subprocess
    import sys
    import threading

    src = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    lines: List[str] = []
    found: Dict[str, object] = {}
    ready = threading.Event()

    def pump() -> None:
        for line in proc.stdout:
            lines.append(line)
            match = re.search(r"serving .* on ([\d.]+):(\d+)", line)
            if match and "port" not in found:
                found["host"], found["port"] = match.group(1), int(match.group(2))
                ready.set()
        ready.set()  # EOF: unblock the waiter either way

    threading.Thread(target=pump, daemon=True).start()
    if not ready.wait(timeout=timeout_s) or "port" not in found:
        proc.kill()
        raise RuntimeError(f"server never came up:\n{''.join(lines)}")
    return proc, found["host"], found["port"]


def _spawn_serve_process(workspace: str, extra: Sequence[str], timeout_s: float = 60.0):
    """Start ``repro serve`` in a subprocess; returns ``(proc, host, port)``."""
    return _spawn_cli_process(
        ["serve", workspace, "--port", "0", *extra], timeout_s
    )


def _run_loadgen_process(host: str, port: int, clients: int, ops: int,
                         num_keys: int, seed: int):
    """Start a read-only ``repro loadgen --json`` subprocess."""
    import os
    import subprocess
    import sys

    src = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "loadgen",
            "--host", host, "--port", str(port),
            "--clients", str(clients), "--ops", str(ops),
            "--read-fraction", "1.0", "--num-keys", str(num_keys),
            "--seed", str(seed), "--json",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def run_read_scaling(
    replica_counts: Sequence[int] = (0, 1, 3),
    readers_per_node: int = 8,
    reads_per_reader: int = 400,
    num_keys: int = 2048,
    load_waves: int = 4,
    seed: int = 7,
) -> List[Row]:
    """Figure 19 (new): aggregate read throughput vs live replica count.

    For each replica count: one primary process (``repro serve --wal``)
    plus that many replica processes subscribe to its WAL stream; the
    key space is loaded in waves, and after each wave's group commit
    every replica is polled until it reaches the committed height and
    its ``ROOT`` digest is asserted **byte-identical** to the primary's
    — COLE's deterministic checkpoints make root equality the
    replication correctness oracle.  Then a read-only closed-loop load
    generator process saturates each serving node (primary included)
    **one node at a time**, and the aggregate reads/s is the sum of the
    per-node rates: each node is its own process with its own engine, so
    per-node capacity measured in isolation is what a deployment with
    one node per machine aggregates — while driving all nodes at once on
    a small shared CI host would only measure that host's core budget.

    Reported per point: nodes, aggregate reads/s, the slowest node's
    rate, the number of height/root equality checks that passed, and the
    maximum replica lag observed while loading.
    """
    import asyncio
    import json as json_mod
    import shutil

    from repro.server import ServerClient
    from repro.server.loadgen import key_addr, _value

    rows: List[Row] = []
    for replicas in replica_counts:
        base = fresh_dir()
        procs = []
        try:
            primary_ws = f"{base}/primary"
            proc, host, port = _spawn_serve_process(
                primary_ws, ["--wal", "--batch-puts", "256", "--batch-delay-ms", "4"]
            )
            procs.append(proc)
            endpoints = [(host, port)]
            for index in range(replicas):
                rproc, rhost, rport = _spawn_serve_process(
                    f"{base}/replica-{index}", ["--replica-of", f"{host}:{port}"]
                )
                procs.append(rproc)
                endpoints.append((rhost, rport))

            roots_checked = 0
            max_lag_seen = 0

            async def load_and_verify():
                nonlocal roots_checked, max_lag_seen
                async with ServerClient(host, port) as writer:
                    per_wave = (num_keys + load_waves - 1) // load_waves
                    for wave in range(load_waves):
                        ranks = range(
                            wave * per_wave, min((wave + 1) * per_wave, num_keys)
                        )
                        for rank in ranks:
                            await writer.put(
                                key_addr(rank, 32), _value(seed, rank, 40)
                            )
                        info = await writer.flush()
                        for rhost, rport in endpoints[1:]:
                            async with ServerClient(rhost, rport) as reader:
                                for _ in range(600):
                                    rinfo = await reader.root()
                                    lag = info.height - rinfo.height
                                    max_lag_seen = max(max_lag_seen, lag)
                                    if lag <= 0:
                                        break
                                    await asyncio.sleep(0.02)
                                rinfo = await reader.root()
                                if rinfo.height != info.height:
                                    raise RuntimeError(
                                        f"replica {rhost}:{rport} stuck at "
                                        f"height {rinfo.height} < {info.height}"
                                    )
                                if rinfo.digest != info.digest:
                                    raise RuntimeError(
                                        f"root mismatch at height {info.height}"
                                    )
                                roots_checked += 1

            asyncio.run(load_and_verify())

            # Saturate one node at a time (see docstring); the aggregate
            # is the sum of isolated per-node rates.
            reports = []
            for index, (ehost, eport) in enumerate(endpoints):
                run = _run_loadgen_process(
                    ehost, eport, readers_per_node, reads_per_reader,
                    num_keys, seed + index,
                )
                out, err = run.communicate(timeout=300)
                if run.returncode != 0:
                    raise RuntimeError(
                        f"loadgen failed (rc={run.returncode}):\n{out}\n{err}"
                    )
                reports.append(json_mod.loads(out))
            total_reads = sum(report["ops"] for report in reports)
            per_node = [report["ops_per_s"] for report in reports]
            rows.append(
                {
                    "replicas": replicas,
                    "nodes": len(endpoints),
                    "reads": total_reads,
                    "agg_reads_per_s": sum(per_node),
                    "reads_per_s_per_node": min(per_node),
                    "roots_checked": roots_checked,
                    "max_lag_blocks": max_lag_seen,
                }
            )
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=15)
                except Exception:
                    proc.kill()
            shutil.rmtree(base, ignore_errors=True)
    return rows


# =============================================================================
# Figure 20 (extension): key-ordered range-scan throughput (YCSB-E)
# =============================================================================

def run_scan_throughput(
    shard_counts: Sequence[int] = (1, 4),
    scan_lengths: Sequence[int] = (8, 32, 128),
    num_addresses: int = 2048,
    blocks: int = 96,
    puts_per_block: int = 256,
    scans_per_point: int = 200,
    mem_capacity: int = 512,
    seed: int = 7,
    repeats: int = 1,
) -> List[Row]:
    """Figure 20 (new): scan throughput vs scan length, sharded vs single.

    One deterministic multi-version data set (every address updated
    repeatedly across ``blocks`` committed blocks) is loaded into a
    ``cole-shard`` engine at each shard count; then, per scan length
    ``L``, ``scans_per_point`` key-ordered scans of ``limit=L`` are
    issued from zipfian-popular start addresses (the YCSB workload E
    shape, via :class:`~repro.workloads.YCSBGenerator`).

    **Measurement model.**  ``scans_per_s`` for N > 1 is the *scale-out
    deployment* rate, measured the way fig19 measures replicas: shards
    are independent engines a deployment places one per machine, so
    each shard serves its share of every scan — the adaptive per-shard
    page ``ShardedCole.scan`` issues (``ceil(L/N)`` plus slack) — and
    is timed **in isolation**; a logical scan completes when its
    slowest shard finishes, so the deployment rate is the slowest
    shard's rate, plus the coordinator's k-way merge (timed separately
    and charged in full).  Driving all shards inside this one
    interpreter instead would measure the GIL, not the design — hash
    partitioning multiplies per-scan *seek count* by N, and the win is
    that the N seek sets run on N machines.  The single-process merged
    path (``ShardedCole.scan``) is still reported as
    ``merged_scans_per_s`` for transparency: on one interpreter it
    pays N shards' seeks serially and lands below the single engine.

    Every engine's scan results are first verified byte-identical to a
    brute-force in-memory model (latest *and* a historical ``at_blk``
    snapshot), so the timed loops are known to measure correct scans.
    Sweeps are interleaved across engines and the best of ``repeats``
    runs per point is kept, like the fig16/fig18 sweeps.
    """
    import gc
    import heapq
    import itertools
    from operator import itemgetter

    from repro.bench.harness import BENCH_SYSTEM
    from repro.workloads import YCSBGenerator

    addr_size = BENCH_SYSTEM.addr_size
    rng = random.Random(seed)
    pool = sorted(rng.randbytes(addr_size) for _ in range(num_addresses))
    # One deterministic write stream for every engine: multi-version
    # history (model[addr] -> {blk: value}) for at_blk verification.
    batches = []
    model: Dict[bytes, Dict[int, bytes]] = {}
    for blk in range(1, blocks + 1):
        batch = [
            (rng.choice(pool), rng.randbytes(BENCH_SYSTEM.value_size))
            for _ in range(puts_per_block)
        ]
        batches.append(batch)
        for addr, value in batch:
            model.setdefault(addr, {})[blk] = value

    def brute_force(addr_low, addr_high, at_blk, limit):
        out = []
        for addr in pool:
            if not addr_low <= addr <= addr_high:
                continue
            versions = [b for b in model.get(addr, {}) if b <= at_blk]
            if not versions:
                continue
            blk = max(versions)
            out.append((addr, blk, model[addr][blk]))
            if len(out) >= limit:
                break
        return out

    engines = {}
    dirs = {}
    try:
        for num_shards in shard_counts:
            directory = fresh_dir()
            backend = make_engine(
                "cole-shard",
                directory,
                cole_overrides={
                    "num_shards": num_shards,
                    "mem_capacity": mem_capacity,
                },
            )
            for blk, batch in enumerate(batches, 1):
                backend.begin_block(blk)
                backend.put_many(batch)
                backend.commit_block()
            backend.wait_for_merges()
            # Correctness gate before timing: latest and historical
            # scans must match the brute-force model exactly.
            for start in (pool[0], pool[len(pool) // 2]):
                top = b"\xff" * addr_size
                got = backend.scan(start, top, limit=64)
                assert got == brute_force(start, top, blocks, 64), (
                    f"scan mismatch at N={num_shards}"
                )
                mid_blk = blocks // 2
                got = backend.scan(start, top, at_blk=mid_blk, limit=64)
                assert got == brute_force(start, top, mid_blk, 64), (
                    f"at_blk scan mismatch at N={num_shards}"
                )
            engines[num_shards] = backend
            dirs[num_shards] = directory

        def scan_starts(length: int) -> List[tuple]:
            generator = YCSBGenerator(
                "E", num_keys=num_addresses, seed=seed, max_scan_length=length
            )
            return [
                (pool[rank], scan_len)
                for kind, rank, scan_len in generator.ops(scans_per_point * 3)
                if kind == "scan"
            ][:scans_per_point]

        def timed(loop) -> float:
            gc_was_enabled = gc.isenabled()
            gc.disable()  # GC pauses are noise at this timescale
            try:
                started = time.perf_counter()
                loop()
                return time.perf_counter() - started
            finally:
                if gc_was_enabled:
                    gc.enable()

        top = b"\xff" * addr_size
        best: Dict[tuple, Row] = {}
        for _attempt in range(max(1, repeats)):
            for num_shards in shard_counts:
                backend = engines[num_shards]
                for length in scan_lengths:
                    starts = scan_starts(length)
                    # The single-interpreter rate: the full scan for
                    # N=1, the in-process cross-shard merge for N>1.
                    merged_results: List[list] = []
                    merged_elapsed = timed(
                        lambda: merged_results.extend(
                            backend.scan(start, top, limit=scan_len)
                            for start, scan_len in starts
                        )
                    )
                    entries = sum(len(result) for result in merged_results)
                    if num_shards == 1:
                        deploy_per_scan = merged_elapsed / scans_per_point
                    else:
                        # Deployment model: first TRACE, untimed, the
                        # exact request sequence a scatter-gather
                        # coordinator issues per shard — the adaptive
                        # first page AND every continuation refill the
                        # lazy merge triggers — then replay each shard's
                        # trace in isolation (fig19's argument) and
                        # charge the slowest shard plus the full
                        # coordinator merge.  Timing first pages only
                        # would undercharge shards whose share of a
                        # scan overflows the page.
                        from repro.core.cursor import addr_successor
                        from repro.sharding.engine import scan_page_size

                        requests: List[List[tuple]] = [
                            [] for _ in backend.shards
                        ]
                        scan_parts: List[List[list]] = []

                        def traced(shard, sink, start, page):
                            batch = shard.scan(start, top, limit=page)
                            sink.append((start, page))
                            while True:
                                yield from batch
                                if len(batch) < page:
                                    return
                                next_low = addr_successor(batch[-1][0])
                                if next_low is None:
                                    return
                                batch = shard.scan(
                                    next_low, top, limit=page
                                )
                                sink.append((next_low, page))

                        def tag(gen, index):
                            for triple in gen:
                                yield triple, index

                        for start, scan_len in starts:
                            page = scan_page_size(scan_len, num_shards)
                            parts: List[list] = [
                                [] for _ in backend.shards
                            ]
                            tagged = [
                                tag(
                                    traced(
                                        shard, requests[index], start, page
                                    ),
                                    index,
                                )
                                for index, shard in enumerate(
                                    backend.shards
                                )
                            ]
                            # Drain like ShardedCole.scan; keep each
                            # shard's pulled stream for the merge replay.
                            for triple, index in itertools.islice(
                                heapq.merge(
                                    *tagged, key=lambda t: t[0][0]
                                ),
                                scan_len,
                            ):
                                parts[index].append(triple)
                            scan_parts.append(parts)

                        slowest = 0.0
                        for index, shard in enumerate(backend.shards):
                            def shard_loop(shard=shard, index=index):
                                for start, page in requests[index]:
                                    shard.scan(start, top, limit=page)
                            slowest = max(slowest, timed(shard_loop))

                        def merge_loop():
                            for (start, scan_len), parts in zip(
                                starts, scan_parts
                            ):
                                list(
                                    itertools.islice(
                                        heapq.merge(
                                            *parts, key=itemgetter(0)
                                        ),
                                        scan_len,
                                    )
                                )
                        merge_elapsed = timed(merge_loop)
                        deploy_per_scan = (
                            slowest + merge_elapsed
                        ) / scans_per_point
                    row: Row = {
                        "shards": num_shards,
                        "scan_len": length,
                        "scans": scans_per_point,
                        "entries": entries,
                        "scans_per_s": (
                            1.0 / deploy_per_scan if deploy_per_scan else 0.0
                        ),
                        "entries_per_s": (
                            entries / (deploy_per_scan * scans_per_point)
                            if deploy_per_scan
                            else 0.0
                        ),
                        "merged_scans_per_s": (
                            scans_per_point / merged_elapsed
                            if merged_elapsed
                            else 0.0
                        ),
                    }
                    point = (num_shards, length)
                    if (
                        point not in best
                        or row["scans_per_s"] > best[point]["scans_per_s"]
                    ):
                        best[point] = row
        return [
            best[(num_shards, length)]
            for num_shards in shard_counts
            for length in scan_lengths
        ]
    finally:
        for num_shards, backend in engines.items():
            cleanup(backend, dirs[num_shards])


# =============================================================================
# Table 1: empirical complexity comparison
# =============================================================================

def run_complexity_table(
    heights: Sequence[int] = (100, 300, 1000),
    txs_per_block: int = 10,
    num_accounts: int = 100,
    seed: int = 7,
) -> List[Row]:
    """Table 1, measured: storage, write IO/tx, get IO, tail latency."""
    rows: List[Row] = []
    from repro.diskio.iostats import IOStats
    from repro.bench.harness import BENCH_CONTEXT
    from repro.chain.contracts import SmallBankContract

    contract = SmallBankContract(BENCH_CONTEXT)
    for engine_name in ("mpt", "cole", "cole*"):
        for height in heights:
            directory = fresh_dir()
            stats = IOStats()
            backend = make_engine(engine_name, directory, stats=stats)
            try:
                workload = SmallBankWorkload(num_accounts=num_accounts, seed=seed)
                setup, _ = run_chain(backend, workload.setup_transactions(), txs_per_block)
                write_start = stats.snapshot()
                _executor, metrics = run_chain(
                    backend,
                    workload.transactions(height * txs_per_block),
                    txs_per_block,
                    executor=setup,
                )
                if hasattr(backend, "wait_for_merges"):
                    backend.wait_for_merges()
                write_io = stats.delta(write_start).total
                read_start = stats.snapshot()
                get_count = 50
                for index in range(get_count):
                    backend.get(contract.checking_addr(f"acct{index % num_accounts}"))
                get_io = stats.delta(read_start).total
                rows.append(
                    {
                        "engine": engine_name,
                        "blocks": height,
                        "storage_bytes": backend.storage_bytes(),
                        "write_io_per_tx": write_io / metrics.transactions,
                        "get_io_per_query": get_io / get_count,
                        "tail_s": metrics.tail_latency,
                        "median_s": metrics.median_latency,
                    }
                )
            finally:
                cleanup(backend, directory)
    return rows


def run_index_share(
    blocks: int = 300, txs_per_block: int = 10, num_accounts: int = 100, seed: int = 7
) -> Row:
    """Section 1's preliminary claim: the index dominates MPT storage."""
    directory = fresh_dir()
    backend = make_engine("mpt", directory)
    try:
        workload = SmallBankWorkload(num_accounts=num_accounts, seed=seed)
        setup, _ = run_chain(backend, workload.setup_transactions(), txs_per_block)
        run_chain(
            backend,
            workload.transactions(blocks * txs_per_block),
            txs_per_block,
            executor=setup,
        )
        return {
            "value_bytes": backend.value_bytes_written,
            "node_bytes": backend.trie.node_bytes_written,
            "data_share": backend.value_bytes_written / backend.trie.node_bytes_written,
        }
    finally:
        cleanup(backend, directory)


# =============================================================================
# Hot-path extensions: batched reads, negative lookups, scan-aware caching
# =============================================================================

def run_multi_get(
    batch_sizes: Sequence[int] = (1, 16),
    clients: int = 4,
    ops_per_client: int = 100,
    num_keys: int = 2048,
    blocks: int = 24,
    puts_per_block: int = 192,
    num_shards: int = 2,
    mem_capacity: int = 512,
    seed: int = 7,
) -> List[Row]:
    """MULTI_GET amortization: keys served per second vs batch size.

    One preloaded sharded engine is served once per batch size (a fresh
    server each time, so the versioned read cache starts cold at every
    point) and driven with a read-only closed-loop workload.  Batch size
    1 issues plain GETs; larger sizes issue the same zipfian key stream
    as MULTI_GET frames — one round trip, one gate acquisition, and one
    source walk per batch instead of per key.  ``speedup`` is each
    point's keys/s over the batch-1 point; the smoke gate holds the
    batch-16 speedup above 2x.
    """
    from repro.bench.harness import BENCH_SYSTEM
    from repro.bench.report import percentile
    from repro.server import (
        LoadgenParams,
        ServerConfig,
        ServerThread,
        run_loadgen_sync,
    )
    from repro.server.loadgen import key_addr

    addr_size = BENCH_SYSTEM.addr_size
    rng = random.Random(seed)
    directory = fresh_dir()
    backend = make_engine(
        "cole-shard",
        directory,
        cole_overrides={"num_shards": num_shards, "mem_capacity": mem_capacity},
    )
    rows: List[Row] = []
    try:
        # Preload every key (plus repeated updates) so reads pay real
        # multi-level lookups, then issue the identical zipfian read
        # stream per batch size.
        for blk in range(1, blocks + 1):
            batch = [
                (
                    key_addr(rng.randrange(num_keys), addr_size),
                    rng.randbytes(BENCH_SYSTEM.value_size),
                )
                for _ in range(puts_per_block)
            ]
            backend.begin_block(blk)
            backend.put_many(batch)
            backend.commit_block()
        backend.wait_for_merges()
        base_keys_per_s: Optional[float] = None
        for batch_size in batch_sizes:
            with ServerThread(backend, config=ServerConfig()) as thread:
                params = LoadgenParams(
                    clients=clients,
                    ops_per_client=ops_per_client,
                    read_fraction=1.0,
                    num_keys=num_keys,
                    addr_size=addr_size,
                    value_size=BENCH_SYSTEM.value_size,
                    seed=seed,
                    multi_get_size=batch_size,
                )
                report = run_loadgen_sync(
                    thread.server.host, thread.server.port, params
                )
            if report.errors:
                raise RuntimeError(
                    f"multi-get bench errored at batch {batch_size}: "
                    f"{report.error_samples}"
                )
            keys_per_s = report.reads / report.elapsed_s
            if base_keys_per_s is None:
                base_keys_per_s = keys_per_s
            samples = report.mget_latencies or report.latencies
            rows.append(
                {
                    "batch": batch_size,
                    "keys": report.reads,
                    "keys_per_s": keys_per_s,
                    "p50_s": percentile(samples, 0.5),
                    "p99_s": percentile(samples, 0.99),
                    "speedup": keys_per_s / base_keys_per_s,
                }
            )
    finally:
        cleanup(backend, directory)
    return rows


def run_negative_lookup(
    absent_keys: int = 64,
    passes: int = 30,
    num_keys: int = 1024,
    blocks: int = 16,
    puts_per_block: int = 128,
    mem_capacity: int = 512,
    seed: int = 7,
) -> List[Row]:
    """What the negative-lookup cache saves on repeated misses.

    A preloaded engine is served twice over the same absent-address GET
    stream: once with the negative cache disabled (every miss pays the
    full bloom-filtered source walk — the cold-miss baseline) and once
    enabled (the first miss per address pays the walk, the rest hit the
    cache).  ``speedup`` is the enabled ops/s over the baseline; the
    smoke gate holds it above 1x.
    """
    import asyncio

    from repro.bench.harness import BENCH_SYSTEM
    from repro.server import ServerClient, ServerConfig, ServerThread
    from repro.server.loadgen import key_addr

    from repro.common.hashing import hash_bytes

    addr_size = BENCH_SYSTEM.addr_size
    rng = random.Random(seed)
    directory = fresh_dir()
    backend = make_engine(
        "cole", directory, cole_overrides={"mem_capacity": mem_capacity}
    )
    rows: List[Row] = []
    try:
        for blk in range(1, blocks + 1):
            batch = [
                (
                    key_addr(rng.randrange(num_keys), addr_size),
                    rng.randbytes(BENCH_SYSTEM.value_size),
                )
                for _ in range(puts_per_block)
            ]
            backend.begin_block(blk)
            backend.put_many(batch)
            backend.commit_block()
        backend.wait_for_merges()
        # Addresses no contract ever writes: every GET is a true miss.
        absent = [
            hash_bytes(f"absent:{index}".encode())[:addr_size]
            for index in range(absent_keys)
        ]

        def drive(negative_capacity: int) -> Row:
            config = ServerConfig(negative_cache_capacity=negative_capacity)
            with ServerThread(backend, config=config) as thread:
                host, port = thread.server.host, thread.server.port

                async def hammer() -> Row:
                    async with ServerClient(host, port) as client:
                        for addr in absent:  # warm-up pass (uncounted)
                            assert await client.get(addr) is None
                        started = time.perf_counter()
                        for _ in range(passes):
                            for addr in absent:
                                await client.get(addr)
                        elapsed = time.perf_counter() - started
                        stats = await client.stats()
                    ops = passes * len(absent)
                    return {
                        "ops": ops,
                        "ops_per_s": ops / elapsed,
                        "hit_rate": stats["negative_cache"]["hit_rate"],
                    }

                return asyncio.run(hammer())

        baseline = drive(0)
        cached = drive(4096)
        rows.append(
            {"config": "no-cache", "speedup": 1.0, **baseline}
        )
        rows.append(
            {
                "config": "negative-cache",
                "speedup": cached["ops_per_s"] / baseline["ops_per_s"],
                **cached,
            }
        )
    finally:
        cleanup(backend, directory)
    return rows


def run_scan_vs_hotset(
    cache_pages: int = 256,
    hot_keys: int = 64,
    warm_passes: int = 3,
    num_keys: int = 1024,
    blocks: int = 32,
    puts_per_block: int = 128,
    mem_capacity: int = 512,
    seed: int = 7,
) -> List[Row]:
    """Scan resistance of the segmented page cache.

    With the per-run value-file cache enabled, a hot set of point-read
    addresses is warmed until its pages sit in the protected segment;
    the hot-set GET hit rate is measured, then a full-range scan floods
    the cache with sequential-tagged pages, and the hot-set hit rate is
    measured again.  ``hit_ratio`` (after / before) stays near 1 when
    the scan cannot evict the protected segment — the smoke gate holds
    it above 0.9.
    """
    from repro.bench.harness import BENCH_SYSTEM
    from repro.diskio.iostats import IOStats
    from repro.server.loadgen import key_addr

    addr_size = BENCH_SYSTEM.addr_size
    rng = random.Random(seed)
    stats = IOStats()
    directory = fresh_dir()
    backend = make_engine(
        "cole",
        directory,
        stats=stats,
        cole_overrides={
            "mem_capacity": mem_capacity,
            "value_cache_pages": cache_pages,
        },
    )
    try:
        for blk in range(1, blocks + 1):
            batch = [
                (
                    key_addr(rng.randrange(num_keys), addr_size),
                    rng.randbytes(BENCH_SYSTEM.value_size),
                )
                for _ in range(puts_per_block)
            ]
            backend.begin_block(blk)
            backend.put_many(batch)
            backend.commit_block()
        backend.wait_for_merges()
        hot = [key_addr(rank, addr_size) for rank in range(hot_keys)]

        def hot_pass() -> None:
            for addr in hot:
                backend.get(addr)

        def measured_hit_rate() -> float:
            before = stats.snapshot()
            hot_pass()
            delta = stats.delta(before)
            hits = sum(delta.cache_hits.values())
            misses = sum(delta.cache_misses.values())
            return hits / (hits + misses) if hits + misses else 0.0

        for _ in range(warm_passes):
            hot_pass()  # promote the hot pages into the protected segment
        rate_before = measured_hit_rate()
        scanned = backend.scan(
            b"\x00" * addr_size, b"\xff" * addr_size, limit=num_keys
        )
        rate_after = measured_hit_rate()
        return [
            {
                "cache_pages": cache_pages,
                "hot_keys": hot_keys,
                "scanned": len(scanned),
                "hit_rate_before": rate_before,
                "hit_rate_after": rate_after,
                "hit_ratio": rate_after / rate_before if rate_before else 0.0,
            }
        ]
    finally:
        cleanup(backend, directory)


# =============================================================================
# Figure 21 (extension): cluster write scaling with manifest-routed clients
# =============================================================================

def _free_ports(count: int) -> List[int]:
    """``count`` currently-free TCP ports, all distinct.

    Held open simultaneously while probing so the OS cannot hand the
    same port out twice; a server binding one immediately after is the
    usual (benign) probe race every ephemeral-port harness accepts.
    """
    import socket

    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def run_cluster_scaling(
    node_counts: Sequence[int] = (1, 4),
    writers_per_node: int = 8,
    writes_per_writer: int = 400,
    num_keys: int = 2048,
    load_waves: int = 4,
    seed: int = 7,
) -> List[Row]:
    """Figure 21 (new): aggregate write throughput vs cluster node count.

    For each N: an N-node cluster (one shard per node, one ``repro
    cluster serve`` *process* per node) is initialised from a manifest
    and loaded through the manifest-routed :func:`repro.server.connect`
    client in deterministic waves — one ``multi_put`` + ``flush`` per
    wave, so every shard commits exactly one block per wave.  The
    cluster's composite ``ROOT`` is then asserted **byte-identical** to
    an in-process oracle: one local :class:`~repro.core.Cole` per shard
    fed exactly that shard's share of each wave (the same crc32 routing)
    and committed on the same block boundaries.  COLE's commit
    checkpoints are deterministic functions of the per-shard put stream,
    so the served cluster must agree with the oracle digest-for-digest
    or it lost or misrouted a write.

    **Measurement model** (the fig19 idiom): a closed-loop writer cohort
    then saturates each shard server **one node at a time**, using only
    keys that shard owns, and the aggregate writes/s is the sum of the
    isolated per-node rates — each node is its own process with its own
    engine and WAL, so per-node capacity measured in isolation is what a
    one-node-per-machine deployment aggregates, while driving all nodes
    at once on a small shared CI host would only measure that host's
    core budget.
    """
    import asyncio
    import shutil

    from repro.common.hashing import hash_concat
    from repro.common.params import ColeParams
    from repro.server import ServerClient, connect
    from repro.server.loadgen import _value, key_addr

    rows: List[Row] = []
    for nodes in node_counts:
        base = fresh_dir()
        procs = []
        try:
            from repro.cluster import plan_manifest

            ports = _free_ports(2 * nodes)
            manifest = plan_manifest(nodes, nodes)
            manifest = manifest.with_addresses(
                {shard_id: f"127.0.0.1:{ports[2 * shard_id]}" for shard_id in range(nodes)}
            )
            for index in range(nodes):
                manifest = manifest.with_control(
                    f"node-{index}", f"127.0.0.1:{ports[2 * index + 1]}"
                )
            manifest_path = f"{base}/manifest.json"
            manifest.save(manifest_path)
            for index in range(nodes):
                proc, _, _ = _spawn_cli_process(
                    [
                        "cluster", "serve", f"{base}/node-{index}",
                        "--node", f"node-{index}", "-m", manifest_path,
                        "--batch-puts", "256", "--batch-delay-ms", "4",
                    ]
                )
                procs.append(proc)

            # Deterministic wave load + composite-root oracle.
            waves = []
            per_wave = (num_keys + load_waves - 1) // load_waves
            for wave in range(load_waves):
                waves.append(
                    [
                        (key_addr(rank, 32), _value(seed, rank, 40))
                        for rank in range(
                            wave * per_wave, min((wave + 1) * per_wave, num_keys)
                        )
                    ]
                )

            async def load_cluster():
                async with connect(manifest_file=manifest_path) as client:
                    for batch in waves:
                        await client.multi_put(batch)
                        # Explicit group commit: the wave is one block on
                        # every shard, matching the oracle's boundaries.
                        await client.flush()
                    return await client.root()

            cluster_root = asyncio.run(load_cluster())

            shard_digests = []
            for shard_id in range(nodes):
                oracle = Cole(
                    f"{base}/oracle-{shard_id}",
                    ColeParams(async_merge=True, mem_capacity=512),
                )
                try:
                    height = 0
                    for batch in waves:
                        bucket = [
                            item
                            for item in batch
                            if manifest.shard_for(item[0]) == shard_id
                        ]
                        if not bucket:
                            continue  # that shard committed no block
                        height += 1
                        oracle.begin_block(height)
                        oracle.put_many(bucket)
                        oracle.commit_block()
                    shard_digests.append(oracle.root_digest())
                finally:
                    oracle.close()
            oracle_digest = bytes(hash_concat(shard_digests))
            if bytes(cluster_root.digest) != oracle_digest:
                raise RuntimeError(
                    f"cluster root {bytes(cluster_root.digest).hex()} != "
                    f"oracle root {oracle_digest.hex()} at {nodes} nodes"
                )

            # Saturate one shard server at a time with keys it owns (see
            # docstring); the aggregate is the sum of isolated rates.
            owned: Dict[int, List[bytes]] = {s: [] for s in range(nodes)}
            for rank in range(num_keys):
                addr = key_addr(rank, 32)
                owned[manifest.shard_for(addr)].append(addr)
            per_node_rates = []
            total_writes = 0

            async def saturate(address: str, keys: List[bytes]) -> float:
                host, _, port = address.rpartition(":")
                async with ServerClient(host, int(port)) as client:
                    async def writer(writer_id: int) -> None:
                        for index in range(writes_per_writer):
                            rank = (writer_id * writes_per_writer + index) % len(keys)
                            await client.put(
                                keys[rank], _value(seed + 1, index, 40)
                            )

                    start = time.perf_counter()
                    await asyncio.gather(
                        *(writer(w) for w in range(writers_per_node))
                    )
                    elapsed = time.perf_counter() - start
                return writers_per_node * writes_per_writer / elapsed

            for shard_id in range(nodes):
                rate = asyncio.run(
                    saturate(manifest.address_of(shard_id), owned[shard_id])
                )
                per_node_rates.append(rate)
                total_writes += writers_per_node * writes_per_writer
            rows.append(
                {
                    "nodes": nodes,
                    "shards": nodes,
                    "writes": total_writes,
                    "agg_writes_per_s": sum(per_node_rates),
                    "writes_per_s_per_node": min(per_node_rates),
                    "root": bytes(cluster_root.digest).hex()[:16],
                    "oracle_match": True,
                }
            )
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=15)
                except Exception:
                    proc.kill()
            shutil.rmtree(base, ignore_errors=True)
    return rows


# =============================================================================
# Figure 22 (extension): compaction policy — leveling vs tiering
# =============================================================================

def run_compaction_policies(
    size_ratios: Sequence[int] = (2, 4, 8),
    blocks: int = 160,
    puts_per_block: int = 24,
    num_shards: int = 4,
    mem_capacity: int = 64,
    hot_fraction: float = 0.75,
    num_keys: int = 1024,
    reads: int = 200,
    seed: int = 7,
) -> List[Row]:
    """Figure 22 (new): write amplification under leveling vs tiering.

    The sharded engine's coordinated cascades are where the two policies
    diverge: a shard-skewed put stream (``hot_fraction`` of writes route
    to shard 0) makes the hot shard's L0 fill first, and every cascade
    it triggers force-flushes the cold shards' *under-full* L0s too.
    Leveling then merges those slim runs into L1 on every arrival once
    the group holds T runs; tiering lets them pile up until the level's
    entry capacity (B·T^l) genuinely overflows, trading read fanout for
    far fewer rewritten bytes.  Per cell: the engine's own
    ``compaction_stats`` byte counters, write amplification, point-read
    latency over the hot/cold mix, and a full content check of sampled
    addresses against an in-memory model (both policies must serve
    byte-identical state — only the file layout may differ).
    """
    from repro.bench.harness import BENCH_SYSTEM
    from repro.bench.report import percentile
    from repro.server.loadgen import key_addr
    from repro.sharding import shard_of

    addr_size = BENCH_SYSTEM.addr_size
    value_size = BENCH_SYSTEM.value_size

    def value_for(addr: bytes, blk: int) -> bytes:
        from repro.common.hashing import hash_bytes

        return hash_bytes(addr + blk.to_bytes(8, "big"))[:value_size].ljust(
            value_size, b"\x00"
        )

    # One deterministic, shard-skewed put stream shared by every cell so
    # the policies see byte-identical writes.
    rng = random.Random(seed)
    pool = [key_addr(index, addr_size) for index in range(num_keys)]
    hot = [addr for addr in pool if shard_of(addr, num_shards) == 0]
    cold = [addr for addr in pool if shard_of(addr, num_shards) != 0]
    stream: List[List[Tuple[bytes, bytes]]] = []
    model: Dict[bytes, bytes] = {}
    for blk in range(1, blocks + 1):
        writes: Dict[bytes, bytes] = {}
        for _ in range(puts_per_block):
            source = hot if rng.random() < hot_fraction else cold
            addr = source[rng.randrange(len(source))]
            writes[addr] = value_for(addr, blk)
        batch = sorted(writes.items())  # canonical per-block order
        stream.append(batch)
        model.update(writes)
    sample = rng.sample(sorted(model), min(reads, len(model)))

    rows: List[Row] = []
    for size_ratio in size_ratios:
        for policy in ("leveling", "tiering"):
            directory = fresh_dir()
            backend = make_engine(
                "cole-shard",
                directory,
                cole_overrides={
                    "num_shards": num_shards,
                    "mem_capacity": mem_capacity,
                    "size_ratio": size_ratio,
                    "compaction": policy,
                },
            )
            try:
                started = time.perf_counter()
                for blk, batch in enumerate(stream, start=1):
                    backend.begin_block(blk)
                    backend.put_many(batch)
                    backend.commit_block()
                backend.wait_for_merges()
                load_s = time.perf_counter() - started
                mismatches = sum(
                    1 for addr in sample if backend.get(addr) != model[addr]
                )
                latencies: List[float] = []
                for addr in sample:
                    t0 = time.perf_counter()
                    backend.get(addr)
                    latencies.append(time.perf_counter() - t0)
                stats = backend.compaction_stats()
                total_runs = sum(
                    row["runs"] for row in stats["levels"].values()
                )
                rows.append(
                    {
                        "policy": policy,
                        "size_ratio": size_ratio,
                        "bytes_flushed": stats["bytes_flushed"],
                        "bytes_rewritten": stats["bytes_rewritten"],
                        "write_amp": stats["write_amp"],
                        "disk_runs": total_runs,
                        "puts_per_s": (blocks * puts_per_block) / load_s,
                        "get_p50_us": percentile(latencies, 0.5) * 1e6,
                        "get_p99_us": percentile(latencies, 0.99) * 1e6,
                        "content_mismatches": mismatches,
                        "root": backend.root_digest().hex()[:16],
                    }
                )
            finally:
                cleanup(backend, directory)
    return rows
