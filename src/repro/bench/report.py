"""Plain-text reporting of experiment series (the figures' data)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table, one row per series point."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def format_bytes(num_bytes: int) -> str:
    """Human-readable byte size."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GB"


def format_seconds(seconds: float) -> str:
    """Human-readable duration (us / ms / s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"
