"""Plain-text reporting of experiment series (the figures' data).

Shared by the experiment drivers, the figure benchmarks, the CLI, and
the serving layer's load generator, so every surface prints rates,
latencies, and percentile columns the same way.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table, one row per series point."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def format_bytes(num_bytes: int) -> str:
    """Human-readable byte size."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GB"


def format_seconds(seconds: float) -> str:
    """Human-readable duration (us / ms / s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def format_rate(count: float, seconds: float) -> str:
    """Human-readable event rate, e.g. ``"12.3k/s"``.

    ``seconds == 0`` (a run too fast to time) formats as ``"inf/s"``.
    """
    if seconds <= 0:
        return "inf/s"
    rate = count / seconds
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if rate >= scale:
            return f"{rate / scale:.1f}{suffix}/s"
    return f"{rate:.0f}/s"


def percentile(values, fraction: float) -> float:
    """Value at ``fraction`` (0..1) of the sample; 0.0 when empty.

    The one percentile implementation: ``ExecutionMetrics`` and the load
    generator both report through it, so their numbers agree by
    construction.  Accepts either a raw sequence (sorted per call) or
    anything with its own ``percentile`` method — notably
    :class:`repro.obs.LatencyHistogram`, which answers from its buckets
    without keeping (or re-sorting) the samples.
    """
    own = getattr(values, "percentile", None)
    if own is not None:
        return own(fraction)
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]


def latency_columns(row: Mapping[str, float], keys: Sequence[str]) -> List[str]:
    """Format a row's latency fields (seconds) as table cells, in order.

    The percentile-column helper of the figure benchmarks: fig12/fig13
    print ``median / p99 / tail`` columns through this one path.
    """
    return [format_seconds(float(row[key])) for key in keys]
