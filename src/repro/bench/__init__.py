"""Benchmark harness: regenerates every table and figure of Section 8.

:mod:`repro.bench.harness` builds engines and runs workload phases;
:mod:`repro.bench.experiments` contains one driver per paper figure or
table; :mod:`repro.bench.report` prints the paper-style series.  The
``benchmarks/`` pytest-benchmark suite wraps these drivers at reduced
scale; EXPERIMENTS.md records paper-vs-measured outcomes.
"""

from repro.bench.harness import (
    EngineSpec,
    ENGINES,
    make_engine,
    run_chain,
    fresh_dir,
)
from repro.bench.report import format_table

__all__ = [
    "EngineSpec",
    "ENGINES",
    "make_engine",
    "run_chain",
    "fresh_dir",
    "format_table",
]
