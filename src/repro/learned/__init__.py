"""The ε-bounded piecewise linear learned index (Sections 4.1 and 6.1).

* :mod:`repro.learned.plm` — the streaming optimal piecewise-linear model
  builder (Algorithm 2): O'Rourke's online convex-hull fitting [40], the
  same algorithm the PGM-index uses, implemented with exact big-integer
  arithmetic so the ε guarantee is never lost to float drift.
* :mod:`repro.learned.model` — the on-disk model record
  ``M = <sl, ic, kmin, pmax>`` (Definition 1) and its binary codec.
"""

from repro.learned.model import Model, MODEL_FLOAT_FIELDS
from repro.learned.plm import OptimalPiecewiseLinear, build_models

__all__ = ["Model", "MODEL_FLOAT_FIELDS", "OptimalPiecewiseLinear", "build_models"]
