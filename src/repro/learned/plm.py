"""Streaming optimal piecewise-linear fitting (Algorithm 2).

This is O'Rourke's online algorithm for fitting straight lines between
data ranges [40], as used by the PGM-index [20]: every key ``K`` with
position ``p`` contributes two constraint points ``(K, p + eps)`` and
``(K, p - eps)``; a line is feasible while it passes below the upper
constraints and above the lower ones.  The feasible set is tracked with a
pair of convex hulls and the four extreme "parallelogram" corners the
paper's Figure 5 shows.  Amortized O(1) work per point.

All geometry uses exact Python big-integer arithmetic (compound keys are
hundreds of bits wide — float cross products would be meaningless).  Only
the final slope/intercept of an emitted segment are rounded to doubles,
and they are anchored at the segment's first key so the rounding error at
query time is far below one position.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.learned.model import Model

Point = Tuple[int, int]


def _sub(a: Point, b: Point) -> Point:
    """Vector a - b (a slope as a (dx, dy) pair)."""
    return (a[0] - b[0], a[1] - b[1])


def _slope_lt(a: Point, b: Point) -> bool:
    """True if slope ``a.dy/a.dx`` < slope ``b.dy/b.dx`` (exact)."""
    lhs = a[1] * b[0]
    rhs = b[1] * a[0]
    if (a[0] > 0) == (b[0] > 0):
        return lhs < rhs
    return lhs > rhs


def _slope_gt(a: Point, b: Point) -> bool:
    """True if slope ``a.dy/a.dx`` > slope ``b.dy/b.dx`` (exact)."""
    lhs = a[1] * b[0]
    rhs = b[1] * a[0]
    if (a[0] > 0) == (b[0] > 0):
        return lhs > rhs
    return lhs < rhs


def _cross(origin: Point, a: Point, b: Point) -> int:
    """Z component of ``(a - origin) x (b - origin)`` (exact)."""
    return (a[0] - origin[0]) * (b[1] - origin[1]) - (a[1] - origin[1]) * (b[0] - origin[0])


class OptimalPiecewiseLinear:
    """Incrementally fits one ε-bounded segment over strictly increasing keys.

    ``add_point`` returns ``False`` when the new point cannot join the
    current segment (the enclosing parallelogram would exceed height 2ε,
    Figure 5(b)); the caller then emits the segment via :meth:`segment`
    and starts a new one.
    """

    def __init__(self, epsilon: int) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon
        self._reset()

    def _reset(self) -> None:
        self.points_in_hull = 0
        self.first_x: Optional[int] = None
        self.last_x: Optional[int] = None
        self._upper: List[Point] = []
        self._lower: List[Point] = []
        self._upper_start = 0
        self._lower_start = 0
        self._rect: List[Optional[Point]] = [None, None, None, None]

    # -- incremental fitting ---------------------------------------------------

    def add_point(self, x: int, y: int) -> bool:
        """Try to extend the current segment with ``(x, y)``.

        Returns ``True`` if the point fits within the ε band, ``False`` if
        it starts a new segment (in which case the fitter state is
        untouched and still describes the finished segment).
        """
        if self.points_in_hull > 0 and x <= self.last_x:  # type: ignore[operator]
            raise ValueError("keys must be strictly increasing within a run")
        p_up: Point = (x, y + self.epsilon)
        p_down: Point = (x, y - self.epsilon)

        if self.points_in_hull == 0:
            self.first_x = x
            self.last_x = x
            self._rect[0] = p_up
            self._rect[1] = p_down
            self._upper = [p_up]
            self._lower = [p_down]
            self._upper_start = 0
            self._lower_start = 0
            self.points_in_hull = 1
            return True

        if self.points_in_hull == 1:
            self.last_x = x
            self._rect[2] = p_down
            self._rect[3] = p_up
            self._upper.append(p_up)
            self._lower.append(p_down)
            self.points_in_hull = 2
            return True

        slope_min = _sub(self._rect[2], self._rect[0])  # type: ignore[arg-type]
        slope_max = _sub(self._rect[3], self._rect[1])  # type: ignore[arg-type]
        outside_min = _slope_lt(_sub(p_up, self._rect[2]), slope_min)  # type: ignore[arg-type]
        outside_max = _slope_gt(_sub(p_down, self._rect[3]), slope_max)  # type: ignore[arg-type]
        if outside_min or outside_max:
            return False

        self.last_x = x
        if _slope_lt(_sub(p_up, self._rect[1]), slope_max):  # type: ignore[arg-type]
            # The upper constraint tightens the max slope: walk the lower
            # hull for the supporting point, then add p_up to the upper hull.
            min_i = self._lower_start
            min_slope = _sub(self._lower[min_i], p_up)
            i = min_i + 1
            while i < len(self._lower):
                candidate = _sub(self._lower[i], p_up)
                if _slope_gt(candidate, min_slope):
                    break
                min_slope = candidate
                min_i = i
                i += 1
            self._rect[1] = self._lower[min_i]
            self._rect[3] = p_up
            self._lower_start = min_i
            end = len(self._upper)
            while end >= self._upper_start + 2 and _cross(
                self._upper[end - 2], self._upper[end - 1], p_up
            ) <= 0:
                end -= 1
            del self._upper[end:]
            self._upper.append(p_up)

        if _slope_gt(_sub(p_down, self._rect[0]), slope_min):  # type: ignore[arg-type]
            # The lower constraint tightens the min slope, symmetrically.
            max_i = self._upper_start
            max_slope = _sub(self._upper[max_i], p_down)
            i = max_i + 1
            while i < len(self._upper):
                candidate = _sub(self._upper[i], p_down)
                if _slope_lt(candidate, max_slope):
                    break
                max_slope = candidate
                max_i = i
                i += 1
            self._rect[0] = self._upper[max_i]
            self._rect[2] = p_down
            self._upper_start = max_i
            end = len(self._lower)
            while end >= self._lower_start + 2 and _cross(
                self._lower[end - 2], self._lower[end - 1], p_down
            ) >= 0:
                end -= 1
            del self._lower[end:]
            self._lower.append(p_down)

        self.points_in_hull += 1
        return True

    # -- segment emission --------------------------------------------------------

    def segment(self) -> Tuple[float, float]:
        """Slope and intercept of the central feasible line, anchored at
        the segment's first key (the paper's "central line of the
        parallelogram", Figure 5).
        """
        if self.points_in_hull == 0:
            raise ValueError("no points in the current segment")
        assert self.first_x is not None
        if self.points_in_hull == 1:
            # A single point: both corners share its x; predict its y exactly.
            return 0.0, float((self._rect[0][1] + self._rect[1][1]) / 2)  # type: ignore[index]

        r0, r1, r2, r3 = self._rect  # type: ignore[misc]
        assert r0 and r1 and r2 and r3
        slope_min = Fraction(r2[1] - r0[1], r2[0] - r0[0])
        slope_max = Fraction(r3[1] - r1[1], r3[0] - r1[0])
        slope = (slope_min + slope_max) / 2

        intersection = _intersect(r0, r2, r1, r3)
        if intersection is None:
            # Parallel diagonals: the feasible slope collapsed to a single
            # value, and the feasible lines are the band between the two
            # (possibly coincident) diagonal lines.  Anchor midway between
            # them evaluated at the first key — the corners may have
            # migrated to arbitrary x, so averaging their raw y values
            # (as this fallback once did) mixes heights of different keys
            # and can emit a line violating the ε bound.
            i_x = Fraction(self.first_x)
            y_on_min = r0[1] + (i_x - r0[0]) * slope_min
            y_on_max = r1[1] + (i_x - r1[0]) * slope_max
            i_y = (y_on_min + y_on_max) / 2
        else:
            i_x, i_y = intersection
        intercept = i_y - (i_x - self.first_x) * slope
        return float(slope), float(intercept)

    def start_new_segment(self, x: int, y: int) -> None:
        """Reset and seed the next segment with the point that overflowed."""
        self._reset()
        self.add_point(x, y)


def _intersect(
    a1: Point, a2: Point, b1: Point, b2: Point
) -> Optional[Tuple[Fraction, Fraction]]:
    """Intersection of lines ``a1-a2`` and ``b1-b2`` (None if parallel)."""
    da = _sub(a2, a1)
    db = _sub(b2, b1)
    denominator = da[0] * db[1] - da[1] * db[0]
    if denominator == 0:
        return None
    diff = _sub(b1, a1)
    t = Fraction(diff[0] * db[1] - diff[1] * db[0], denominator)
    return Fraction(a1[0]) + t * da[0], Fraction(a1[1]) + t * da[1]


def build_models(
    stream: Iterable[Tuple[int, int]], epsilon: int
) -> Iterator[Model]:
    """Algorithm 2: learn ε-bounded models from a (key, position) stream.

    Yields each :class:`Model` as soon as it is finalized, so callers can
    write it straight to the index file while the merge is still running.
    """
    fitter = OptimalPiecewiseLinear(epsilon)
    kmin: Optional[int] = None
    pmax = 0
    for key, position in stream:
        if fitter.add_point(key, position):
            if kmin is None:
                kmin = key
            pmax = position
            continue
        sl, ic = fitter.segment()
        assert kmin is not None
        yield Model(sl=sl, ic=ic, kmin=kmin, pmax=pmax)
        fitter.start_new_segment(key, position)
        kmin = key
        pmax = position
    if fitter.points_in_hull > 0:
        sl, ic = fitter.segment()
        assert kmin is not None
        yield Model(sl=sl, ic=ic, kmin=kmin, pmax=pmax)
