"""The learned-model record of Definition 1.

``M = <sl, ic, kmin, pmax>``: a linear predictor valid for keys
``K >= kmin``, where the predicted position is
``min(sl * (K - kmin) + ic, pmax)`` and the true position is guaranteed to
lie within ``epsilon`` of the prediction.

The slope is stored *relative to kmin*: compound keys are huge integers
(``binary(addr) * 2**64 + blk``), and anchoring the line at the model's
first key keeps the float evaluation error far below one position (the
construction uses exact integer arithmetic; only the final slope/intercept
are rounded to doubles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.codec import (
    decode_u64,
    encode_u64,
    int_from_bytes,
    int_to_bytes,
    pack_float,
    unpack_float,
)

#: Number of IEEE-754 doubles in the serialized record (slope, intercept).
MODEL_FLOAT_FIELDS = 2


@dataclass(frozen=True)
class Model:
    """An ε-bounded linear model covering keys in ``[kmin, ...]``.

    Attributes:
        sl: slope of the line, relative to ``kmin``.
        ic: intercept (predicted position at ``K == kmin``).
        kmin: first key covered by the model.
        pmax: last position covered by the model (predictions are clamped).
    """

    sl: float
    ic: float
    kmin: int
    pmax: int

    def predict(self, key: int) -> int:
        """Predicted position of ``key``, clamped to ``[0, pmax]``."""
        raw = self.sl * float(key - self.kmin) + self.ic
        if raw < 0.0:
            return 0
        predicted = int(raw)
        return self.pmax if predicted > self.pmax else predicted

    def covers(self, key: int) -> bool:
        """True if the model may be used for ``key`` (Algorithm 7 line 11)."""
        return key >= self.kmin

    # -- binary codec ---------------------------------------------------------

    @staticmethod
    def record_size(key_width: int) -> int:
        """Serialized size in bytes for a given key width."""
        return 8 * MODEL_FLOAT_FIELDS + key_width + 8

    def to_bytes(self, key_width: int) -> bytes:
        """Serialize as ``sl || ic || kmin || pmax``."""
        return (
            pack_float(self.sl)
            + pack_float(self.ic)
            + int_to_bytes(self.kmin, key_width)
            + encode_u64(self.pmax)
        )

    @classmethod
    def from_bytes(cls, data: bytes, key_width: int, offset: int = 0) -> "Model":
        """Deserialize a record written by :meth:`to_bytes`."""
        sl = unpack_float(data, offset)
        ic = unpack_float(data, offset + 8)
        kmin = int_from_bytes(data[offset + 16 : offset + 16 + key_width])
        pmax = decode_u64(data, offset + 16 + key_width)
        return cls(sl=sl, ic=ic, kmin=kmin, pmax=pmax)
