"""The LIPP baseline: an updatable learned index with node persistence.

LIPP [54] places entries in model-predicted slots of gapped arrays and
resolves collisions by creating child nodes — lookups never need a local
search.  The paper applies it to blockchain storage *without* the
column-based design by persisting every modified node at each block, the
same copy-on-write discipline as the MPT; because a learned node's
serialization covers its whole gapped array (fanout comparable to the
data size), this blows storage up by 5x-31x versus MPT, which is exactly
the behaviour this reproduction preserves.

Simplifications versus full LIPP (documented in DESIGN.md): nodes are
built with the FMCD-style linear interpolation model but are not
rebalanced by the conflict-counter SMO, and the in-memory layout is a
plain Python list.  Neither affects the storage-persistence behaviour
the baseline exists to demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chain.backend import StorageBackend
from repro.common.codec import encode_u32, encode_u64
from repro.common.errors import StorageError
from repro.common.hashing import Digest, EMPTY_DIGEST, hash_bytes
from repro.diskio.iostats import IOStats
from repro.kvstore import LSMStore

_EMPTY = 0
_ENTRY = 1
_CHILD = 2

_MIN_NODE_SLOTS = 8
_GAP_FACTOR = 2


class _Node:
    """One LIPP node: a linear model over a gapped slot array."""

    __slots__ = ("kmin", "kmax", "slots", "dirty", "digest", "conflicts")

    def __init__(self, kmin: int, kmax: int, num_slots: int) -> None:
        self.kmin = kmin
        self.kmax = kmax
        # Each slot: None | ("e", key, value) | ("c", _Node)
        self.slots: List[Optional[Tuple]] = [None] * num_slots
        self.dirty = True
        self.digest: Optional[Digest] = None
        self.conflicts = 0  # child creations since the last rebuild (SMO)

    def predict(self, key: int) -> int:
        if self.kmax == self.kmin:
            return 0
        position = (key - self.kmin) * (len(self.slots) - 1) // (self.kmax - self.kmin)
        return min(max(position, 0), len(self.slots) - 1)

    def collect_entries(self) -> List[Tuple[int, bytes]]:
        """All entries in the subtree (input to a rebuild)."""
        entries: List[Tuple[int, bytes]] = []
        for slot in self.slots:
            if slot is None:
                continue
            if slot[0] == "e":
                entries.append((slot[1], slot[2]))
            else:
                entries.extend(slot[1].collect_entries())
        return entries


@dataclass
class LIPPProvResult:
    """Per-block provenance answer (mirrors the MPT baseline's shape)."""

    addr: bytes
    versions: List[Tuple[int, bytes]]
    proof_bytes: int = 0

    def proof_size_bytes(self) -> int:
        return self.proof_bytes


class LIPPStorage(StorageBackend):
    """Blockchain storage indexed by a persisted LIPP learned index."""

    def __init__(
        self,
        directory: str,
        stats: Optional[IOStats] = None,
        memtable_capacity: int = 4096,
        page_size: int = 4096,
    ) -> None:
        self.store = LSMStore(
            directory,
            page_size=page_size,
            memtable_capacity=memtable_capacity,
            stats=stats,
            name="lipp",
        )
        self.root: Optional[_Node] = None
        self.roots: Dict[int, Optional[Digest]] = {}
        self.current_blk = 0
        self.nodes_persisted = 0
        self.node_bytes_persisted = 0

    # -- block lifecycle ------------------------------------------------------------

    def begin_block(self, height: int) -> None:
        if height < self.current_blk:
            raise StorageError("block heights must be non-decreasing")
        self.current_blk = height

    def commit_block(self) -> Digest:
        """Persist every node modified in this block (copy-on-write)."""
        digest = self._persist(self.root) if self.root is not None else None
        self.roots[self.current_blk] = digest
        self.store.put(b"r" + encode_u64(self.current_blk), digest or b"")
        return digest if digest is not None else EMPTY_DIGEST

    def _persist(self, node: _Node) -> Digest:
        if not node.dirty and node.digest is not None:
            return node.digest
        parts: List[bytes] = [
            node.kmin.to_bytes(32, "big"),
            node.kmax.to_bytes(32, "big"),
            encode_u32(len(node.slots)),
        ]
        for slot in node.slots:
            if slot is None:
                parts.append(bytes([_EMPTY]))
            elif slot[0] == "e":
                _tag, key, value = slot
                parts.append(
                    bytes([_ENTRY]) + key.to_bytes(32, "big") + encode_u32(len(value)) + value
                )
            else:
                child_digest = self._persist(slot[1])
                parts.append(bytes([_CHILD]) + child_digest)
        data = b"".join(parts)
        digest = hash_bytes(data)
        self._put_node_bytes(digest, data)
        self.nodes_persisted += 1
        self.node_bytes_persisted += len(data)
        node.dirty = False
        node.digest = digest
        return digest

    # Learned nodes routinely exceed a disk page (their gapped arrays have
    # fanout comparable to the data size — the very property that makes
    # persisting them expensive), so node payloads are chunked across KV
    # entries.

    _CHUNK = 3200

    def _put_node_bytes(self, digest: Digest, data: bytes) -> None:
        chunks = [data[i : i + self._CHUNK] for i in range(0, len(data), self._CHUNK)]
        self.store.put(b"n" + digest, encode_u32(len(chunks)))
        for index, chunk in enumerate(chunks):
            self.store.put(b"c" + digest + encode_u32(index), chunk)

    def _get_node_bytes(self, digest: Digest) -> Optional[bytes]:
        header = self.store.get(b"n" + digest)
        if header is None:
            return None
        count = int.from_bytes(header[:4], "big")
        parts = []
        for index in range(count):
            chunk = self.store.get(b"c" + digest + encode_u32(index))
            if chunk is None:
                return None
            parts.append(chunk)
        return b"".join(parts)

    # -- state access -----------------------------------------------------------------

    def put(self, addr: bytes, value: bytes) -> None:
        key = int.from_bytes(addr, "big")
        if self.root is None:
            self.root = _Node(key, key + 1, _MIN_NODE_SLOTS)
        self._insert(self.root, key, value)

    def _insert(self, node: _Node, key: int, value: bytes) -> None:
        node.dirty = True
        slot_index = node.predict(key)
        slot = node.slots[slot_index]
        if slot is None:
            node.slots[slot_index] = ("e", key, value)
            return
        if slot[0] == "e":
            _tag, existing_key, existing_value = slot
            if existing_key == key:
                node.slots[slot_index] = ("e", key, value)
                return
            child = _build_node(
                [(existing_key, existing_value), (key, value)]
            )
            node.slots[slot_index] = ("c", child)
            node.conflicts += 1
            if node.conflicts * 4 > len(node.slots):
                self._rebuild(node)
            return
        self._insert(slot[1], key, value)

    def _rebuild(self, node: _Node) -> None:
        """LIPP's structural-modification operation, simplified: re-learn
        the node over all entries of its subtree with a wider gapped
        array.  This is what makes learned nodes large (fanout comparable
        to the data they cover) — the root of the paper's persistence
        blow-up."""
        entries = node.collect_entries()
        rebuilt = _build_node(entries)
        node.kmin = rebuilt.kmin
        node.kmax = rebuilt.kmax
        node.slots = rebuilt.slots
        node.conflicts = 0
        node.dirty = True

    def get(self, addr: bytes) -> Optional[bytes]:
        key = int.from_bytes(addr, "big")
        node = self.root
        while node is not None:
            slot = node.slots[node.predict(key)]
            if slot is None:
                return None
            if slot[0] == "e":
                return slot[2] if slot[1] == key else None
            node = slot[1]
        return None

    # -- provenance ----------------------------------------------------------------------

    def prov_query(self, addr: bytes, blk_low: int, blk_high: int) -> LIPPProvResult:
        """Per-block traversal of the persisted node graph (like MPT)."""
        key = int.from_bytes(addr, "big")
        versions: List[Tuple[int, bytes]] = []
        proof_bytes = 0
        previous: Optional[bytes] = None
        for blk in range(blk_low, blk_high + 1):
            digest = self._root_digest_at(blk)
            if digest is None:
                continue
            value, path_bytes = self._get_persisted(digest, key)
            proof_bytes += path_bytes
            if value is not None and value != previous:
                versions.append((blk, value))
            previous = value
        return LIPPProvResult(addr=addr, versions=versions, proof_bytes=proof_bytes)

    def _root_digest_at(self, blk: int) -> Optional[Digest]:
        candidates = [b for b in self.roots if b <= blk]
        if not candidates:
            return None
        return self.roots[max(candidates)]

    def _get_persisted(self, digest: Digest, key: int) -> Tuple[Optional[bytes], int]:
        """Traverse persisted nodes; returns (value, bytes of path nodes)."""
        path_bytes = 0
        while True:
            data = self._get_node_bytes(digest)
            if data is None:
                return None, path_bytes
            path_bytes += len(data)
            kmin = int.from_bytes(data[0:32], "big")
            kmax = int.from_bytes(data[32:64], "big")
            num_slots = int.from_bytes(data[64:68], "big")
            # Walk the serialized slots to the predicted one.
            if kmax == kmin:
                target = 0
            else:
                target = min(
                    max((key - kmin) * (num_slots - 1) // (kmax - kmin), 0),
                    num_slots - 1,
                )
            offset = 68
            for index in range(num_slots):
                tag = data[offset]
                offset += 1
                if tag == _EMPTY:
                    entry = None
                    size = 0
                elif tag == _ENTRY:
                    entry_key = int.from_bytes(data[offset : offset + 32], "big")
                    vlen = int.from_bytes(data[offset + 32 : offset + 36], "big")
                    value = data[offset + 36 : offset + 36 + vlen]
                    size = 36 + vlen
                    entry = ("e", entry_key, value)
                else:
                    entry = ("c", data[offset : offset + 32])
                    size = 32
                if index == target:
                    if entry is None:
                        return None, path_bytes
                    if entry[0] == "e":
                        return (entry[2] if entry[1] == key else None), path_bytes
                    digest = entry[1]
                    break
                offset += size
            else:
                return None, path_bytes

    # -- accounting / lifecycle --------------------------------------------------------------

    def storage_bytes(self) -> int:
        self.store.flush()  # all data must reach disk before it is counted
        return self.store.storage_bytes()

    def close(self) -> None:
        self.store.close()


def _build_node(entries: List[Tuple[int, bytes]]) -> _Node:
    """Build a fresh node over sorted or unsorted ``entries``."""
    entries = sorted(entries)
    kmin, kmax = entries[0][0], entries[-1][0]
    num_slots = max(_MIN_NODE_SLOTS, _GAP_FACTOR * len(entries))
    node = _Node(kmin, kmax, num_slots)
    for key, value in entries:
        slot_index = node.predict(key)
        slot = node.slots[slot_index]
        if slot is None:
            node.slots[slot_index] = ("e", key, value)
        elif slot[0] == "e":
            child = _build_node([(slot[1], slot[2]), (key, value)])
            node.slots[slot_index] = ("c", child)
        else:
            _insert_plain(slot[1], key, value)
    return node


def _insert_plain(node: _Node, key: int, value: bytes) -> None:
    """Insert without SMO bookkeeping (used while building fresh nodes)."""
    slot_index = node.predict(key)
    slot = node.slots[slot_index]
    if slot is None:
        node.slots[slot_index] = ("e", key, value)
    elif slot[0] == "e":
        if slot[1] == key:
            node.slots[slot_index] = ("e", key, value)
            return
        node.slots[slot_index] = ("c", _build_node([(slot[1], slot[2]), (key, value)]))
    else:
        _insert_plain(slot[1], key, value)
