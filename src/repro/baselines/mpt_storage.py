"""The MPT baseline: Ethereum-style persistent trie storage (Section 1).

Every block's updates rewrite the trie path and persist the new nodes;
the per-block root is retained so any historical state can be traversed.
Provenance queries walk *every* block in the queried range (the linear
cost Figure 14 shows), returning one Merkle path per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chain.backend import StorageBackend
from repro.common.codec import encode_u64
from repro.common.errors import StorageError, VerificationError
from repro.common.hashing import Digest, EMPTY_DIGEST
from repro.diskio.iostats import IOStats
from repro.kvstore import LSMStore
from repro.mpt import MPTrie, MPTProof, verify_mpt_proof


@dataclass(frozen=True)
class MPTProvResult:
    """Provenance answer: one (block, value, Merkle path) per block."""

    addr: bytes
    blk_low: int
    blk_high: int
    versions: List[Tuple[int, bytes]]  # (blk, value) where the value changed
    proofs: List[Tuple[int, Digest, MPTProof]]  # (blk, root at blk, path)

    def proof_size_bytes(self) -> int:
        """Total proof size (Figure 14's metric)."""
        return sum(proof.size_bytes() + 40 for _blk, _root, proof in self.proofs)


class MPTStorage(StorageBackend):
    """Blockchain state storage indexed by a persistent MPT."""

    def __init__(
        self,
        directory: str,
        stats: Optional[IOStats] = None,
        memtable_capacity: int = 4096,
        page_size: int = 4096,
    ) -> None:
        self.store = LSMStore(
            directory,
            page_size=page_size,
            memtable_capacity=memtable_capacity,
            stats=stats,
            name="mpt",
        )
        self.trie = MPTrie(self.store, persistent=True)
        self.roots: Dict[int, Optional[Digest]] = {}
        self.current_blk = 0
        self._root: Optional[Digest] = None
        self.value_bytes_written = 0  # underlying data share (§1's 2.8% claim)

    # -- block lifecycle --------------------------------------------------------

    def begin_block(self, height: int) -> None:
        if height < self.current_blk:
            raise StorageError("block heights must be non-decreasing")
        self.current_blk = height

    def commit_block(self) -> Digest:
        """Persist the block's root (one KV entry per block, as Ethereum
        stores header->root); returns the state root digest."""
        self.roots[self.current_blk] = self._root
        self.store.put(b"r" + encode_u64(self.current_blk), self._root or b"")
        return self._root if self._root is not None else EMPTY_DIGEST

    # -- state access --------------------------------------------------------------

    def put(self, addr: bytes, value: bytes) -> None:
        self._root = self.trie.put(self._root, addr, value)
        self.value_bytes_written += len(value)

    def get(self, addr: bytes) -> Optional[bytes]:
        return self.trie.get(self._root, addr)

    def get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        """Historical lookup through the persisted root of block ``blk``."""
        root = self._root_at(blk)
        return self.trie.get(root, addr)

    def _root_at(self, blk: int) -> Optional[Digest]:
        if blk in self.roots:
            return self.roots[blk]
        candidates = [b for b in self.roots if b <= blk]
        if not candidates:
            return None
        return self.roots[max(candidates)]

    # -- provenance -------------------------------------------------------------------

    def prov_query(self, addr: bytes, blk_low: int, blk_high: int) -> MPTProvResult:
        """Walk each block in the range (the paper's linear-cost behaviour)."""
        versions: List[Tuple[int, bytes]] = []
        proofs: List[Tuple[int, Digest, MPTProof]] = []
        previous: Optional[bytes] = None
        for blk in range(blk_low, blk_high + 1):
            root = self._root_at(blk)
            if root is None:
                continue
            value, proof = self.trie.get_with_proof(root, addr)
            proofs.append((blk, root, proof))
            if value is not None and value != previous:
                versions.append((blk, value))
            previous = value
        return MPTProvResult(
            addr=addr,
            blk_low=blk_low,
            blk_high=blk_high,
            versions=versions,
            proofs=proofs,
        )

    @staticmethod
    def verify_prov(result: MPTProvResult, roots: Dict[int, Optional[Digest]]) -> None:
        """Client-side check of an :class:`MPTProvResult`.

        ``roots`` maps block height to the published state root (from the
        block headers the client already holds).
        """
        recomputed: List[Tuple[int, bytes]] = []
        previous: Optional[bytes] = None
        for blk, root, proof in result.proofs:
            expected = roots.get(blk)
            if expected != root:
                raise VerificationError(f"root mismatch at block {blk}")
            value = verify_mpt_proof(proof, root)
            if value is not None and value != previous:
                recomputed.append((blk, value))
            previous = value
        if recomputed != result.versions:
            raise VerificationError("MPT provenance versions do not verify")

    # -- accounting / lifecycle ----------------------------------------------------------

    def storage_bytes(self) -> int:
        self.store.flush()  # all data must reach disk before it is counted
        return self.store.storage_bytes()

    def index_share(self) -> float:
        """Fraction of storage spent on index rather than state values."""
        total = self.trie.node_bytes_written
        if total == 0:
            return 0.0
        return 1.0 - (self.value_bytes_written / total)

    def depth(self, addr: bytes) -> int:
        """Current search-path length for ``addr`` (``d_MPT``)."""
        return self.trie.depth(self._root, addr)

    def close(self) -> None:
        self.store.close()
