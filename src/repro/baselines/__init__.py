"""The paper's comparison baselines (Section 8.1.1).

* :class:`MPTStorage` — Ethereum's persistent Merkle Patricia Trie over
  the LSM KV store (the paper's ``MPT`` baseline);
* :class:`LIPPStorage` — the state-of-the-art in-place learned index with
  node persistence (``LIPP``), demonstrating why naively persisting
  learned-index nodes explodes storage;
* :class:`CMIStorage` — the column-based Merkle index (``CMI``): a
  non-persistent upper MPT over per-address Merkle B+-trees.
"""

from repro.baselines.mpt_storage import MPTStorage
from repro.baselines.lipp import LIPPStorage
from repro.baselines.cmi import CMIStorage

__all__ = ["MPTStorage", "LIPPStorage", "CMIStorage"]
