"""The CMI baseline: Column-based Merkle Index (Section 8.1.1).

Two-level structure: the *upper* index is a non-persistent MPT mapping a
state address to the root digest of that address's *lower* index; the
lower index stores the address's historical versions contiguously in an
append-only Merkle B+-tree (after [29]) kept in the KV store.

Every state update therefore (1) appends to the lower tree, rewriting its
rightmost path and the digest spine (read + write IO), and (2) rewrites
the upper MPT path in place.  That refresh-everything behaviour is why
the paper measures CMI at 7x-22x below MPT in throughput, while its
storage stays in MPT's ballpark (no node persistence, but an extra tree
per address inside an LSM backend).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chain.backend import StorageBackend
from repro.common.codec import decode_u64, encode_u32, encode_u64
from repro.common.errors import StorageError, VerificationError
from repro.common.hashing import Digest, EMPTY_DIGEST, hash_bytes, hash_concat
from repro.diskio.iostats import IOStats
from repro.kvstore import LSMStore
from repro.mpt import MPTrie, MPTProof, verify_mpt_proof

_LEAF_CAPACITY = 16
_FANOUT = 16


@dataclass(frozen=True)
class CMIProvResult:
    """Provenance answer: versions + lower-tree proof + upper MPT path."""

    addr: bytes
    blk_low: int
    blk_high: int
    versions: List[Tuple[int, bytes]]
    leaf_blobs: List[bytes]  # serialized leaves covering the range
    sibling_digests: List[List[Digest]]  # digest spine context per level
    upper_proof: MPTProof

    def proof_size_bytes(self) -> int:
        leaves = sum(len(blob) for blob in self.leaf_blobs)
        spine = sum(32 * len(level) for level in self.sibling_digests)
        return leaves + spine + self.upper_proof.size_bytes()


class _ColumnTree:
    """In-memory skeleton of one address's lower tree.

    The authoritative bytes live in the KV store (leaves under
    ``m:<addr>:L<i>``, internal digest groups under ``m:<addr>:I<lvl>:<i>``);
    the skeleton caches per-level digest lists so appends only rewrite the
    rightmost path, exactly like an MB-tree's right spine.
    """

    __slots__ = ("entries_in_last_leaf", "num_leaves", "levels")

    def __init__(self) -> None:
        self.entries_in_last_leaf = 0
        self.num_leaves = 0
        self.levels: List[List[Digest]] = [[]]  # levels[0] = leaf digests

    def root(self) -> Digest:
        if not self.levels[-1]:
            return EMPTY_DIGEST
        top = self.levels[-1]
        if len(top) == 1:
            return top[0]
        return hash_concat(top)


class CMIStorage(StorageBackend):
    """Blockchain storage indexed by the column-based Merkle index."""

    def __init__(
        self,
        directory: str,
        stats: Optional[IOStats] = None,
        memtable_capacity: int = 4096,
        page_size: int = 4096,
    ) -> None:
        self.store = LSMStore(
            directory,
            page_size=page_size,
            memtable_capacity=memtable_capacity,
            stats=stats,
            name="cmi",
        )
        self.upper = MPTrie(self.store, persistent=False)
        self.upper_root: Optional[Digest] = None
        self.trees: Dict[bytes, _ColumnTree] = {}
        self.current_blk = 0
        self.roots: Dict[int, Digest] = {}

    # -- block lifecycle -----------------------------------------------------------

    def begin_block(self, height: int) -> None:
        if height < self.current_blk:
            raise StorageError("block heights must be non-decreasing")
        self.current_blk = height

    def commit_block(self) -> Digest:
        root = self.upper_root if self.upper_root is not None else EMPTY_DIGEST
        self.roots[self.current_blk] = root
        self.store.put(b"r" + encode_u64(self.current_blk), root)
        return root

    # -- state access -----------------------------------------------------------------

    def put(self, addr: bytes, value: bytes) -> None:
        """Append ``(current block, value)`` to the address's column."""
        tree = self.trees.setdefault(addr, _ColumnTree())
        self._append(addr, tree, self.current_blk, value)
        self.upper_root = self.upper.put(self.upper_root, addr, tree.root())

    def _append(self, addr: bytes, tree: _ColumnTree, blk: int, value: bytes) -> None:
        record = encode_u64(blk) + encode_u32(len(value)) + value
        if tree.num_leaves > 0 and tree.entries_in_last_leaf > 0:
            # Re-updating a state within the same block overwrites the
            # version rather than appending a duplicate (as in COLE's L0).
            leaf_index = tree.num_leaves - 1
            leaf_key = b"m" + addr + b":L" + encode_u32(leaf_index)
            existing = self.store.get(leaf_key) or b""
            entries = _decode_leaf(existing)
            if entries and entries[-1][0] == blk:
                blob = b"".join(
                    encode_u64(b) + encode_u32(len(v)) + v for b, v in entries[:-1]
                ) + record
                self.store.put(leaf_key, blob)
                tree.levels[0][leaf_index] = hash_bytes(blob)
                self._refresh_spine(addr, tree, leaf_index)
                return
        if tree.num_leaves == 0 or tree.entries_in_last_leaf >= _LEAF_CAPACITY:
            tree.num_leaves += 1
            tree.entries_in_last_leaf = 0
            tree.levels[0].append(EMPTY_DIGEST)
        leaf_index = tree.num_leaves - 1
        leaf_key = b"m" + addr + b":L" + encode_u32(leaf_index)
        existing = self.store.get(leaf_key) if tree.entries_in_last_leaf else None
        blob = (existing or b"") + record
        self.store.put(leaf_key, blob)
        tree.entries_in_last_leaf += 1
        tree.levels[0][leaf_index] = hash_bytes(blob)
        self._refresh_spine(addr, tree, leaf_index)

    def _refresh_spine(self, addr: bytes, tree: _ColumnTree, child_index: int) -> None:
        """Recompute digests up the right spine; write changed groups."""
        level = 0
        index = child_index
        while len(tree.levels[level]) > _FANOUT or level + 1 < len(tree.levels):
            parent_level = level + 1
            if parent_level == len(tree.levels):
                tree.levels.append([])
            parent_index = index // _FANOUT
            group = tree.levels[level][
                parent_index * _FANOUT : (parent_index + 1) * _FANOUT
            ]
            digest = hash_concat(group)
            parents = tree.levels[parent_level]
            if parent_index == len(parents):
                parents.append(digest)
            else:
                parents[parent_index] = digest
            self.store.put(
                b"m" + addr + b":I" + encode_u32(parent_level) + b":" + encode_u32(parent_index),
                b"".join(group),
            )
            level = parent_level
            index = parent_index

    def get(self, addr: bytes) -> Optional[bytes]:
        """Latest value: read the last leaf of the address's column."""
        tree = self.trees.get(addr)
        if tree is None or tree.num_leaves == 0:
            return None
        leaf_key = b"m" + addr + b":L" + encode_u32(tree.num_leaves - 1)
        blob = self.store.get(leaf_key)
        if blob is None:
            return None
        entries = _decode_leaf(blob)
        return entries[-1][1] if entries else None

    # -- provenance ----------------------------------------------------------------------

    def prov_query(self, addr: bytes, blk_low: int, blk_high: int) -> CMIProvResult:
        """Range scan of the column plus upper-MPT authentication."""
        tree = self.trees.get(addr)
        lower_root_claim, upper_proof = self.upper.get_with_proof(self.upper_root, addr)
        versions: List[Tuple[int, bytes]] = []
        leaf_blobs: List[bytes] = []
        sibling_digests: List[List[Digest]] = []
        if tree is not None:
            for leaf_index in range(tree.num_leaves):
                blob = self.store.get(b"m" + addr + b":L" + encode_u32(leaf_index))
                if blob is None:
                    continue
                entries = _decode_leaf(blob)
                if not entries or entries[-1][0] < blk_low:
                    continue
                if entries[0][0] > blk_high:
                    break
                leaf_blobs.append(blob)
                for blk, value in entries:
                    if blk_low <= blk <= blk_high:
                        versions.append((blk, value))
            sibling_digests = [list(level) for level in tree.levels]
        return CMIProvResult(
            addr=addr,
            blk_low=blk_low,
            blk_high=blk_high,
            versions=versions,
            leaf_blobs=leaf_blobs,
            sibling_digests=sibling_digests,
            upper_proof=upper_proof,
        )

    @staticmethod
    def verify_prov(result: CMIProvResult, upper_root: Optional[Digest]) -> None:
        """Check the upper MPT path and the lower digest spine."""
        lower_root = verify_mpt_proof(result.upper_proof, upper_root)
        if lower_root is None:
            if result.versions:
                raise VerificationError("versions returned for an unknown address")
            return
        if not result.sibling_digests:
            raise VerificationError("missing lower-tree digests")
        leaf_digests = result.sibling_digests[0]
        for blob in result.leaf_blobs:
            if hash_bytes(blob) not in leaf_digests:
                raise VerificationError("disclosed leaf not in the digest spine")
        levels = result.sibling_digests
        for level_index in range(len(levels) - 1):
            children, parents = levels[level_index], levels[level_index + 1]
            for parent_index, parent in enumerate(parents):
                group = children[parent_index * _FANOUT : (parent_index + 1) * _FANOUT]
                if hash_concat(group) != parent:
                    raise VerificationError("lower-tree spine digest mismatch")
        top = levels[-1]
        reconstructed = top[0] if len(top) == 1 else hash_concat(top)
        if reconstructed != lower_root:
            raise VerificationError("lower-tree root does not match the upper index")

    # -- accounting / lifecycle --------------------------------------------------------------

    def storage_bytes(self) -> int:
        self.store.flush()  # all data must reach disk before it is counted
        return self.store.storage_bytes()

    def close(self) -> None:
        self.store.close()


def _decode_leaf(blob: bytes) -> List[Tuple[int, bytes]]:
    entries: List[Tuple[int, bytes]] = []
    offset = 0
    while offset + 12 <= len(blob):
        blk = decode_u64(blob, offset)
        length = int.from_bytes(blob[offset + 8 : offset + 12], "big")
        offset += 12
        entries.append((blk, blob[offset : offset + length]))
        offset += length
    return entries
