"""Disk substrate: paged files, IO accounting, and workspaces.

The paper's evaluation is dominated by page-level IO and on-disk bytes, so
every storage engine in the reproduction sits on this substrate:

* :class:`PagedFile` — a real file accessed in fixed-size pages;
* :class:`IOStats` — counters for page reads/writes/appends per category;
* :class:`Workspace` — a directory owning the files of one storage engine,
  with byte-accurate storage-size reporting for the figures.
"""

from repro.diskio.iostats import IOStats, IOCategory
from repro.diskio.pagefile import PagedFile
from repro.diskio.workspace import Workspace

__all__ = ["IOStats", "IOCategory", "PagedFile", "Workspace"]
