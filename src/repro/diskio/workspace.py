"""Workspace: the directory owning one storage engine's files.

A workspace hands out :class:`PagedFile` handles with consistent naming
(``level-group-run.kind`` for COLE runs, arbitrary names for the KV store),
tracks them for clean shutdown, and reports the total on-disk footprint —
the storage-size series of Figures 9 and 10 is the sum of real file sizes
in a workspace plus any raw (non-paged) artifacts registered with it.
"""

from __future__ import annotations

import os
import shutil
import threading
from typing import Dict, Iterator, Optional

from repro.common.errors import StorageError
from repro.diskio.iostats import IOStats
from repro.diskio.pagefile import PagedFile


class Workspace:
    """A directory of paged files with byte-accurate size accounting."""

    def __init__(self, root: str, page_size: int, stats: Optional[IOStats] = None) -> None:
        """Create (if needed) and open the workspace rooted at ``root``."""
        self.root = root
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        os.makedirs(root, exist_ok=True)
        self._open_files: Dict[str, PagedFile] = {}
        #: name -> (category, cache_pages) the cached handle was opened
        #: with, so a later open with different arguments is detected.
        self._open_specs: Dict[str, tuple] = {}
        self._raw_bytes: Dict[str, int] = {}
        # Background merges open run files while queries run; the handle
        # table must not be mutated mid-iteration.
        self._files_lock = threading.Lock()

    # -- file management ----------------------------------------------------

    def path_of(self, name: str) -> str:
        """Absolute path of the file called ``name`` in this workspace."""
        return os.path.join(self.root, name)

    def open_file(
        self, name: str, category: str = "file", cache_pages: int = 0, create: bool = True
    ) -> PagedFile:
        """Open (or create) the paged file ``name``; handles are cached.

        A cached handle keeps the *first* opener's ``category`` and
        ``cache_pages``; a later open asking for different values would
        silently get the first configuration (mis-billed IO stats, a
        cache the caller did not size), so the mismatch raises instead.
        """
        spec = (category, cache_pages)
        with self._files_lock:
            existing = self._open_files.get(name)
            if existing is not None:
                opened_as = self._open_specs[name]
                if opened_as != spec:
                    raise StorageError(
                        f"file {name!r} is already open with "
                        f"category={opened_as[0]!r}, cache_pages={opened_as[1]} "
                        f"(asked for category={category!r}, "
                        f"cache_pages={cache_pages}); close it first or "
                        f"match the original arguments"
                    )
                return existing
            handle = PagedFile(
                self.path_of(name),
                self.page_size,
                stats=self.stats,
                category=category,
                cache_pages=cache_pages,
                create=create,
            )
            self._open_files[name] = handle
            self._open_specs[name] = spec
            return handle

    def exists(self, name: str) -> bool:
        """True if a file called ``name`` exists on disk."""
        return os.path.exists(self.path_of(name))

    def remove_file(self, name: str) -> None:
        """Close (if open) and delete the file ``name``."""
        with self._files_lock:
            handle = self._open_files.pop(name, None)
            self._open_specs.pop(name, None)
        if handle is not None:
            handle.close()
        path = self.path_of(name)
        if os.path.exists(path):
            os.remove(path)
        self._raw_bytes.pop(name, None)

    def close_file(self, name: str) -> None:
        """Close the open handle for ``name`` without deleting it."""
        with self._files_lock:
            handle = self._open_files.pop(name, None)
            self._open_specs.pop(name, None)
        if handle is not None:
            handle.close()

    def list_files(self) -> Iterator[str]:
        """Iterate over the names of all regular files present on disk.

        Subdirectories (a co-located WAL, shard workspaces) are not the
        workspace's to manage — recovery must not try to delete them.
        """
        return iter(
            sorted(
                name
                for name in os.listdir(self.root)
                if os.path.isfile(os.path.join(self.root, name))
            )
        )

    def flush_all(self) -> None:
        """Flush every open handle's buffered pages to the OS.

        After this, a filesystem-level copy of the workspace sees every
        page the engine has written (the snapshot path relies on it).
        """
        with self._files_lock:
            handles = list(self._open_files.values())
        for handle in handles:
            if not handle._closed:
                handle.flush()

    # -- raw (non-paged) artifacts -------------------------------------------

    def register_raw(self, name: str, num_bytes: int) -> None:
        """Account ``num_bytes`` for an in-memory artifact named ``name``.

        Used for structures the paper stores on disk but that the
        reproduction keeps in memory for speed (e.g. bloom filters); they
        still count toward the reported storage size.
        """
        if num_bytes < 0:
            raise StorageError("raw artifact size cannot be negative")
        self._raw_bytes[name] = num_bytes

    def unregister_raw(self, name: str) -> None:
        """Drop the raw artifact accounting entry ``name``."""
        self._raw_bytes.pop(name, None)

    # -- accounting ----------------------------------------------------------

    def storage_bytes(self) -> int:
        """Total on-disk footprint (files plus registered raw artifacts)."""
        self.flush_all()  # so getsize sees appended pages
        total = 0
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if os.path.isfile(path):
                total += os.path.getsize(path)
        return total + sum(self._raw_bytes.values())

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close all open file handles (idempotent)."""
        with self._files_lock:
            handles = list(self._open_files.values())
            self._open_files.clear()
            self._open_specs.clear()
        for handle in handles:
            handle.close()

    def destroy(self) -> None:
        """Close everything and delete the workspace directory."""
        self.close()
        shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
