"""Fixed-page files — the unit of IO for every on-disk structure.

A :class:`PagedFile` wraps a real file and exposes page-granular reads,
writes and appends.  Each access is recorded in an :class:`IOStats` so the
benchmark harness can validate the IO-cost columns of Table 1.

Sequential producers (value files, index files, Merkle files are all
written streamingly — Algorithms 3 and 4) use :meth:`append_page`; readers
use :meth:`read_page`.  A tiny optional read cache models the page cache a
real deployment would enjoy without hiding the first (cold) access.

The cache is a **segmented LRU** (probationary + protected, SLRU): a
page enters the probationary segment on fill and is promoted to the
protected segment only on a re-reference — so the hot working set, which
gets re-referenced, accumulates in the protected segment, while a large
one-pass scan streams through probation and evicts only other one-pass
pages.  Readers that *know* they are streaming (run cursors, merge
iterators) pass ``sequential=True`` to :meth:`read_page`, which
additionally suppresses promotion on re-reference: a scan revisiting a
page (two cursor seeks landing nearby) is still not evidence of
point-read hotness.  Hit/miss/promotion counts are recorded in the
:class:`IOStats` per category.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Optional

from repro.common.debuglock import maybe_debug_lock
from repro.common.errors import StorageError
from repro.diskio.iostats import IOStats


class PagedFile:
    """A real file accessed in fixed-size pages with IO accounting."""

    def __init__(
        self,
        path: str,
        page_size: int,
        stats: Optional[IOStats] = None,
        category: str = "file",
        cache_pages: int = 0,
        create: bool = True,
    ) -> None:
        """Open (or create) the paged file at ``path``.

        Args:
            path: filesystem path of the backing file.
            page_size: bytes per page; all IO happens in this unit.
            stats: counter sink; a private one is created if omitted.
            category: IOStats category these accesses are billed to.
            cache_pages: capacity of the LRU read cache (0 disables it).
            create: create the file if missing; otherwise it must exist.
        """
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.path = path
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self.category = category
        mode = "r+b" if os.path.exists(path) else ("w+b" if create else None)
        if mode is None:
            raise StorageError(f"paged file does not exist: {path}")
        # Unbuffered: writes reach the OS immediately (they are already
        # page-granular, so buffering saved no syscalls), which is what
        # lets reads use positional ``os.pread`` on the descriptor with
        # no user-space buffer to go stale behind it.
        self._file = open(path, mode, buffering=0)
        self._fd = self._file.fileno()
        self._num_pages = os.path.getsize(path) // page_size
        # Segmented LRU: fills land in probation, a (non-sequential)
        # re-reference promotes to protected.  Protected holds ~80% of
        # the budget; at tiny capacities it degrades to a plain LRU.
        self._probation: "OrderedDict[int, bytes]" = OrderedDict()
        self._protected: "OrderedDict[int, bytes]" = OrderedDict()
        self._cache_capacity = cache_pages
        self._protected_capacity = (cache_pages * 4) // 5
        self._closed = False
        # Guards cache bookkeeping and the write-side file position
        # only.  Reads are positional (pread) and lock-free past the
        # cache probe, so concurrent queries and background merges
        # sharing one handle no longer serialize on every page miss.
        self._lock = maybe_debug_lock("pagedfile-cache")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- geometry ----------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of pages currently in the file."""
        return self._num_pages

    def size_bytes(self) -> int:
        """Current file size in bytes."""
        return self._num_pages * self.page_size

    # -- IO ----------------------------------------------------------------

    def read_page(self, page_id: int, sequential: bool = False) -> bytes:
        """Return the ``page_size`` bytes of page ``page_id``.

        Cache hits are free; misses cost one page read.  The read is a
        positional ``os.pread`` on the descriptor — no seek, no shared
        file position, no lock held across the syscall — so any number
        of threads read the same handle concurrently (and the syscall
        releases the GIL).  Two threads missing the same page may both
        read it (each billed); the lock only serializing them bought
        nothing but contention.

        ``sequential=True`` marks a streaming access (cursor scans,
        merge reads): the page still fills/hits the cache, but a
        probationary hit does not promote — one scan pass must not look
        like point-read hotness to the segmented LRU.
        """
        self._check_open()
        if not 0 <= page_id < self._num_pages:
            raise StorageError(
                f"page {page_id} out of range [0, {self._num_pages}) in {self.path}"
            )
        if self._cache_capacity:
            with self._lock:
                cached = self._cache_get(page_id, sequential)
            if cached is not None:
                self.stats.record_cache_hit(self.category)
                return cached
            self.stats.record_cache_miss(self.category)
        data = os.pread(self._fd, self.page_size, page_id * self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"short read of page {page_id} in {self.path}")
        self.stats.record_read(self.category)
        if self._cache_capacity:
            with self._lock:
                # A writer (or another reader) may have filled this slot
                # while our pread ran lock-free; never clobber it — a
                # concurrent write_page's fill is fresher than our read.
                if page_id not in self._probation and page_id not in self._protected:
                    self._cache_put(page_id, data)
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Overwrite page ``page_id`` with ``data`` (must fill the page)."""
        self._check_open()
        if len(data) != self.page_size:
            raise StorageError(
                f"page write must be exactly {self.page_size} bytes, got {len(data)}"
            )
        if not 0 <= page_id < self._num_pages:
            raise StorageError(
                f"page {page_id} out of range [0, {self._num_pages}) in {self.path}"
            )
        with self._lock:
            self._write_at(page_id * self.page_size, data)
            self.stats.record_write(self.category)
            self._cache_put(page_id, bytes(data))

    def append_page(self, data: bytes) -> int:
        """Append a page (padded with zeros if short) and return its id."""
        self._check_open()
        if len(data) > self.page_size:
            raise StorageError(
                f"page append must be <= {self.page_size} bytes, got {len(data)}"
            )
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        with self._lock:
            page_id = self._num_pages
            self._write_at(page_id * self.page_size, data)
            self._num_pages += 1
            self.stats.record_write(self.category)
            self._cache_put(page_id, bytes(data))
            return page_id

    def preallocate(self, num_pages: int) -> None:
        """Extend the file with zero pages without billing write IO.

        Used by streaming writers (the Merkle file, Algorithm 4) that know
        the final size up front and then fill pages at computed offsets;
        the fills are billed, the allocation is not.
        """
        self._check_open()
        if num_pages <= self._num_pages:
            return
        self._file.truncate(num_pages * self.page_size)
        self._num_pages = num_pages

    def flush(self) -> None:
        """Flush buffered writes to the operating system."""
        self._check_open()
        self._file.flush()

    # -- internals ---------------------------------------------------------

    def _write_at(self, offset: int, data: bytes) -> None:
        """Positional write of the whole buffer (raw IO may write short)."""
        view = memoryview(data)
        while view:
            written = os.pwrite(self._fd, view, offset)
            offset += written
            view = view[written:]

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"paged file is closed: {self.path}")

    def _cache_get(self, page_id: int, sequential: bool = False) -> Optional[bytes]:
        """Segmented-LRU probe (caller holds the lock, capacity > 0)."""
        data = self._protected.get(page_id)
        if data is not None:
            self._protected.move_to_end(page_id)
            return data
        data = self._probation.get(page_id)
        if data is None:
            return None
        if sequential or self._protected_capacity == 0:
            # Streaming re-reference (or a cache too small to segment):
            # refresh recency in probation, no promotion.
            self._probation.move_to_end(page_id)
            return data
        # Second (point) hit: promote.  Protected overflow demotes its
        # coldest page back to probation MRU rather than dropping it —
        # it was hot once, give it one more chance over a never-hit fill.
        del self._probation[page_id]
        self._protected[page_id] = data
        self.stats.record_cache_promotion(self.category)
        while len(self._protected) > self._protected_capacity:
            demoted_id, demoted = self._protected.popitem(last=False)
            self._probation[demoted_id] = demoted
            self._probation.move_to_end(demoted_id)
        self._trim()
        return data

    def _cache_put(self, page_id: int, data: bytes) -> None:
        if self._cache_capacity == 0:
            return
        # Fills are always probationary: a first touch — point read,
        # scan, or write — is not yet evidence of hotness.
        self._probation[page_id] = data
        self._probation.move_to_end(page_id)
        self._trim()

    def _trim(self) -> None:
        """Enforce the total budget: evict probation first, cold-protected
        last (only reachable when protected alone exceeds the budget)."""
        while len(self._probation) + len(self._protected) > self._cache_capacity:
            if self._probation:
                self._probation.popitem(last=False)
            else:
                self._protected.popitem(last=False)
