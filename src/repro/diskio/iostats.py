"""Page-level IO accounting.

The complexity claims of Table 1 (write IO cost, get-query IO cost,
provenance IO cost) are validated empirically by counting page accesses.
Counters are grouped by a free-form category string — by convention the
file class: ``"value"``, ``"index"``, ``"merkle"``, ``"kvstore"``, ...
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

IOCategory = str


@dataclass
class IOStats:
    """Thread-safe page-access counters, grouped by category.

    The async-merge path (Algorithm 5) performs IO from background
    threads, so all mutation happens under a lock.
    """

    page_reads: Dict[IOCategory, int] = field(default_factory=lambda: defaultdict(int))
    page_writes: Dict[IOCategory, int] = field(default_factory=lambda: defaultdict(int))
    # Page-cache behaviour (segmented LRU in PagedFile): hits avoid a
    # page read entirely, promotions move a re-referenced page into the
    # protected segment.  All zero while caches are disabled (the
    # default — Table 1 IO accounting counts raw page reads only).
    cache_hits: Dict[IOCategory, int] = field(default_factory=lambda: defaultdict(int))
    cache_misses: Dict[IOCategory, int] = field(default_factory=lambda: defaultdict(int))
    cache_promotions: Dict[IOCategory, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_read(self, category: IOCategory, pages: int = 1) -> None:
        """Count ``pages`` page reads against ``category``."""
        with self._lock:
            self.page_reads[category] += pages

    def record_write(self, category: IOCategory, pages: int = 1) -> None:
        """Count ``pages`` page writes against ``category``."""
        with self._lock:
            self.page_writes[category] += pages

    def record_cache_hit(self, category: IOCategory) -> None:
        """Count one page-cache hit (a page read that never happened)."""
        with self._lock:
            self.cache_hits[category] += 1

    def record_cache_miss(self, category: IOCategory) -> None:
        """Count one page-cache miss (the read was billed separately)."""
        with self._lock:
            self.cache_misses[category] += 1

    def record_cache_promotion(self, category: IOCategory) -> None:
        """Count one probationary -> protected segment promotion."""
        with self._lock:
            self.cache_promotions[category] += 1

    def cache_summary(self) -> Dict[str, float]:
        """Totals across categories, from one locked snapshot."""
        with self._lock:
            hits = sum(self.cache_hits.values())
            misses = sum(self.cache_misses.values())
            promotions = sum(self.cache_promotions.values())
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "promotions": promotions,
            "hit_rate": hits / total if total else 0.0,
        }

    @property
    def total_reads(self) -> int:
        """Total page reads across all categories."""
        with self._lock:
            return sum(self.page_reads.values())

    @property
    def total_writes(self) -> int:
        """Total page writes across all categories."""
        with self._lock:
            return sum(self.page_writes.values())

    @property
    def total(self) -> int:
        """Total page accesses (reads + writes).

        Both sums are taken under one lock acquisition: summing reads and
        writes separately would let a recorder land between the two and
        produce a total that matches neither before nor after.
        """
        with self._lock:
            return sum(self.page_reads.values()) + sum(self.page_writes.values())

    def snapshot(self) -> "IOStats":
        """Return an independent copy (for before/after deltas)."""
        with self._lock:
            copy = IOStats()
            copy.page_reads = defaultdict(int, self.page_reads)
            copy.page_writes = defaultdict(int, self.page_writes)
            copy.cache_hits = defaultdict(int, self.cache_hits)
            copy.cache_misses = defaultdict(int, self.cache_misses)
            copy.cache_promotions = defaultdict(int, self.cache_promotions)
            return copy

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return counters accumulated since the ``earlier`` snapshot."""
        with self._lock:
            diff = IOStats()
            for cat, count in self.page_reads.items():
                diff.page_reads[cat] = count - earlier.page_reads.get(cat, 0)
            for cat, count in self.page_writes.items():
                diff.page_writes[cat] = count - earlier.page_writes.get(cat, 0)
            for cat, count in self.cache_hits.items():
                diff.cache_hits[cat] = count - earlier.cache_hits.get(cat, 0)
            for cat, count in self.cache_misses.items():
                diff.cache_misses[cat] = count - earlier.cache_misses.get(cat, 0)
            for cat, count in self.cache_promotions.items():
                diff.cache_promotions[cat] = count - earlier.cache_promotions.get(cat, 0)
            return diff

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.page_reads.clear()
            self.page_writes.clear()
            self.cache_hits.clear()
            self.cache_misses.clear()
            self.cache_promotions.clear()

    def categories(self) -> Iterator[IOCategory]:
        """Iterate over all categories seen so far."""
        with self._lock:
            seen = set(self.page_reads) | set(self.page_writes)
        return iter(sorted(seen))

    def per_category(self) -> List[Tuple[IOCategory, int, int]]:
        """``(category, reads, writes)`` rows from one locked snapshot.

        The metrics-exposition export: one consistent pass instead of a
        read-lock per category, sorted so scrapes are stable.
        """
        with self._lock:
            seen = set(self.page_reads) | set(self.page_writes)
            return [
                (cat, self.page_reads.get(cat, 0), self.page_writes.get(cat, 0))
                for cat in sorted(seen)
            ]
