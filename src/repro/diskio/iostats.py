"""Page-level IO accounting.

The complexity claims of Table 1 (write IO cost, get-query IO cost,
provenance IO cost) are validated empirically by counting page accesses.
Counters are grouped by a free-form category string — by convention the
file class: ``"value"``, ``"index"``, ``"merkle"``, ``"kvstore"``, ...
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator

IOCategory = str


@dataclass
class IOStats:
    """Thread-safe page-access counters, grouped by category.

    The async-merge path (Algorithm 5) performs IO from background
    threads, so all mutation happens under a lock.
    """

    page_reads: Dict[IOCategory, int] = field(default_factory=lambda: defaultdict(int))
    page_writes: Dict[IOCategory, int] = field(default_factory=lambda: defaultdict(int))
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_read(self, category: IOCategory, pages: int = 1) -> None:
        """Count ``pages`` page reads against ``category``."""
        with self._lock:
            self.page_reads[category] += pages

    def record_write(self, category: IOCategory, pages: int = 1) -> None:
        """Count ``pages`` page writes against ``category``."""
        with self._lock:
            self.page_writes[category] += pages

    @property
    def total_reads(self) -> int:
        """Total page reads across all categories."""
        with self._lock:
            return sum(self.page_reads.values())

    @property
    def total_writes(self) -> int:
        """Total page writes across all categories."""
        with self._lock:
            return sum(self.page_writes.values())

    @property
    def total(self) -> int:
        """Total page accesses (reads + writes).

        Both sums are taken under one lock acquisition: summing reads and
        writes separately would let a recorder land between the two and
        produce a total that matches neither before nor after.
        """
        with self._lock:
            return sum(self.page_reads.values()) + sum(self.page_writes.values())

    def snapshot(self) -> "IOStats":
        """Return an independent copy (for before/after deltas)."""
        with self._lock:
            copy = IOStats()
            copy.page_reads = defaultdict(int, self.page_reads)
            copy.page_writes = defaultdict(int, self.page_writes)
            return copy

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return counters accumulated since the ``earlier`` snapshot."""
        with self._lock:
            diff = IOStats()
            for cat, count in self.page_reads.items():
                diff.page_reads[cat] = count - earlier.page_reads.get(cat, 0)
            for cat, count in self.page_writes.items():
                diff.page_writes[cat] = count - earlier.page_writes.get(cat, 0)
            return diff

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.page_reads.clear()
            self.page_writes.clear()

    def categories(self) -> Iterator[IOCategory]:
        """Iterate over all categories seen so far."""
        with self._lock:
            seen = set(self.page_reads) | set(self.page_writes)
        return iter(sorted(seen))
