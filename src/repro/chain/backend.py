"""The storage interface every engine implements (Section 2).

``Put`` / ``Get`` / ``ProvQuery`` / per-block state roots — the contract
the blockchain layer requires from its index, shared by COLE and all
three baselines so the benchmark harness can swap engines freely.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Tuple

from repro.common.hashing import Digest


class StorageBackend(abc.ABC):
    """Abstract blockchain state storage."""

    @abc.abstractmethod
    def begin_block(self, height: int) -> None:
        """Start executing transactions of block ``height``."""

    @abc.abstractmethod
    def put(self, addr: bytes, value: bytes) -> None:
        """Write a state update in the current block."""

    def put_many(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        """Write a batch of state updates, in order, in the current block.

        Semantically identical to calling :meth:`put` per pair (the
        default does exactly that); engines override it to amortize
        per-put dispatch — COLE batches the L0 inserts, the sharded
        engine routes the whole batch in one pass.
        """
        for addr, value in items:
            self.put(addr, value)

    @abc.abstractmethod
    def get(self, addr: bytes) -> Optional[bytes]:
        """Latest value of ``addr``, or None."""

    @abc.abstractmethod
    def commit_block(self) -> Digest:
        """Finalize the current block; returns the state root digest."""

    @abc.abstractmethod
    def prov_query(self, addr: bytes, blk_low: int, blk_high: int) -> object:
        """Historical values of ``addr`` in the block range, with proof."""

    @abc.abstractmethod
    def storage_bytes(self) -> int:
        """Total storage footprint in bytes."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release resources."""
