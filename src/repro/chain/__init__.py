"""Blockchain substrate: blocks, transactions, contracts, execution.

This package replaces the paper's Rust EVM test driver: smart contracts
are Python classes that read and write ledger state through a
:class:`StorageBackend`, the executor packs transactions into blocks and
commits a state root per block — exercising whichever storage engine
(COLE or a baseline) it is given, exactly as the paper's evaluation does.
"""

from repro.chain.backend import StorageBackend
from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.chain.executor import BlockExecutor

__all__ = ["StorageBackend", "Block", "BlockHeader", "Transaction", "BlockExecutor"]
