"""Blocks and block headers (Figure 2).

A header carries the previous block hash, a timestamp, consensus payload,
the transaction MHT root ``Htx`` and the state root ``Hstate``.  The body
holds the transactions; states live in the storage engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.chain.transaction import Transaction
from repro.common.codec import encode_u64
from repro.common.hashing import Digest, hash_concat
from repro.merkle import MerkleTree


@dataclass(frozen=True)
class BlockHeader:
    """The authenticated block header."""

    height: int
    prev_hash: Digest
    timestamp: int
    consensus: bytes
    tx_root: Digest
    state_root: Digest

    def digest(self) -> Digest:
        """The block hash chained into the next header."""
        return hash_concat(
            [
                encode_u64(self.height),
                self.prev_hash,
                encode_u64(self.timestamp),
                self.consensus,
                self.tx_root,
                self.state_root,
            ]
        )


@dataclass(frozen=True)
class Block:
    """Header plus transaction body."""

    header: BlockHeader
    transactions: List[Transaction] = field(default_factory=list)

    @staticmethod
    def build(
        height: int,
        prev_hash: Digest,
        transactions: List[Transaction],
        state_root: Digest,
        timestamp: int = 0,
        consensus: bytes = b"",
    ) -> "Block":
        """Assemble a block, computing ``Htx`` from the transactions."""
        tx_tree = MerkleTree([tx.to_bytes() for tx in transactions], fanout=2)
        header = BlockHeader(
            height=height,
            prev_hash=prev_hash,
            timestamp=timestamp,
            consensus=consensus,
            tx_root=tx_tree.root,
            state_root=state_root,
        )
        return Block(header=header, transactions=list(transactions))
