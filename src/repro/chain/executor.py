"""Block executor: packs transactions into blocks and drives a backend.

The reproduction's stand-in for the paper's EVM harness (Section 8.1.2:
transactions are packed into blocks, each block carrying a fixed number
of transactions).  Per-transaction wall-clock latencies are recorded for
the throughput / tail-latency figures, and the executed transactions form
the write-ahead log used by recovery tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.chain.block import Block
from repro.chain.contracts import (
    Contract,
    ExecutionContext,
    KVStoreContract,
    SmallBankContract,
)
from repro.chain.transaction import Transaction
from repro.common.errors import StorageError
from repro.common.hashing import Digest, EMPTY_DIGEST


@dataclass
class ExecutionMetrics:
    """What one execution run measured."""

    transactions: int = 0
    blocks: int = 0
    elapsed_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)  # per-tx seconds

    @property
    def throughput_tps(self) -> float:
        """Average transactions per second."""
        if self.elapsed_seconds == 0:
            return 0.0
        return self.transactions / self.elapsed_seconds

    def latency_percentile(self, fraction: float) -> float:
        """Latency at ``fraction`` (0..1), in seconds."""
        # Deferred import: repro.bench's package init imports this module.
        from repro.bench.report import percentile

        return percentile(self.latencies, fraction)

    @property
    def tail_latency(self) -> float:
        """Maximum per-transaction latency (the box plots' top outlier)."""
        return max(self.latencies) if self.latencies else 0.0

    @property
    def median_latency(self) -> float:
        """Median per-transaction latency."""
        return self.latency_percentile(0.5)


class _TxWriteBatch:
    """One transaction's write set, flushed with a single ``put_many``.

    Contracts run against this thin proxy: reads check the buffered
    writes first (read-your-own-writes within the transaction), then fall
    through to the backend; writes accumulate and are handed to the
    backend in order at the end of the transaction.  Because engines give
    duplicate ``<addr, blk>`` writes last-wins semantics, the flushed
    batch is byte-equivalent to the unbatched put sequence.
    """

    __slots__ = ("backend", "writes")

    def __init__(self, backend) -> None:
        self.backend = backend
        self.writes: List[tuple] = []

    def get(self, addr: bytes):
        for buffered_addr, value in reversed(self.writes):
            if buffered_addr == addr:
                return value
        return self.backend.get(addr)

    def put(self, addr: bytes, value: bytes) -> None:
        self.writes.append((addr, value))

    def put_many(self, items) -> None:
        self.writes.extend(items)

    def __getattr__(self, name):  # prov_query, get_at, ... pass through
        return getattr(self.backend, name)


class BlockExecutor:
    """Executes a transaction stream against one storage backend."""

    def __init__(
        self,
        backend,
        context: Optional[ExecutionContext] = None,
        txs_per_block: int = 100,
        record_latencies: bool = True,
        batch_writes: bool = True,
    ) -> None:
        """Wrap ``backend`` (anything with the StorageBackend interface).

        ``txs_per_block`` defaults to the paper's 100 transactions/block.
        With ``batch_writes`` (the default) each transaction's writes are
        collected and issued as one ``put_many`` batch.
        """
        self.backend = backend
        self.context = context if context is not None else ExecutionContext()
        self.txs_per_block = txs_per_block
        self.record_latencies = record_latencies
        self.batch_writes = batch_writes
        self.contracts: Dict[str, Contract] = {}
        for contract in (SmallBankContract(self.context), KVStoreContract(self.context)):
            self.contracts[contract.name] = contract
        self.height = 0
        self.prev_hash: Digest = EMPTY_DIGEST
        self.blocks: List[Block] = []
        self.tx_log: List[Transaction] = []  # the WAL (Section 4.3)
        self.keep_blocks = False

    def register(self, contract: Contract) -> None:
        """Add a custom contract."""
        self.contracts[contract.name] = contract

    def execute_transaction(self, tx: Transaction) -> object:
        """Dispatch one transaction to its contract."""
        contract = self.contracts.get(tx.contract)
        if contract is None:
            raise StorageError(f"unknown contract {tx.contract!r}")
        if not self.batch_writes:
            return contract.execute(self.backend, tx.op, tx.args)
        batch = _TxWriteBatch(self.backend)
        result = contract.execute(batch, tx.op, tx.args)
        if batch.writes:
            self.backend.put_many(batch.writes)
        return result

    def run(self, transactions: Iterable[Transaction]) -> ExecutionMetrics:
        """Pack ``transactions`` into blocks and execute them all."""
        metrics = ExecutionMetrics()
        started = time.perf_counter()
        batch: List[Transaction] = []
        for tx in transactions:
            batch.append(tx)
            if len(batch) == self.txs_per_block:
                self._execute_block(batch, metrics)
                batch = []
        if batch:
            self._execute_block(batch, metrics)
        metrics.elapsed_seconds = time.perf_counter() - started
        return metrics

    def _execute_block(self, batch: List[Transaction], metrics: ExecutionMetrics) -> None:
        self.height += 1
        self.backend.begin_block(self.height)
        for index, tx in enumerate(batch):
            if self.record_latencies:
                tick = time.perf_counter()
                self.execute_transaction(tx)
                latency = time.perf_counter() - tick
                if index == len(batch) - 1:
                    # The block boundary work (flush/merge checkpoints)
                    # lands on the block's final transaction, as a write
                    # triggering a merge would in the paper's engine.
                    tick = time.perf_counter()
                    state_root = self.backend.commit_block()
                    latency += time.perf_counter() - tick
                metrics.latencies.append(latency)
            else:
                self.execute_transaction(tx)
                if index == len(batch) - 1:
                    state_root = self.backend.commit_block()
            metrics.transactions += 1
        metrics.blocks += 1
        self.tx_log.extend(batch)
        if self.keep_blocks:
            block = Block.build(self.height, self.prev_hash, batch, state_root)
            self.prev_hash = block.header.digest()
            self.blocks.append(block)
