"""The SmallBank contract (Blockbench [17]): simulated account transfers.

Each customer holds a *savings* and a *checking* account, each a ledger
state.  The six classic operations are implemented with the standard
read/write patterns, so a SmallBank transaction issues 1-4 state accesses
against the storage engine.
"""

from __future__ import annotations

from repro.chain.contracts.base import Contract


class SmallBankContract(Contract):
    """Operations: amalgamate, get_balance, update_balance (deposit
    checking), update_saving, send_payment, write_check."""

    name = "smallbank"

    def savings_addr(self, customer: str) -> bytes:
        """State address of a customer's savings account."""
        return self.context.address(f"sb:s:{customer}")

    def checking_addr(self, customer: str) -> bytes:
        """State address of a customer's checking account."""
        return self.context.address(f"sb:c:{customer}")

    def execute(self, backend, op: str, args: tuple) -> object:
        context = self.context
        if op == "get_balance":
            (customer,) = args
            savings = context.decode_int(backend.get(self.savings_addr(customer)))
            checking = context.decode_int(backend.get(self.checking_addr(customer)))
            return savings + checking
        if op == "update_balance":  # deposit to checking
            customer, amount = args
            addr = self.checking_addr(customer)
            balance = context.decode_int(backend.get(addr))
            backend.put(addr, context.encode_int(balance + amount))
            return balance + amount
        if op == "update_saving":
            customer, amount = args
            addr = self.savings_addr(customer)
            balance = context.decode_int(backend.get(addr))
            backend.put(addr, context.encode_int(balance + amount))
            return balance + amount
        if op == "send_payment":
            sender, receiver, amount = args
            src = self.checking_addr(sender)
            dst = self.checking_addr(receiver)
            src_balance = context.decode_int(backend.get(src))
            dst_balance = context.decode_int(backend.get(dst))
            backend.put(src, context.encode_int(src_balance - amount))
            backend.put(dst, context.encode_int(dst_balance + amount))
            return src_balance - amount
        if op == "write_check":
            customer, amount = args
            addr = self.checking_addr(customer)
            balance = context.decode_int(backend.get(addr))
            backend.put(addr, context.encode_int(balance - amount))
            return balance - amount
        if op == "amalgamate":
            customer, target = args
            savings_addr = self.savings_addr(customer)
            checking_addr = self.checking_addr(customer)
            target_addr = self.checking_addr(target)
            total = (
                self.context.decode_int(backend.get(savings_addr))
                + self.context.decode_int(backend.get(checking_addr))
            )
            target_balance = self.context.decode_int(backend.get(target_addr))
            backend.put(savings_addr, context.encode_int(0))
            backend.put(checking_addr, context.encode_int(0))
            backend.put(target_addr, context.encode_int(target_balance + total))
            return target_balance + total
        if op == "create_account":
            customer, savings, checking = args
            backend.put(self.savings_addr(customer), context.encode_int(savings))
            backend.put(self.checking_addr(customer), context.encode_int(checking))
            return None
        raise self._unknown_op(op)
