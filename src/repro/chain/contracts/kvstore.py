"""The KVStore contract (Blockbench [17] driven by YCSB [9]).

A thin get/put contract: the YCSB workload generator supplies string keys
and payloads; the contract maps them to fixed-width state addresses and
values.
"""

from __future__ import annotations

from repro.chain.contracts.base import Contract


class KVStoreContract(Contract):
    """Operations: ``read`` and ``write``."""

    name = "kvstore"

    def key_addr(self, key: str) -> bytes:
        """State address of a YCSB key."""
        return self.context.address(f"kv:{key}")

    def execute(self, backend, op: str, args: tuple) -> object:
        if op == "read":
            (key,) = args
            return backend.get(self.key_addr(key))
        if op == "write":
            key, payload = args
            data = payload.encode() if isinstance(payload, str) else payload
            backend.put(self.key_addr(key), self.context.encode_blob(data))
            return None
        raise self._unknown_op(op)
