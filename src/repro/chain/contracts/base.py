"""Contract plumbing: fixed-width state addresses and values.

COLE stores fixed-size addresses and values (Section 2, as in Ethereum);
the execution context derives a deterministic ``addr_size``-byte address
for any label and pads/encodes values to ``value_size`` bytes, so every
engine sees byte-identical state accesses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import StorageError
from repro.common.hashing import hash_bytes


@dataclass(frozen=True)
class ExecutionContext:
    """Address/value geometry shared by all contracts in a chain."""

    addr_size: int = 32
    value_size: int = 40

    def address(self, label: str) -> bytes:
        """Deterministic state address for a human-readable label."""
        return hash_bytes(label.encode())[: self.addr_size]

    def encode_int(self, number: int) -> bytes:
        """Encode an integer state value (balances) at full width."""
        if number < 0:
            number += 1 << (8 * self.value_size)  # two's complement
        return number.to_bytes(self.value_size, "big")

    def decode_int(self, value: Optional[bytes]) -> int:
        """Inverse of :meth:`encode_int`; missing state decodes to 0."""
        if value is None:
            return 0
        number = int.from_bytes(value, "big")
        half = 1 << (8 * self.value_size - 1)
        if number >= half:
            number -= 1 << (8 * self.value_size)
        return number

    def encode_blob(self, data: bytes) -> bytes:
        """Pad or truncate an arbitrary payload to the value width."""
        if len(data) > self.value_size:
            return data[: self.value_size]
        return data + b"\x00" * (self.value_size - len(data))


class Contract(abc.ABC):
    """A transaction program operating on backend state."""

    name: str = "contract"

    def __init__(self, context: ExecutionContext) -> None:
        self.context = context

    @abc.abstractmethod
    def execute(self, backend, op: str, args: tuple) -> object:
        """Run one operation against ``backend`` (Put/Get interface)."""

    def _unknown_op(self, op: str) -> StorageError:
        return StorageError(f"{self.name}: unknown operation {op!r}")
