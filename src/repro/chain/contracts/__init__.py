"""Smart contracts: the transaction programs of the evaluation workloads.

The paper runs SmallBank and KVStore (YCSB) from Blockbench [17] on a
Rust EVM; here each contract is a Python class issuing the identical
state accesses through the backend's Put/Get interface — the access
pattern, not the bytecode interpreter, is what exercises the storage
engines under test.
"""

from repro.chain.contracts.base import Contract, ExecutionContext
from repro.chain.contracts.smallbank import SmallBankContract
from repro.chain.contracts.kvstore import KVStoreContract

__all__ = ["Contract", "ExecutionContext", "SmallBankContract", "KVStoreContract"]
