"""Transactions: contract invocations recorded in blocks (Section 2).

A transaction names a contract, an operation and its arguments; its
serialization feeds the block's transaction MHT (``Htx``) and doubles as
the write-ahead log used for crash recovery (Section 4.3: "COLE uses
transaction logs as the Write Ahead Log").
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Tuple

from repro.common.hashing import Digest, hash_bytes


@dataclass(frozen=True)
class Transaction:
    """One contract invocation."""

    contract: str
    op: str
    args: Tuple

    def to_bytes(self) -> bytes:
        """Canonical serialization (hashing and the WAL)."""
        return json.dumps(
            {"c": self.contract, "o": self.op, "a": list(self.args)},
            separators=(",", ":"),
            sort_keys=True,
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Transaction":
        payload = json.loads(data.decode())
        return cls(contract=payload["c"], op=payload["o"], args=tuple(payload["a"]))

    def digest(self) -> Digest:
        """Transaction hash (a leaf of the block's tx MHT)."""
        return hash_bytes(self.to_bytes())
