"""Bloom filters for skipping runs during reads (Section 4).

COLE attaches a bloom filter over *addresses* (not compound keys) to the
in-memory level and to every on-disk run.  Because the filters take part in
result verification (a negative-run proof carries the bloom), they expose a
stable serialization and a digest that is folded into the state root.
"""

from repro.bloomfilter.filter import BloomFilter

__all__ = ["BloomFilter"]
