"""A classic double-hashing bloom filter.

Double hashing (Kirsch & Mitzenmacher) derives the k probe positions from
two independent halves of a single SHA-256 digest, so membership is
deterministic across processes — required because blockchain nodes must
agree on the filter bytes that are hashed into the state root.
"""

from __future__ import annotations

import hashlib
import math

from repro.common.codec import decode_u32, encode_u32
from repro.common.errors import StorageError
from repro.common.hashing import Digest, hash_bytes


class BloomFilter:
    """Fixed-size bloom filter over byte-string items (state addresses)."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        """Create an empty filter with ``num_bits`` bits and ``num_hashes`` probes."""
        if num_bits < 8:
            num_bits = 8
        if num_hashes < 1:
            raise StorageError("bloom filter needs at least one hash function")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._count = 0
        self._cached_digest: Digest | None = None

    @classmethod
    def for_capacity(cls, capacity: int, bits_per_key: int, num_hashes: int) -> "BloomFilter":
        """Size a filter for ``capacity`` expected keys at ``bits_per_key``."""
        return cls(max(8, capacity * bits_per_key), num_hashes)

    # -- membership ----------------------------------------------------------

    def add(self, item: bytes) -> None:
        """Insert ``item`` into the filter."""
        for position in self._positions(item):
            self._bits[position >> 3] |= 1 << (position & 7)
        self._count += 1
        self._cached_digest = None

    def __contains__(self, item: bytes) -> bool:
        return all(
            self._bits[position >> 3] & (1 << (position & 7))
            for position in self._positions(item)
        )

    def may_contain(self, item: bytes) -> bool:
        """True if ``item`` may be present (false positives possible)."""
        return item in self

    def _positions(self, item: bytes) -> list[int]:
        digest = hashlib.sha256(item).digest()
        h1 = int.from_bytes(digest[:16], "big")
        h2 = int.from_bytes(digest[16:], "big") | 1  # odd => full cycle
        return [(h1 + i * h2) % self.num_bits for i in range(self.num_hashes)]

    # -- statistics ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of ``add`` calls so far."""
        return self._count

    def false_positive_rate(self) -> float:
        """Theoretical false-positive probability at the current load."""
        if self._count == 0:
            return 0.0
        k, n, m = self.num_hashes, self._count, self.num_bits
        return (1.0 - math.exp(-k * n / m)) ** k

    # -- serialization (part of provenance proofs) ----------------------------

    def to_bytes(self) -> bytes:
        """Serialize to a stable byte string (used in proofs and digests)."""
        header = encode_u32(self.num_bits) + encode_u32(self.num_hashes) + encode_u32(self._count)
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        """Reconstruct a filter serialized by :meth:`to_bytes`."""
        if len(data) < 12:
            raise StorageError("truncated bloom filter")
        num_bits = decode_u32(data, 0)
        num_hashes = decode_u32(data, 4)
        count = decode_u32(data, 8)
        bloom = cls(num_bits, num_hashes)
        payload = data[12:]
        if len(payload) != len(bloom._bits):
            raise StorageError("bloom filter payload size mismatch")
        bloom._bits = bytearray(payload)
        bloom._count = count
        return bloom

    def digest(self) -> Digest:
        """Digest of the serialized filter (folded into the state root, §4).

        Cached between mutations: runs are immutable once built, and the
        digest is recomputed into ``Hstate`` at every block commit.
        """
        if self._cached_digest is None:
            self._cached_digest = hash_bytes(self.to_bytes())
        return self._cached_digest

    def size_bytes(self) -> int:
        """Serialized size in bytes (counted in storage accounting)."""
        return 12 + len(self._bits)
