"""Primary-side WAL shipping: the replication hub.

One :class:`ReplicationHub` lives on a WAL-enabled primary server.  It
has two sources of truth and one consumer-facing shape:

* **Live feed** — after every group commit whose records are durable
  (the batcher fsyncs the WAL up to the COMMIT marker before publishing,
  so a replica can never hold a write the crashed primary would fail to
  recover), :meth:`publish` re-encodes the batch as WAL records — one
  PUTS record plus one COMMIT record — and pushes them to every
  subscriber queue.
* **Catch-up** — a fresh subscriber first receives the heights it missed,
  read straight from the primary's on-disk WAL (:meth:`catchup` groups
  the surviving PUTS records by height and pairs them with their COMMIT
  roots).  Registration happens *before* the scan, so a commit landing
  mid-scan is seen at least once — by the scan, the queue, or both; the
  consumer deduplicates by height, which is safe because heights only
  ever carry one batch.

**Availability floor**: WAL truncation deletes segments covered by the
per-shard engine checkpoints, so heights at or below
``max(shard_checkpoints)`` are only guaranteed to exist in committed
runs, not in the WAL.  A subscriber whose start height is below that
floor is refused with :class:`SnapshotRequiredError` — it must bootstrap
from a newer snapshot instead (heights *above* the floor are always
fully present: a segment holding any record above a shard's checkpoint
is never truncated).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Set, Tuple

from repro.common.errors import StorageError
from repro.wal.record import RecordType, encode_commit, encode_puts

#: One catch-up unit: ``(height, [raw WAL record bytes, ...])``.
Batch = Tuple[int, List[bytes]]


class SnapshotRequiredError(StorageError):
    """The subscriber is behind the WAL's availability floor."""

    def __init__(self, start_height: int, floor: int) -> None:
        super().__init__(
            f"replication history for heights ({start_height}, {floor}] may "
            f"be truncated; bootstrap the replica from a snapshot at height "
            f">= {floor}"
        )
        self.floor = floor


def encode_batch(height: int, items: List[Tuple[bytes, bytes]], root: bytes) -> List[bytes]:
    """One committed batch as raw WAL records: PUTS (if any) then COMMIT."""
    records: List[bytes] = []
    if items:
        records.append(encode_puts(height, items))
    records.append(encode_commit(height, bytes(root)))
    return records


class ReplicationHub:
    """Fan committed, durable batches out to replica subscriber queues.

    Event-loop confined on the publish/register side (the batcher's
    flush and the server's connection handlers both run on the server
    loop); :meth:`catchup` reads segment files and is meant to run on
    the server's thread pool.

    **Slow subscribers are evicted, not buffered forever**: a stream
    whose consumer stalls (blackholed connection, SIGSTOPped replica)
    stops draining its queue while every group commit keeps feeding it —
    an unbounded queue would grow primary memory without limit.  Past
    ``max_queue_batches`` the hub drops the queue and terminates its
    stream with the end sentinel; the replica reconnects and catches up
    from the WAL, which is the real retention buffer.
    """

    def __init__(self, engine, wal, max_queue_batches: int = 1024) -> None:
        self.engine = engine
        self.wal = wal
        self.max_queue_batches = max_queue_batches
        self._queues: Set[asyncio.Queue] = set()
        self._closed = False
        #: Catch-up scans currently reading segment files.  While any is
        #: active the batcher defers WAL truncation: a delete landing
        #: mid-scan could silently remove heights the subscriber was
        #: promised (its start passed the floor check against the
        #: pre-truncation checkpoints).  Mutated on the event loop only.
        self.catchups_active = 0
        # Accounting (the STATS "replication" section).
        self.subscribers_total = 0
        self.subscribers_evicted = 0
        self.batches_published = 0
        self.records_shipped = 0

    # -- subscriber registry --------------------------------------------------

    @property
    def subscribers(self) -> int:
        return len(self._queues)

    def register(self) -> asyncio.Queue:
        """Add a subscriber; live batches start queueing immediately."""
        if self._closed:
            raise StorageError("replication hub is closed")
        queue: asyncio.Queue = asyncio.Queue()
        self._queues.add(queue)
        self.subscribers_total += 1
        return queue

    def unregister(self, queue: asyncio.Queue) -> None:
        self._queues.discard(queue)

    def close(self) -> None:
        """Wake every stream with the end-of-stream sentinel (``None``)."""
        self._closed = True
        for queue in self._queues:
            queue.put_nowait(None)

    # -- the live feed --------------------------------------------------------

    def publish(
        self, height: int, items: List[Tuple[bytes, bytes]], root: bytes
    ) -> None:
        """Queue one durably-logged commit for every live subscriber.

        Subscribers whose queue has backed up past ``max_queue_batches``
        are evicted (end sentinel, then dropped) instead of buffering
        the store's entire recent write volume in primary memory.
        """
        if not self._queues:
            return
        batch: Batch = (height, encode_batch(height, items, root))
        evicted = []
        for queue in self._queues:
            if queue.qsize() >= self.max_queue_batches:
                evicted.append(queue)
                continue
            queue.put_nowait(batch)
        for queue in evicted:
            self._queues.discard(queue)
            queue.put_nowait(None)  # ends the stream once it ever drains
            self.subscribers_evicted += 1
        self.batches_published += 1

    # -- catch-up -------------------------------------------------------------

    def availability_floor(self) -> int:
        """Lowest start height the WAL can still serve completely."""
        return max(self.engine.shard_checkpoints())

    def check_start(self, start_height: int) -> None:
        """Refuse subscribers the WAL may no longer cover."""
        floor = self.availability_floor()
        if start_height < floor:
            raise SnapshotRequiredError(start_height, floor)

    def catchup(self, start_height: int, upto_height: int) -> List[Batch]:
        """Committed heights in ``(start_height, upto_height]`` from the
        on-disk WAL.

        ``upto_height`` must be the primary's committed height captured
        in the same event-loop step as the queue registration.  The cap
        is load-bearing on multi-shard primaries: the scan reads one
        shard chain at a time without the append lock, so a commit
        landing mid-scan can leave its COMMIT marker visible (markers go
        to *every* chain) while its PUTS records in an already-read
        chain are missed — shipping a partial batch the dedupe-by-height
        would then prefer over the complete live-feed copy.  Heights at
        or below the cap were fully on disk before the scan started
        (``flush`` appends the marker in the same loop step that
        advances ``last_height``); heights above it commit after
        registration and arrive complete via the queue.  Runs file IO;
        call it on a worker thread.
        """
        puts_by_height: Dict[int, List[Tuple[bytes, bytes]]] = {}
        roots: Dict[int, bytes] = {}
        for records in self.wal.scan():
            for record in records:
                if not start_height < record.height <= upto_height:
                    continue
                if record.type == RecordType.PUTS:
                    puts_by_height.setdefault(record.height, []).extend(record.items)
                elif record.type == RecordType.COMMIT:
                    roots[record.height] = record.root
        return [
            (height, encode_batch(height, puts_by_height.get(height, []), root))
            for height, root in sorted(roots.items())
        ]
