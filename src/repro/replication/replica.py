"""Replica-side stream tailing: subscribe, apply, verify, reconnect.

One :class:`ReplicaApplier` runs as a task on the replica server's event
loop.  It connects to the primary, subscribes with the replica's applied
height, and applies each streamed batch through the engine's ordinary
block lifecycle on the server's thread pool — exactly the path a primary
commit takes, which is what makes the streamed COMMIT root a
byte-identical oracle: COLE's commit checkpoints are deterministic in
the batches and heights alone, so any divergence is corruption, not
timing.

Failure handling:

* **Connection loss / primary down** — retry forever with a fixed delay,
  re-subscribing from the current applied height.  A primary that was
  ``kill -9``-ed comes back (its own WAL recovery re-marks the replayed
  commits), and the replica resumes where it left off.
* **Root divergence** — fatal.  The replica's engine has committed a
  block whose root disagrees with the primary's; no amount of retrying
  un-commits it.  The applier freezes *before* advancing any
  bookkeeping: the divergent block is never reported as applied (ROOT
  and STATS keep naming the last verified commit, the cache epoch does
  not bump), the error is recorded, and STATS flags ``diverged`` until
  an operator re-bootstraps.
* **Duplicate heights** (catch-up/live overlap, primary re-marking after
  recovery) — skipped by height, with the recorded root cross-checked
  against the replica's own when the heights coincide.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from repro.common.errors import StorageError
from repro.server import protocol
from repro.wal.record import scan_records


class ReplicaApplier:
    """Tail one primary's replication stream into the local engine."""

    def __init__(
        self,
        server,
        primary_host: str,
        primary_port: int,
        retry_delay: float = 0.5,
        wal=None,
    ) -> None:
        """``server`` is the replica-mode :class:`~repro.server.ColeServer`
        that owns the engine, the thread pool, and the read-cache epoch
        this applier advances on every applied commit.

        ``wal`` (optional, cluster migration only) is a *local*
        :class:`~repro.wal.WriteAheadLog` every applied batch is mirrored
        into — PUTS before the apply, COMMIT after the root verifies —
        so a catch-up replica about to be promoted to primary can
        recover from its own disk through the ordinary ``replay_wal``
        path (idempotent: replay skips heights the engine already has).
        """
        self.server = server
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.retry_delay = retry_delay
        self.wal = wal
        engine = server.engine
        #: Height of the last block applied to the local engine.
        self.applied_height = max(engine.current_blk, engine.checkpoint_blk)
        #: Root of the last applied block (None until the first apply).
        self.last_root: Optional[bytes] = None
        #: Highest primary height this replica has heard of (handshake +
        #: stream); ``- applied_height`` is the lag in blocks.
        self.primary_height = self.applied_height
        self.connected = False
        self.diverged = False
        self.last_error: Optional[str] = None
        # Accounting (the STATS "replication" section).
        self.records_received = 0
        self.batches_applied = 0
        self.subscribes = 0

    @property
    def primary_addr(self) -> str:
        return f"{self.primary_host}:{self.primary_port}"

    @property
    def lag_blocks(self) -> int:
        return max(0, self.primary_height - self.applied_height)

    def stats(self) -> dict:
        return {
            "role": "replica",
            "primary": self.primary_addr,
            "connected": self.connected,
            "diverged": self.diverged,
            "applied_height": self.applied_height,
            "primary_height": self.primary_height,
            "lag_blocks": self.lag_blocks,
            "stream_offset": self.records_received,
            "batches_applied": self.batches_applied,
            "subscribes": self.subscribes,
            "last_error": self.last_error,
        }

    # -- the tailing loop -----------------------------------------------------

    async def run(self) -> None:
        """Stream until cancelled (or diverged); reconnect on any failure."""
        while not self.diverged:
            try:
                await self._stream_once()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — record, retry
                self.last_error = f"{type(exc).__name__}: {exc}"
            finally:
                self.connected = False
            if self.diverged:
                return
            await asyncio.sleep(self.retry_delay)

    async def _stream_once(self) -> None:
        reader, writer = await asyncio.open_connection(
            self.primary_host, self.primary_port
        )
        try:
            self.subscribes += 1
            writer.write(protocol.encode_repl_subscribe(self.applied_height))
            await writer.drain()
            body = await protocol.read_frame(reader)
            if body is None:
                raise StorageError("primary closed during the subscribe handshake")
            # Raises on ERROR (e.g. snapshot-required) and NOT_PRIMARY.
            self.primary_height = max(
                self.primary_height, protocol.decode_repl_handshake(body)
            )
            self.connected = True
            self.last_error = None
            pending: Dict[int, List[Tuple[bytes, bytes]]] = {}
            while True:
                body = await protocol.read_frame(reader)
                if body is None:
                    raise StorageError("replication stream closed by the primary")
                record = self._decode(protocol.decode_repl_record(body))
                self.records_received += 1
                await self._consume(record, pending)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    def _decode(record_bytes: bytes):
        result = scan_records(record_bytes)
        if result.torn or len(result.records) != 1:
            raise StorageError(
                f"malformed replication frame: {result.anomaly or 'record count'}"
            )
        return result.records[0]

    async def _consume(self, record, pending) -> None:
        from repro.wal.record import RecordType

        if record.type == RecordType.PUTS:
            if record.height > self.applied_height:
                pending.setdefault(record.height, []).extend(record.items)
            return
        if record.type != RecordType.COMMIT:
            raise StorageError(f"unexpected record type {record.type} in stream")
        self.primary_height = max(self.primary_height, record.height)
        if record.height <= self.applied_height:
            pending.pop(record.height, None)
            # A duplicate of the block we just applied doubles as a
            # cross-check — a primary that recovered to *different*
            # contents at this height must not go unnoticed.
            if (
                record.height == self.applied_height
                and self.last_root is not None
                and bytes(record.root) != self.last_root
            ):
                self._fail_diverged(record.height, record.root, self.last_root)
            return
        items = pending.pop(record.height, [])
        if self.wal is not None and items:
            # Mirror before applying: a crash between the append and the
            # apply leaves an uncommitted tail that recovery replays
            # into the engine — never an applied block the WAL missed.
            # (Executor hop: the append is a write syscall, and the
            # applier shares the loop with the replica's read traffic.)
            await self.server._run(self.wal.append_puts, items, record.height)
        apply_started = time.perf_counter()
        root = await self.server._run(self._apply, record.height, items)
        metrics = getattr(self.server, "metrics", None)
        if metrics is not None:
            metrics.histogram(
                "repro_replica_apply_seconds",
                help="Primary batch apply latency on the replica",
            ).observe(time.perf_counter() - apply_started)
        if bytes(record.root) != bytes(root):
            # Verify before any bookkeeping advances: a diverged block
            # must not become the reported applied height/root or bump
            # the cache epoch — ROOT and STATS keep naming the last
            # *verified* commit while the applier freezes.
            self._fail_diverged(record.height, record.root, root)
        if self.wal is not None:
            await self.server._run(self.wal.append_commit, record.height, bytes(root))
        self.applied_height = record.height
        self.last_root = bytes(root)
        self.batches_applied += 1
        self.server._replica_committed(record.height, root)

    def _apply(self, height: int, items) -> bytes:
        engine = self.server.engine
        engine.begin_block(height)
        if items:
            engine.put_many(items)
        return engine.commit_block()

    def _fail_diverged(self, height: int, primary_root, local_root) -> None:
        self.diverged = True
        self.last_error = (
            f"state divergence at height {height}: primary root "
            f"{bytes(primary_root).hex()[:16]} != local root "
            f"{bytes(local_root).hex()[:16]}"
        )
        raise StorageError(self.last_error)
