"""Read-scaling replication: WAL shipping from a primary to live replicas.

COLE's commit checkpoints are deterministic — two engines that commit the
same ``(addr, value)`` batches at the same block heights reach the same
``Hstate`` byte for byte, regardless of merge timing.  That property
makes physical replication self-verifying: the primary ships its WAL
records (PUTS batches plus the COMMIT marker carrying the primary's
root), the replica applies them through the ordinary
``begin_block`` / ``put_many`` / ``commit_block`` path, and equality of
the two roots at every height *is* the correctness oracle.

* :class:`ReplicationHub` — primary side: fans sealed-and-fsynced WAL
  records out to subscriber queues, serves catch-up from the on-disk WAL.
* :class:`ReplicaApplier` — replica side: tails the primary's stream,
  applies and verifies each commit, reconnects forever on failure.

See DESIGN.md ("Replication") for the stream protocol, the bootstrap
story, and the lag semantics.
"""

from repro.replication.hub import ReplicationHub, SnapshotRequiredError
from repro.replication.replica import ReplicaApplier

__all__ = ["ReplicationHub", "ReplicaApplier", "SnapshotRequiredError"]
