"""m-ary complete Merkle hash tree over a static list of items.

Matches Definition 2 of the paper: bottom-layer hashes are ``h(item)``;
an upper-layer hash is ``h(h1 || ... || hm*)`` over up to ``m`` children,
where only the last node of a layer may have fewer than ``m`` children.
The binary case (m=2) reproduces the classic MHT of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import VerificationError
from repro.common.hashing import Digest, EMPTY_DIGEST, hash_bytes, hash_concat


@dataclass(frozen=True)
class MerkleProof:
    """Membership proof for one leaf.

    ``layers[i]`` holds the sibling digests of the node on the search path
    at layer ``i`` (bottom first), and ``positions[i]`` the node's index
    within its group of siblings, so the verifier can splice the recomputed
    digest into the right slot.
    """

    leaf_index: int
    layers: List[List[Digest]]
    positions: List[int]

    def size_bytes(self) -> int:
        """Proof size in bytes (sibling digests plus one u32 per layer)."""
        return sum(len(group) * 32 + 4 for group in self.layers)


class MerkleTree:
    """m-ary complete MHT built eagerly from a list of leaf payloads."""

    def __init__(self, items: Sequence[bytes], fanout: int = 2) -> None:
        """Hash ``items`` into leaves and build all layers bottom-up."""
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.fanout = fanout
        leaves = [hash_bytes(item) for item in items]
        self.layers: List[List[Digest]] = [leaves]
        current = leaves
        while len(current) > 1:
            upper = [
                hash_concat(current[start : start + fanout])
                for start in range(0, len(current), fanout)
            ]
            self.layers.append(upper)
            current = upper

    @property
    def num_leaves(self) -> int:
        """Number of leaves in the tree."""
        return len(self.layers[0])

    @property
    def root(self) -> Digest:
        """Root digest (digest of the empty string for an empty tree)."""
        if not self.layers[0]:
            return EMPTY_DIGEST
        return self.layers[-1][0]

    def prove(self, leaf_index: int) -> MerkleProof:
        """Return a membership proof for leaf ``leaf_index``."""
        if not 0 <= leaf_index < self.num_leaves:
            raise IndexError(f"leaf {leaf_index} out of range")
        layers: List[List[Digest]] = []
        positions: List[int] = []
        index = leaf_index
        for layer in self.layers[:-1]:
            group_start = (index // self.fanout) * self.fanout
            group = layer[group_start : group_start + self.fanout]
            within = index - group_start
            siblings = [digest for i, digest in enumerate(group) if i != within]
            layers.append(siblings)
            positions.append(within)
            index //= self.fanout
        return MerkleProof(leaf_index=leaf_index, layers=layers, positions=positions)


def verify_proof(item: bytes, proof: MerkleProof, root: Digest) -> bool:
    """Check that ``item`` is a leaf under ``root`` according to ``proof``."""
    digest = hash_bytes(item)
    for siblings, position in zip(proof.layers, proof.positions):
        if position > len(siblings):
            raise VerificationError("malformed proof: position beyond sibling group")
        group = list(siblings[:position]) + [digest] + list(siblings[position:])
        digest = hash_concat(group)
    return digest == root
