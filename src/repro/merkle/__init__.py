"""In-memory Merkle hash trees (Section 2).

Used for block transaction roots (every block header carries ``Htx``) and
as the reference implementation that the streaming m-ary Merkle files of
COLE (Algorithm 4) are tested against.
"""

from repro.merkle.mht import MerkleTree, MerkleProof, verify_proof

__all__ = ["MerkleTree", "MerkleProof", "verify_proof"]
