"""Sort-merge of runs and the background-merge scheduler (Algorithm 1
line 9 / Algorithm 5 lines 9-21).

Compound keys are globally unique (one ``<addr, blk>`` pair is written at
most once — re-updates within a block overwrite in L0), so the k-way merge
is a plain heap merge; equal keys would indicate corruption and are
resolved in favour of the newest run for defence in depth.

:class:`MergeScheduler` owns the thread lifecycle of every background run
builder — the L0 flush, the per-level checkpoint merges, and the recovery
restart of aborted merges all spawn through it, so error capture and the
"output invisible until the commit checkpoint" discipline (Figure 8) are
implemented exactly once.
"""

from __future__ import annotations

import heapq
import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro.common.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.run import Run

Entry = Tuple[int, bytes]


def _tag_stream(stream: Iterable[Entry], priority: int) -> Iterator[Tuple[int, int, bytes]]:
    """Bind the stream's merge priority eagerly (avoids late-binding bugs)."""
    for key, value in stream:
        yield key, priority, value


def merge_entry_streams(streams: List[Iterable[Entry]]) -> Iterator[Entry]:
    """Merge sorted entry streams; ``streams`` are ordered oldest first.

    On duplicate keys the entry from the newest stream wins (higher list
    index = newer run).
    """
    tagged = [_tag_stream(stream, -index) for index, stream in enumerate(streams)]
    last_key: int | None = None
    for key, _priority, value in heapq.merge(*tagged):
        if key == last_key:
            continue  # older duplicate, already emitted the newest
        last_key = key
        yield key, value


class PendingMerge:
    """A background merge: the thread plus its (uncommitted) output run.

    The output run's files exist on disk but the run belongs to no group
    and no ``root_hash_list`` entry until the commit checkpoint — queries
    cannot see it, which is exactly the "uncommitted file" state of
    Figure 8.
    """

    def __init__(self, *, name: str = "", level: int = 0, kind: str = "merge") -> None:
        self.future: Optional[Future] = None
        self.name = name
        self.level = level
        self.kind = kind
        self.output: Optional["Run"] = None
        self.checkpoint_puts: int = 0  # put counter covered by the output run
        self.checkpoint_blk: int = -1  # block height covered by the output run
        self.error: Optional[BaseException] = None

    def wait(self) -> None:
        """Block until the merge task finishes (Algorithm 5 line 9).

        A failure in the background task is re-raised here as a
        :class:`StorageError` naming the run and level it was building,
        chained to the original exception.
        """
        if self.future is not None:
            self.future.result()  # the task traps its own errors; this joins
        if self.error is not None:
            label = self.name if self.name else "<unnamed>"
            raise StorageError(
                f"background {self.kind} building run {label} "
                f"(level {self.level}) failed: {self.error!r}"
            ) from self.error


class MergeScheduler:
    """Spawns and tracks the background run builders of one engine.

    ``build`` closures produce the output :class:`Run`; the scheduler owns
    worker lifecycle, output capture, and error capture, so every spawn
    site (L0 flush, level merge, recovery restart) behaves identically.

    Tasks run on persistent, reused worker threads rather than one fresh
    thread per merge: under GIL pressure ``Thread.start`` stalls the
    commit path for milliseconds waiting for the new thread to come
    alive, which at one flush per block is a measurable share of write
    latency.  The pool grows on demand (a worker is added only when no
    idle worker is available), so a deep cascade — L0 flush plus one
    merge per level in flight at once — never queues a builder behind an
    unrelated merge: every spawned task starts immediately, exactly as
    the thread-per-merge design did.
    """

    def __init__(self, name_prefix: str = "cole") -> None:
        self.name_prefix = name_prefix
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[Callable[[], None]]]" = queue.Queue()
        self._idle = 0  # parked workers not yet reserved by a dispatch
        self._workers: List[threading.Thread] = []
        #: Optional :class:`~repro.obs.MetricsRegistry`: when a server
        #: attaches one, every build reports its duration and the bytes
        #: of the run it wrote (merge write amplification, observable).
        self.metrics = None

    def _dispatch(self, task: Callable[[], None]) -> None:
        with self._lock:
            if self._idle > 0:
                # Reserve a parked worker: it is guaranteed to take this
                # task, so back-to-back dispatches in one cascade can
                # never queue two tasks onto the same worker.
                self._idle -= 1
            else:
                worker = threading.Thread(
                    target=self._work,
                    name=f"{self.name_prefix}-merge-{len(self._workers)}",
                    # Daemon: an engine that is never close()d must not
                    # pin the interpreter open on idle workers.  Clean
                    # shutdown drains the queue via close() sentinels.
                    daemon=True,
                )
                self._workers.append(worker)
                worker.start()
            self._queue.put(task)

    def _work(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:  # shutdown sentinel: retract the idle advert
                with self._lock:
                    self._idle -= 1
                return
            task()
            with self._lock:
                self._idle += 1  # advertised only once actually available

    def spawn(
        self,
        kind: str,
        name: str,
        build: Callable[[], "Run"],
        *,
        level: int = 0,
        checkpoint_puts: int = 0,
        checkpoint_blk: int = -1,
    ) -> PendingMerge:
        """Start ``build`` on a background worker; returns its handle.

        ``checkpoint_puts`` / ``checkpoint_blk`` record the durability
        point the output run will cover once committed (Section 4.3).
        """
        pending = PendingMerge(name=name, level=level, kind=kind)
        pending.checkpoint_puts = checkpoint_puts
        pending.checkpoint_blk = checkpoint_blk
        done = Future()  # type: Future

        def task() -> None:
            started = time.perf_counter()
            try:
                pending.output = build()
            except BaseException as exc:  # surfaced at the next checkpoint
                pending.error = exc
            else:
                metrics = self.metrics
                if metrics is not None:
                    metrics.histogram(
                        "repro_merge_seconds",
                        help="Run build duration by kind",
                        kind=kind,
                    ).observe(time.perf_counter() - started)
                    if pending.output is not None:
                        try:
                            written = pending.output.storage_bytes()
                        except OSError:
                            written = 0
                        metrics.counter(
                            "repro_merge_bytes_rewritten_total",
                            help="Bytes written by merge/flush builds",
                        ).inc(written)
                        metrics.counter(
                            "repro_compaction_bytes_total",
                            help="Run-build output bytes by kind and level",
                            kind=kind,
                            level=str(level),
                        ).inc(written)
            done.set_result(None)

        pending.future = done
        self._dispatch(task)
        return pending

    def close(self) -> None:
        """Stop all workers (idempotent; engine close path).

        Queued tasks drain first (FIFO), then each worker exits on its
        sentinel; the idle count is reset so a scheduler reused after
        close starts from a clean slate.
        """
        with self._lock:
            workers, self._workers = self._workers, []
        for _worker in workers:
            self._queue.put(None)
        for worker in workers:
            worker.join()
        with self._lock:
            self._idle = 0
