"""Sort-merge of runs (Algorithm 1 line 9 / Algorithm 5 line 19).

Compound keys are globally unique (one ``<addr, blk>`` pair is written at
most once — re-updates within a block overwrite in L0), so the k-way merge
is a plain heap merge; equal keys would indicate corruption and are
resolved in favour of the newest run for defence in depth.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Tuple

Entry = Tuple[int, bytes]


def _tag_stream(stream: Iterable[Entry], priority: int) -> Iterator[Tuple[int, int, bytes]]:
    """Bind the stream's merge priority eagerly (avoids late-binding bugs)."""
    for key, value in stream:
        yield key, priority, value


def merge_entry_streams(streams: List[Iterable[Entry]]) -> Iterator[Entry]:
    """Merge sorted entry streams; ``streams`` are ordered oldest first.

    On duplicate keys the entry from the newest stream wins (higher list
    index = newer run).
    """
    tagged = [_tag_stream(stream, -index) for index, stream in enumerate(streams)]
    last_key: int | None = None
    for key, _priority, value in heapq.merge(*tagged):
        if key == last_key:
            continue  # older duplicate, already emitted the newest
        last_key = key
        yield key, value
