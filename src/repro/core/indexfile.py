"""Index files: the layered learned index of one run (Section 4.1).

Layout (all in fixed-size pages):

* layer 0 (bottom): ε-bounded models over (compound key, value-file
  position), written streamingly while the run is merged (Algorithm 3
  line 3);
* layers 1..top: models over (kmin, model position in the layer below),
  each built by scanning the layer below (Algorithm 3 lines 5-8), until a
  layer fits in a single page;
* a final metadata page recording the layer table, so a reader can start
  from the top layer ("FI's last page", Algorithm 7 line 4).

Each layer starts on a fresh page.  The bottom layer uses the value file's
ε (2ε = pairs per page); upper layers use the index file's own page
capacity (2ε' = models per page) so the ±1-page fallback of Algorithm 7
works for every layer it descends through.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.common.codec import decode_u32, decode_u64, encode_u32, encode_u64
from repro.common.errors import StorageError
from repro.common.params import SystemParams
from repro.diskio.pagefile import PagedFile
from repro.learned.model import Model
from repro.learned.plm import build_models

_MAGIC = b"CIDX"


@dataclass(frozen=True)
class LayerInfo:
    """Placement of one model layer inside the index file."""

    start_page: int
    num_models: int

    def num_pages(self, models_per_page: int) -> int:
        """Pages occupied by this layer."""
        return max(1, -(-self.num_models // models_per_page))


class IndexFileBuilder:
    """Streaming construction of the full layered index (Algorithm 3)."""

    def __init__(self, file: PagedFile, params: SystemParams) -> None:
        self._file = file
        self._params = params
        self._record_size = Model.record_size(params.key_size)
        self.models_per_page = max(2, params.page_size // self._record_size)
        self._layers: List[LayerInfo] = []
        self._page_buffer = bytearray()
        self._bottom_count = 0
        self._bottom_kmins: List[int] = []

    # -- bottom layer (streamed during the merge) ------------------------------

    def add_bottom_models(self, stream: Iterable[Tuple[int, int]]) -> None:
        """Learn and write the bottom layer from a (key, position) stream."""
        epsilon = self._params.epsilon
        for model in build_models(stream, epsilon):
            self._write_model(model)
            self._bottom_kmins.append(model.kmin)
            self._bottom_count += 1

    def _write_model(self, model: Model) -> None:
        self._page_buffer += model.to_bytes(self._params.key_size)
        if len(self._page_buffer) + self._record_size > self._params.page_size:
            self._file.append_page(bytes(self._page_buffer))
            self._page_buffer.clear()

    def _flush_page(self) -> None:
        if self._page_buffer:
            self._file.append_page(bytes(self._page_buffer))
            self._page_buffer.clear()

    # -- upper layers + metadata ------------------------------------------------

    def finish(self) -> List[LayerInfo]:
        """Build the upper layers and the metadata page; returns the table."""
        if self._bottom_count == 0:
            raise StorageError("index file needs at least one model")
        self._flush_page()
        self._layers.append(LayerInfo(start_page=0, num_models=self._bottom_count))
        kmins = self._bottom_kmins
        index_epsilon = self.models_per_page // 2
        while self._layers[-1].num_models > self.models_per_page:
            next_page = self._file.num_pages
            stream = ((kmin, position) for position, kmin in enumerate(kmins))
            upper_kmins: List[int] = []
            count = 0
            for model in build_models(stream, index_epsilon):
                self._write_model(model)
                upper_kmins.append(model.kmin)
                count += 1
            self._flush_page()
            self._layers.append(LayerInfo(start_page=next_page, num_models=count))
            kmins = upper_kmins
        self._write_metadata()
        self._file.flush()
        return list(self._layers)

    def _write_metadata(self) -> None:
        payload = bytearray(_MAGIC)
        payload += encode_u32(len(self._layers))
        payload += encode_u32(self.models_per_page)
        for layer in self._layers:
            payload += encode_u64(layer.start_page)
            payload += encode_u64(layer.num_models)
        if len(payload) > self._params.page_size:
            raise StorageError("index layer table does not fit in one page")
        self._file.append_page(bytes(payload))


class IndexFile:
    """Read access to a finished index file."""

    def __init__(self, file: PagedFile, params: SystemParams) -> None:
        self._file = file
        self._params = params
        self._record_size = Model.record_size(params.key_size)
        self._layers, self.models_per_page = self._read_metadata()

    def _read_metadata(self) -> Tuple[List[LayerInfo], int]:
        data = self._file.read_page(self._file.num_pages - 1)
        if data[:4] != _MAGIC:
            raise StorageError("index file metadata page is corrupt")
        num_layers = decode_u32(data, 4)
        models_per_page = decode_u32(data, 8)
        layers: List[LayerInfo] = []
        offset = 12
        for _ in range(num_layers):
            start_page = decode_u64(data, offset)
            num_models = decode_u64(data, offset + 8)
            layers.append(LayerInfo(start_page=start_page, num_models=num_models))
            offset += 16
        return layers, models_per_page

    @property
    def num_layers(self) -> int:
        """Number of model layers (bottom included)."""
        return len(self._layers)

    @property
    def num_bottom_models(self) -> int:
        """Models in the bottom layer (useful for ablation statistics)."""
        return self._layers[0].num_models

    # -- model access -------------------------------------------------------------

    def _models_on_page(self, layer: LayerInfo, page_offset: int) -> List[Model]:
        data = self._file.read_page(layer.start_page + page_offset)
        first = page_offset * self.models_per_page
        count = min(self.models_per_page, layer.num_models - first)
        return [
            Model.from_bytes(data, self._params.key_size, slot * self._record_size)
            for slot in range(count)
        ]

    def _floor_model_in_layer(
        self, layer: LayerInfo, predicted_position: int, key: int
    ) -> Optional[Tuple[Model, int]]:
        """The model with the largest ``kmin <= key`` near ``predicted_position``.

        Implements QueryModel's page-stepping (Algorithm 7 lines 13-19):
        fetch the predicted page, step one page left/right if the key falls
        outside it, then binary search within the page.
        """
        last_page = layer.num_pages(self.models_per_page) - 1
        page = min(max(predicted_position, 0), layer.num_models - 1) // self.models_per_page
        models = self._models_on_page(layer, page)
        while key < models[0].kmin and page > 0:
            page -= 1
            models = self._models_on_page(layer, page)
        if key < models[0].kmin:
            return None  # key precedes every model in the run
        if key > models[-1].kmin and page < last_page:
            next_models = self._models_on_page(layer, page + 1)
            if key >= next_models[0].kmin:
                page += 1
                models = next_models
        kmins = [model.kmin for model in models]
        slot = bisect.bisect_right(kmins, key) - 1
        return models[slot], page * self.models_per_page + slot

    def search(self, key: int) -> Optional[int]:
        """Predicted value-file position for ``key`` (Algorithm 7 lines 4-8).

        Returns ``None`` when ``key`` precedes every key in the run; the
        returned position is within ε of the true floor position.
        """
        top = self._layers[-1]
        found = self._floor_model_in_layer(top, 0, key)
        if found is None:
            return None
        model, _position = found
        for layer in reversed(self._layers[:-1]):
            predicted = model.predict(key)
            found = self._floor_model_in_layer(layer, predicted, key)
            if found is None:
                return None
            model, _position = found
        return model.predict(key)
