"""Provenance-proof structures (Sections 6.2 and Appendix A).

A proof mirrors ``root_hash_list`` one item per committed structure, in
the exact order the list is hashed into ``Hstate``:

* :class:`MemProofItem` — a searched L0 MB-tree (full range proof);
* :class:`RunProofItem` — a searched on-disk run (value-file boundary
  entries + Merkle range proof + the bloom digest);
* :class:`RunNegativeItem` — a run skipped because its bloom filter
  excluded the address (the bloom bytes are the proof, footnote 1);
* :class:`StubItem` — a structure not searched (early stop, Algorithm 8
  lines 6-8 / 19-21): only its digest is shipped.

The verifier recomputes each item's digest, reassembles ``Hstate`` and
checks it against the block header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.bloomfilter import BloomFilter
from repro.common.hashing import Digest, hash_concat
from repro.core.merklefile import MerkleRangeProof
from repro.mbtree.proof import MBTreeProof


@dataclass(frozen=True)
class MemProofItem:
    """Range proof over one searched L0 MB-tree."""

    proof: MBTreeProof

    def size_bytes(self) -> int:
        return self.proof.size_bytes()


@dataclass(frozen=True)
class RunProofItem:
    """A searched run: disclosed pairs + Merkle range proof + bloom digest."""

    entries: List[Tuple[int, bytes]]
    lo: int
    hi: int
    num_entries: int
    merkle_proof: MerkleRangeProof
    bloom_digest: Digest

    def commitment(self, merkle_root: Digest) -> Digest:
        """Reassemble the run's ``root_hash_list`` entry."""
        return hash_concat([merkle_root, self.bloom_digest])

    def size_bytes(self) -> int:
        entry_bytes = sum(48 + len(value) for _key, value in self.entries)
        return entry_bytes + self.merkle_proof.size_bytes() + 32


@dataclass(frozen=True)
class RunNegativeItem:
    """A run skipped via its bloom filter; the filter itself is disclosed."""

    bloom_bytes: bytes
    merkle_root: Digest

    def commitment(self) -> Digest:
        bloom = BloomFilter.from_bytes(self.bloom_bytes)
        return hash_concat([self.merkle_root, bloom.digest()])

    def size_bytes(self) -> int:
        return len(self.bloom_bytes) + 32


@dataclass(frozen=True)
class StubItem:
    """An unsearched structure: only its ``root_hash_list`` digest."""

    digest: Digest

    def size_bytes(self) -> int:
        return 32


ProofItem = Union[MemProofItem, RunProofItem, RunNegativeItem, StubItem]


@dataclass(frozen=True)
class ProvenanceProof:
    """The full proof: one item per ``root_hash_list`` entry, in order."""

    addr: bytes
    blk_low: int
    blk_high: int
    items: List[ProofItem] = field(default_factory=list)

    def size_bytes(self) -> int:
        """Total proof size (the metric of Figures 14 and 15)."""
        return sum(item.size_bytes() for item in self.items)


@dataclass(frozen=True)
class ProvenanceResult:
    """Query output: the address's versions within the block range.

    ``versions`` holds ``(blk, value)`` pairs with
    ``blk_low <= blk <= blk_high`` in ascending block order;
    ``boundary_version`` is the newest version *older* than ``blk_low``
    (the value that was current when the range began), if one exists.
    """

    versions: List[Tuple[int, bytes]]
    boundary_version: Optional[Tuple[int, bytes]]
    proof: ProvenanceProof
