"""State rewind — the paper's future-work extension (Section 10).

COLE is designed for non-forking chains because the LSM merge makes
in-place deletion awkward (Section 4.3).  The paper leaves "efficient
strategies to remove the rewound states" as future work; this module
implements the straightforward-but-correct strategy: filter every
structure to versions at or below the target block and rebuild the
affected runs.  Cost is O(n) over the affected runs — acceptable for the
rare reorg — and the result is a fully consistent engine whose
``Hstate`` is deterministic (two nodes rewinding the same chain to the
same height agree byte-for-byte).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.compound import blk_of_int
from repro.core.run import Run


def rewind_to(cole, target_blk: int) -> int:
    """Discard every state version newer than ``target_blk``.

    Returns the number of versions discarded.  Pending asynchronous
    merges are drained first (their outputs are rebuilt or discarded with
    everything else); the engine afterwards behaves as if block
    ``target_blk`` had just been committed.
    """
    if target_blk < 0:
        raise ValueError("cannot rewind to a negative block height")
    cole._sources_cache = None  # runs are filtered and rebuilt below
    cole.wait_for_merges()
    _discard_pending(cole)
    dropped = 0
    dropped += _rewind_mem_group(cole.mem_writing, target_blk)
    if cole.params.async_merge:
        dropped += _rewind_mem_group(cole.mem_merging, target_blk)
    obsolete: List[Run] = []
    for level in cole.levels:
        for group in (level.writing, level.merging):
            rebuilt: List[Run] = []
            for run in group.runs:
                kept, removed, replaced = _filter_run(cole, run, target_blk)
                dropped += removed
                if kept is not None:
                    rebuilt.append(kept)
                if replaced is not None:
                    obsolete.append(replaced)
            group.runs = rebuilt
    cole.current_blk = min(cole.current_blk, target_blk)
    cole._checkpoint_blk = min(cole._checkpoint_blk, target_blk)
    cole._save_manifest()
    # Rebuilt-away runs are deleted only after the manifest stopped
    # naming them; earlier deletion leaves a crash window where recovery
    # loads a manifest whose runs are gone (Section 4.3).
    for run in obsolete:
        run.delete()
    return dropped


def _discard_pending(cole) -> None:
    """Drop finished-but-uncommitted merge outputs; they will be redone."""
    if cole.mem_pending is not None:
        output = cole.mem_pending.output
        if output is not None:
            output.delete()
        cole.mem_pending = None
    for level in cole.levels:
        if level.pending is not None:
            output = level.pending.output
            if output is not None:
                output.delete()
            level.pending = None


def _rewind_mem_group(group, target_blk: int) -> int:
    """Filter one L0 MB-tree in place (rebuild from surviving entries)."""
    survivors: List[Tuple[int, bytes]] = [
        (key, value)
        for key, value in group.tree.items()
        if blk_of_int(key) <= target_blk
    ]
    removed = len(group.tree) - len(survivors)
    if removed == 0:
        return 0
    group.clear()
    for key, value in survivors:
        group.insert(key, value)
    return removed


def _filter_run(cole, run: Run, target_blk: int):
    """Rebuild ``run`` without post-target versions.

    Returns ``(new_run_or_None, versions_removed, replaced_run_or_None)``;
    when a rebuild happens the original run is handed back for deferred
    deletion (after the manifest is saved), not deleted here.
    """
    survivors: List[Tuple[int, bytes]] = []
    removed = 0
    for key, value in run.value_file.iter_entries():
        if blk_of_int(key) <= target_blk:
            survivors.append((key, value))
        else:
            removed += 1
    if removed == 0:
        return run, 0, None
    if not survivors:
        return None, removed, run
    name = cole._next_run_name(run.level)
    rebuilt = Run.build(
        cole.workspace, name, run.level, iter(survivors), len(survivors), cole.params
    )
    return rebuilt, removed, run
