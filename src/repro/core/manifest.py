"""The on-disk manifest: COLE's commit record (Section 4.3).

``root_hash_list`` must survive crashes: a level merge only becomes
visible when the manifest naming the new run is atomically replaced
(write-to-temp + rename).  On recovery, any file not named by the manifest
belongs to an unfinished merge and is deleted; the in-memory level is
rebuilt by replaying transactions after ``checkpoint_blk``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List

MANIFEST_NAME = "MANIFEST.json"


@dataclass(frozen=True)
class RunRecord:
    """Manifest entry describing one committed run."""

    name: str
    level: int
    num_entries: int
    merkle_root_hex: str


@dataclass
class Manifest:
    """Serializable snapshot of the committed on-disk structure."""

    checkpoint_blk: int = -1
    checkpoint_puts: int = 0
    next_run_seq: int = 0
    async_merge: bool = False
    # Compaction policy the store was committed under ("" on manifests
    # predating the policy layer, which were all leveling), plus the
    # cumulative write-amplification counters it accrued — persisted so
    # a cold `repro query compaction` answers without replaying history.
    compaction: str = ""
    bytes_flushed: int = 0
    bytes_rewritten: int = 0
    # output paper-level -> cumulative merge bytes written onto it
    level_bytes_rewritten: Dict[int, int] = field(default_factory=dict)
    # level index -> {"writing": [RunRecord...], "merging": [RunRecord...]}
    levels: Dict[int, Dict[str, List[RunRecord]]] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "checkpoint_blk": self.checkpoint_blk,
            "checkpoint_puts": self.checkpoint_puts,
            "next_run_seq": self.next_run_seq,
            "async_merge": self.async_merge,
            "compaction": self.compaction,
            "bytes_flushed": self.bytes_flushed,
            "bytes_rewritten": self.bytes_rewritten,
            "level_bytes_rewritten": {
                str(level): total
                for level, total in self.level_bytes_rewritten.items()
            },
            "levels": {
                str(level): {
                    role: [vars(record) for record in records]
                    for role, records in groups.items()
                }
                for level, groups in self.levels.items()
            },
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        payload = json.loads(text)
        levels: Dict[int, Dict[str, List[RunRecord]]] = {}
        for level_str, groups in payload["levels"].items():
            levels[int(level_str)] = {
                role: [RunRecord(**record) for record in records]
                for role, records in groups.items()
            }
        return cls(
            checkpoint_blk=payload["checkpoint_blk"],
            checkpoint_puts=payload.get("checkpoint_puts", 0),
            next_run_seq=payload["next_run_seq"],
            async_merge=payload["async_merge"],
            compaction=payload.get("compaction", ""),
            bytes_flushed=payload.get("bytes_flushed", 0),
            bytes_rewritten=payload.get("bytes_rewritten", 0),
            level_bytes_rewritten={
                int(level): total
                for level, total in payload.get("level_bytes_rewritten", {}).items()
            },
            levels=levels,
        )


def save_manifest(root: str, manifest: Manifest) -> None:
    """Atomically replace the manifest (temp file + rename)."""
    path = os.path.join(root, MANIFEST_NAME)
    temp_path = path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        handle.write(manifest.to_json())
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)


def load_manifest(root: str) -> Manifest:
    """Load the manifest, or an empty one if none was ever committed."""
    path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(path):
        return Manifest()
    with open(path, "r", encoding="utf-8") as handle:
        return Manifest.from_json(handle.read())
