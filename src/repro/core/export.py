"""Streaming export / import of a snapshot-consistent keyspace slice.

``export_slice`` walks ``engine.scan``'s cursor stack page by page —
bounded memory however large the slice — and writes a portable stream:

* header: ``b"REPX"`` magic, a u32-length-prefixed JSON document
  (format version, ``addr_size``, the resolved ``at_blk``, the address
  bounds, the source root digest and height), then the document's crc32;
* frames: u32 payload length, payload, u32 payload crc32.  A payload is
  a u32 triple count followed by ``count`` packed triples
  ``addr | blk:u64 | vlen:u32 | value`` — the live version of each
  address at ``at_blk``, ascending by address;
* trailer: a zero length marker, then u64 total triples and the crc32
  chained over every frame payload, so truncation anywhere is detected.

All integers are big-endian.  Historical ``at_blk`` scans are stable
under concurrent appends, so an export at a fixed height is a consistent
slice even from a live engine.

``import_slice`` verifies the stream and replays it into an engine via
``put_many``, one block per distinct source height in ascending order,
preserving every ``<addr, blk>`` compound key.  Frames arrive
address-ordered, so the slice is buffered once to regroup by height —
imports are bounded by the slice size, exports by the page size.

For a write-once workload exported over the full address range at the
source's current height, replaying reproduces the source engine
byte-for-byte — same flush boundaries, same runs, same ``Hstate`` (the
round-trip oracle the tests pin).  Slices of overwrite-heavy histories
carry only the surviving versions, so the imported root is a digest of
the *slice*, not the source.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import BinaryIO, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import IntegrityError, StorageError
from repro.core.cursor import addr_successor

MAGIC = b"REPX"
FORMAT_VERSION = 1

#: Triples per frame — a few tens of KB per frame at default sizes.
FRAME_TRIPLES = 512

#: Addresses fetched per scan page (one gate hold each).
SCAN_PAGE = 1024

Triple = Tuple[bytes, int, bytes]


def _engine_addr_size(engine) -> int:
    cole = engine.params.cole if hasattr(engine, "shards") else engine.params
    return cole.system.addr_size


def _write_frame(out: BinaryIO, payload: bytes) -> None:
    out.write(struct.pack(">I", len(payload)))
    out.write(payload)
    out.write(struct.pack(">I", zlib.crc32(payload)))


def _pack_triples(triples: List[Triple], addr_size: int) -> bytes:
    parts = [struct.pack(">I", len(triples))]
    for addr, blk, value in triples:
        if len(addr) != addr_size:
            raise StorageError(f"address must be {addr_size} bytes")
        parts.append(addr)
        parts.append(struct.pack(">QI", blk, len(value)))
        parts.append(value)
    return b"".join(parts)


def export_slice(
    engine,
    out: BinaryIO,
    *,
    at_blk: Optional[int] = None,
    addr_low: Optional[bytes] = None,
    addr_high: Optional[bytes] = None,
    page: int = SCAN_PAGE,
) -> dict:
    """Stream the live version of every address in
    ``[addr_low, addr_high]`` as of ``at_blk`` (default: the engine's
    current height) into ``out``.  Returns summary stats."""
    addr_size = _engine_addr_size(engine)
    low = addr_low if addr_low is not None else b"\x00" * addr_size
    high = addr_high if addr_high is not None else b"\xff" * addr_size
    if len(low) != addr_size or len(high) != addr_size:
        raise StorageError(f"export bounds must be {addr_size}-byte addresses")
    if at_blk is None:
        # Latest height the engine knows: the driving height on a live
        # engine, the durable checkpoint on a freshly recovered one
        # (recovery leaves current_blk at 0 until the next begin_block).
        resolved_at = max(engine.current_blk, max(engine.shard_checkpoints()))
        resolved_at = max(resolved_at, 0)
    else:
        resolved_at = at_blk
    header = {
        "version": FORMAT_VERSION,
        "addr_size": addr_size,
        "at_blk": resolved_at,
        "addr_low": low.hex(),
        "addr_high": high.hex(),
        "source_root": engine.root_digest().hex(),
        "source_blk": engine.current_blk,
    }
    payload = json.dumps(header, sort_keys=True).encode("utf-8")
    out.write(MAGIC)
    _write_frame(out, payload)

    total = 0
    stream_crc = 0
    cursor = low
    while True:
        triples = engine.scan(cursor, high, at_blk=resolved_at, limit=page)
        for start in range(0, len(triples), FRAME_TRIPLES):
            chunk = triples[start : start + FRAME_TRIPLES]
            frame = _pack_triples(chunk, addr_size)
            _write_frame(out, frame)
            stream_crc = zlib.crc32(frame, stream_crc)
            total += len(chunk)
        if len(triples) < (page if page is not None else 1):
            break
        successor = addr_successor(triples[-1][0])
        if successor is None or successor > high:
            break
        cursor = successor
    # Trailer: zero-length marker + totals, so a truncated stream or a
    # dropped frame fails loudly at import.
    out.write(struct.pack(">I", 0))
    out.write(struct.pack(">QI", total, stream_crc))
    return {"triples": total, "at_blk": resolved_at, "root": header["source_root"]}


def _read_exact(inp: BinaryIO, count: int, what: str) -> bytes:
    data = inp.read(count)
    if len(data) != count:
        raise IntegrityError(f"export stream truncated reading {what}")
    return data


def read_header(inp: BinaryIO) -> dict:
    """Read and validate the stream header, leaving ``inp`` at frame 0."""
    if _read_exact(inp, len(MAGIC), "magic") != MAGIC:
        raise IntegrityError("not a repro export stream (bad magic)")
    (length,) = struct.unpack(">I", _read_exact(inp, 4, "header length"))
    payload = _read_exact(inp, length, "header")
    (crc,) = struct.unpack(">I", _read_exact(inp, 4, "header crc"))
    if zlib.crc32(payload) != crc:
        raise IntegrityError("export header corrupted (crc mismatch)")
    header = json.loads(payload.decode("utf-8"))
    if header.get("version") != FORMAT_VERSION:
        raise IntegrityError(
            f"unsupported export format version: {header.get('version')!r}"
        )
    return header


def iter_triples(inp: BinaryIO, header: dict) -> Iterator[Triple]:
    """Yield the stream's triples, verifying every frame and the trailer."""
    addr_size = header["addr_size"]
    total = 0
    stream_crc = 0
    while True:
        (length,) = struct.unpack(">I", _read_exact(inp, 4, "frame length"))
        if length == 0:
            break
        payload = _read_exact(inp, length, "frame")
        (crc,) = struct.unpack(">I", _read_exact(inp, 4, "frame crc"))
        if zlib.crc32(payload) != crc:
            raise IntegrityError("export frame corrupted (crc mismatch)")
        stream_crc = zlib.crc32(payload, stream_crc)
        (count,) = struct.unpack(">I", payload[:4])
        offset = 4
        for _ in range(count):
            addr = payload[offset : offset + addr_size]
            offset += addr_size
            blk, vlen = struct.unpack(">QI", payload[offset : offset + 12])
            offset += 12
            value = payload[offset : offset + vlen]
            offset += vlen
            if len(addr) != addr_size or len(value) != vlen:
                raise IntegrityError("export frame truncated mid-triple")
            total += 1
            yield addr, blk, value
        if offset != len(payload):
            raise IntegrityError("export frame has trailing garbage")
    expect_total, expect_crc = struct.unpack(
        ">QI", _read_exact(inp, 12, "trailer")
    )
    if expect_total != total:
        raise IntegrityError(
            f"export stream lost frames ({total} triples, trailer says {expect_total})"
        )
    if expect_crc != stream_crc:
        raise IntegrityError("export stream corrupted (trailer crc mismatch)")


def import_slice(engine, inp: BinaryIO, *, batch: int = 4096) -> dict:
    """Replay an export stream into ``engine``; returns summary stats.

    The engine must be fresh enough to accept the slice's heights
    (``begin_block`` enforces non-decreasing heights).  Triples regroup
    by source height and replay ascending, ``batch`` puts per
    ``put_many`` dispatch.
    """
    header = read_header(inp)
    addr_size = _engine_addr_size(engine)
    if header["addr_size"] != addr_size:
        raise StorageError(
            f"export was taken with addr_size={header['addr_size']}, "
            f"engine uses {addr_size}"
        )
    by_blk: Dict[int, List[Tuple[bytes, bytes]]] = {}
    count = 0
    for addr, blk, value in iter_triples(inp, header):
        by_blk.setdefault(blk, []).append((addr, value))
        count += 1
    root = None
    for blk in sorted(by_blk):
        engine.begin_block(blk)
        pairs = by_blk[blk]
        for start in range(0, len(pairs), batch):
            engine.put_many(pairs[start : start + batch])
        root = engine.commit_block()
    if root is None:
        root = engine.root_digest()
    return {
        "triples": count,
        "blocks": len(by_blk),
        "at_blk": header["at_blk"],
        "root": root.hex() if hasattr(root, "hex") else root,
        "source_root": header["source_root"],
    }
