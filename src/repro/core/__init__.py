"""COLE: the column-based learned storage itself (Sections 3-6).

Public surface:

* :class:`Cole` — the storage engine (``put`` / ``get`` / ``prov_query`` /
  ``root_digest``), in synchronous (Algorithm 1) or checkpoint-based
  asynchronous-merge (Algorithm 5, "COLE*") mode;
* :func:`verify_provenance` — client-side verification of provenance
  results against the state root digest in a block header;
* :class:`CompoundKey` — the ``<addr, blk>`` key of Section 3.2;
* :func:`rewind_to` — fork support (state rewind), the paper's stated
  future work, implemented as filter-and-rebuild;
* :func:`export_slice` / :func:`import_slice` — streaming portable
  export of a snapshot-consistent keyspace slice, and its replay
  (``repro export`` / ``repro import``);
* :func:`make_policy` — the pluggable compaction policy
  (``repro.core.compaction``) driving the cascade triggers.
"""

from repro.core.compaction import COMPACTION_POLICIES, make_policy
from repro.core.compound import CompoundKey, MAX_BLK
from repro.core.cursor import Cursor, MergingCursor, addr_successor
from repro.core.export import export_slice, import_slice, iter_triples, read_header
from repro.core.storage import Cole
from repro.core.proofs import ProvenanceProof, ProvenanceResult
from repro.core.verify import verify_provenance
from repro.core.rewind import rewind_to

__all__ = [
    "Cole",
    "COMPACTION_POLICIES",
    "make_policy",
    "export_slice",
    "import_slice",
    "iter_triples",
    "read_header",
    "rewind_to",
    "CompoundKey",
    "Cursor",
    "MergingCursor",
    "addr_successor",
    "MAX_BLK",
    "ProvenanceProof",
    "ProvenanceResult",
    "verify_provenance",
]
