"""Merkle files: the streaming m-ary complete MHT of one run (Section 4.2).

Algorithm 4 builds every MHT layer concurrently from the key-value stream,
using one group buffer per layer; the file is preallocated (the stream
size ``n`` is fixed by the run's level) and pages are filled at computed
offsets.  Every layer starts on a page boundary so a layer's hash ``i``
lives at page ``layer_page + i // hashes_per_page`` — the reproduction's
version of the parent-position formula of Section 6.2.

The file also supports *range proofs* (Section 6.2): for value-file
positions ``[lo, hi]`` the proof carries, per layer, the sibling hashes of
the boundary groups; interior groups are recomputed by the verifier from
the disclosed entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.common.errors import StorageError, VerificationError
from repro.common.hashing import DIGEST_SIZE, Digest, hash_bytes, hash_concat
from repro.diskio.pagefile import PagedFile


def layer_sizes(num_leaves: int, fanout: int) -> List[int]:
    """Node counts per MHT layer, bottom-up: ``[n, ceil(n/m), ..., 1]``."""
    if num_leaves < 1:
        raise StorageError("a Merkle file needs at least one leaf")
    sizes = [num_leaves]
    while sizes[-1] > 1:
        sizes.append(-(-sizes[-1] // fanout))
    return sizes


def leaf_hash(key: int, value: bytes, key_width: int) -> Digest:
    """Definition 2: ``h(K || value)`` with a fixed-width key encoding."""
    return hash_bytes(key.to_bytes(key_width, "big") + value)


class MerkleFileBuilder:
    """Algorithm 4: concurrent streaming construction of all layers."""

    def __init__(
        self, file: PagedFile, num_leaves: int, fanout: int, key_width: int
    ) -> None:
        if fanout < 2:
            raise StorageError("MHT fanout must be >= 2")
        self._file = file
        self._fanout = fanout
        self._key_width = key_width
        self._page_size = file.page_size
        self._hashes_per_page = self._page_size // DIGEST_SIZE
        self.num_leaves = num_leaves
        self._sizes = layer_sizes(num_leaves, fanout)
        self._layer_pages = _layer_page_table(self._sizes, self._hashes_per_page)
        total_pages = self._layer_pages[-1][0] + self._layer_pages[-1][1]
        file.preallocate(total_pages)
        depth = len(self._sizes)
        self._group_buffers: List[List[Digest]] = [[] for _ in range(depth)]
        self._page_buffers: List[bytearray] = [bytearray() for _ in range(depth)]
        self._next_slot = [0] * depth
        self._added = 0
        self._root: Digest = b""

    # -- streaming interface ------------------------------------------------------

    def add(self, key: int, value: bytes) -> None:
        """Feed the next key-value pair (in key order)."""
        if self._added >= self.num_leaves:
            raise StorageError("Merkle file received more pairs than declared")
        self._added += 1
        self._push(0, leaf_hash(key, value, self._key_width))

    def _push(self, layer: int, digest: Digest) -> None:
        group = self._group_buffers[layer]
        group.append(digest)
        self._stage(layer, digest)
        if len(group) == self._fanout and layer + 1 < len(self._sizes):
            parent = hash_concat(group)
            group.clear()
            self._push(layer + 1, parent)

    def _stage(self, layer: int, digest: Digest) -> None:
        """Append ``digest`` to the layer's page buffer, flushing full pages."""
        buffer = self._page_buffers[layer]
        buffer += digest
        if len(buffer) == self._page_size:
            self._flush_layer_page(layer)

    def _flush_layer_page(self, layer: int) -> None:
        buffer = self._page_buffers[layer]
        if not buffer:
            return
        start_page, _num_pages = self._layer_pages[layer]
        page_id = start_page + self._next_slot[layer] // self._hashes_per_page
        padded = bytes(buffer) + b"\x00" * (self._page_size - len(buffer))
        self._file.write_page(page_id, padded)
        self._next_slot[layer] += len(buffer) // DIGEST_SIZE
        buffer.clear()

    def finish(self) -> Digest:
        """Drain the remaining group buffers (Algorithm 4 lines 15-18)."""
        if self._added != self.num_leaves:
            raise StorageError(
                f"Merkle file expected {self.num_leaves} pairs, got {self._added}"
            )
        for layer in range(len(self._sizes) - 1):
            group = self._group_buffers[layer]
            if group:
                parent = hash_concat(group)
                group.clear()
                self._push(layer + 1, parent)
        top_group = self._group_buffers[-1]
        if len(self._sizes) == 1:
            # Single leaf: the bottom layer is the root layer.
            self._root = top_group[0] if top_group else self._last_staged_root()
        else:
            if len(top_group) != 1:
                raise StorageError("MHT top layer must hold exactly the root")
            self._root = top_group[0]
        for layer in range(len(self._sizes)):
            self._flush_layer_page(layer)
        self._file.flush()
        return self._root

    def _last_staged_root(self) -> Digest:
        buffer = self._page_buffers[0]
        if len(buffer) >= DIGEST_SIZE:
            return bytes(buffer[-DIGEST_SIZE:])
        raise StorageError("empty Merkle file")


@dataclass(frozen=True)
class MerkleRangeProof:
    """Authentication of the pairs at value-file positions ``[lo, hi]``.

    ``sibling_layers[i]`` holds the boundary-group sibling hashes at layer
    ``i`` as ``(left, right)`` lists; interior hashes are recomputed by the
    verifier from the disclosed entries.
    """

    lo: int
    hi: int
    num_leaves: int
    fanout: int
    sibling_layers: List[Tuple[List[Digest], List[Digest]]]

    def size_bytes(self) -> int:
        """Wire size: sibling digests plus the three header integers."""
        hashes = sum(len(left) + len(right) for left, right in self.sibling_layers)
        return hashes * DIGEST_SIZE + 24


class MerkleFile:
    """Read access to a finished Merkle file."""

    def __init__(self, file: PagedFile, num_leaves: int, fanout: int) -> None:
        self._file = file
        self.num_leaves = num_leaves
        self.fanout = fanout
        self._hashes_per_page = file.page_size // DIGEST_SIZE
        self._sizes = layer_sizes(num_leaves, fanout)
        self._layer_pages = _layer_page_table(self._sizes, self._hashes_per_page)

    def hash_at(self, layer: int, index: int) -> Digest:
        """The ``index``-th hash of ``layer`` (one page read)."""
        if not 0 <= index < self._sizes[layer]:
            raise StorageError(f"hash index {index} out of range in layer {layer}")
        start_page, _num_pages = self._layer_pages[layer]
        page_id = start_page + index // self._hashes_per_page
        data = self._file.read_page(page_id)
        offset = (index % self._hashes_per_page) * DIGEST_SIZE
        return data[offset : offset + DIGEST_SIZE]

    def root(self) -> Digest:
        """The MHT root hash."""
        return self.hash_at(len(self._sizes) - 1, 0)

    def prove_range(self, lo: int, hi: int) -> MerkleRangeProof:
        """Range proof for leaf positions ``[lo, hi]`` (inclusive)."""
        if not 0 <= lo <= hi < self.num_leaves:
            raise StorageError(f"bad proof range [{lo}, {hi}]")
        leaf_lo, leaf_hi = lo, hi
        sibling_layers: List[Tuple[List[Digest], List[Digest]]] = []
        for layer in range(len(self._sizes) - 1):
            group_lo = lo // self.fanout
            group_hi = hi // self.fanout
            span_start = group_lo * self.fanout
            span_end = min((group_hi + 1) * self.fanout, self._sizes[layer]) - 1
            left = [self.hash_at(layer, i) for i in range(span_start, lo)]
            right = [self.hash_at(layer, i) for i in range(hi + 1, span_end + 1)]
            sibling_layers.append((left, right))
            lo, hi = group_lo, group_hi
        return MerkleRangeProof(
            lo=leaf_lo,
            hi=leaf_hi,
            num_leaves=self.num_leaves,
            fanout=self.fanout,
            sibling_layers=sibling_layers,
        )


def build_merkle_file(
    file: PagedFile,
    pairs: Iterable[Tuple[int, bytes]],
    num_leaves: int,
    fanout: int,
    key_width: int,
) -> Digest:
    """Convenience wrapper: stream ``pairs`` through a builder."""
    builder = MerkleFileBuilder(file, num_leaves, fanout, key_width)
    for key, value in pairs:
        builder.add(key, value)
    return builder.finish()


def verify_range_proof(
    entries: List[Tuple[int, bytes]],
    proof: MerkleRangeProof,
    expected_root: Digest,
    key_width: int,
) -> None:
    """Check that ``entries`` occupy positions ``proof.lo..proof.hi``.

    Recomputes leaf hashes from the disclosed entries, splices in the
    sibling hashes layer by layer, and compares the reconstructed root.
    Raises :class:`VerificationError` on mismatch.
    """
    if not entries:
        raise VerificationError("empty Merkle range proof")
    if len(entries) != proof.hi - proof.lo + 1:
        raise VerificationError("Merkle proof entry count does not match range")
    sizes = layer_sizes(proof.num_leaves, proof.fanout)
    if len(proof.sibling_layers) != len(sizes) - 1:
        raise VerificationError("Merkle proof has wrong depth")
    digests = [leaf_hash(key, value, key_width) for key, value in entries]
    position = proof.lo
    for layer, (left, right) in enumerate(proof.sibling_layers):
        if position - len(left) != (position // proof.fanout) * proof.fanout:
            raise VerificationError("Merkle proof left siblings misaligned")
        span = list(left) + digests + list(right)
        span_start = position - len(left)
        expected_span_end = min(
            ((position + len(digests) - 1) // proof.fanout + 1) * proof.fanout,
            sizes[layer],
        )
        if span_start + len(span) != expected_span_end:
            raise VerificationError("Merkle proof right siblings misaligned")
        parents: List[Digest] = []
        for start in range(0, len(span), proof.fanout):
            parents.append(hash_concat(span[start : start + proof.fanout]))
        digests = parents
        position = span_start // proof.fanout
    if len(digests) != 1 or digests[0] != expected_root:
        raise VerificationError("Merkle range proof does not match the root")


def _layer_page_table(sizes: List[int], hashes_per_page: int) -> List[Tuple[int, int]]:
    """(start_page, num_pages) per layer; each layer is page-aligned."""
    table: List[Tuple[int, int]] = []
    next_page = 0
    for size in sizes:
        num_pages = -(-size // hashes_per_page)
        table.append((next_page, num_pages))
        next_page += num_pages
    return table
