"""The in-memory level L0: an MB-tree over compound keys (Section 3.2).

With asynchronous merge, L0 consists of *two* such trees (writing and
merging groups, Figure 7); both are committed state and both contribute
their root hashes to ``root_hash_list``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.hashing import Digest
from repro.core.compound import blk_of_int
from repro.mbtree import MBTree, MBTreeProof

Entry = Tuple[int, bytes]


class MemGroup:
    """One L0 group: an MB-tree plus bookkeeping for checkpoints."""

    def __init__(self, key_width: int, order: int = 16) -> None:
        self.tree = MBTree(order=order, key_width=key_width)
        self.max_blk = -1  # highest block height inserted (recovery, §4.3)

    def insert(self, key: int, value: bytes) -> None:
        """Insert a compound key-value pair (overwrites within a block)."""
        self.tree.insert(key, value)
        blk = blk_of_int(key)
        if blk > self.max_blk:
            self.max_blk = blk

    def __len__(self) -> int:
        return len(self.tree)

    def root(self) -> Digest:
        """The group's entry in ``root_hash_list``."""
        return self.tree.root_hash()

    def floor_search(self, key: int) -> Optional[Entry]:
        """Largest entry with key <= ``key`` (Algorithm 6 line 4)."""
        return self.tree.floor_search(key)

    def cursor(self):
        """Key-ordered cursor over this group (``repro.core.cursor``)."""
        from repro.core.cursor import MemCursor

        return MemCursor(self)

    def range_proof(self, low: int, high: int) -> Tuple[List[Entry], MBTreeProof]:
        """Authenticated range scan for provenance queries (Algorithm 8)."""
        return self.tree.range_proof(low, high)

    def drain(self) -> List[Entry]:
        """All entries in key order (flushing L0, Algorithm 1 line 5)."""
        return list(self.tree.items())

    def clear(self) -> None:
        """Empty the group after its data is committed on disk."""
        self.tree.clear()
        self.max_blk = -1
