"""COLE, the storage engine (Algorithms 1, 5, 6 and 8).

One :class:`Cole` instance owns a workspace directory.  The write path is
chosen by ``params.async_merge``:

* synchronous (Algorithm 1): a full level is merged inline, so a single
  ``put`` can trigger the recursive merge cascade — the write-stall /
  long-tail-latency behaviour Figure 12 measures;
* asynchronous (Algorithm 5, "COLE*"): every level keeps two groups with
  writing/merging roles; merges run in background threads and become
  visible only at deterministic commit checkpoints, so ``Hstate`` is
  identical across nodes regardless of merge timing (the soundness
  argument of Section 5) — and, on a single node, identical to the
  synchronous engine fed the same puts.

Durability follows Section 4.3: committed runs are named by an atomically
replaced manifest; on recovery, unnamed files are deleted, the in-memory
level is rebuilt by replaying puts after the recorded checkpoint, and
aborted merges restart.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import StorageError
from repro.common.gate import CommitGate
from repro.common.hashing import Digest, hash_concat
from repro.common.params import ColeParams
from repro.core.compaction import make_policy
from repro.core.compound import CompoundKey, MAX_BLK, addr_of_int, blk_of_int
from repro.core.cursor import ReadSource, ScanTriple, scan_sources
from repro.core.disklevel import DiskLevel, PendingMerge
from repro.core.manifest import Manifest, RunRecord, load_manifest, save_manifest
from repro.core.memlevel import MemGroup
from repro.core.merge import MergeScheduler, merge_entry_streams
from repro.core.proofs import (
    MemProofItem,
    ProofItem,
    ProvenanceProof,
    ProvenanceResult,
    RunNegativeItem,
    RunProofItem,
    StubItem,
)
from repro.core.run import RUN_SUFFIXES, Run
from repro.diskio.iostats import IOStats
from repro.diskio.workspace import Workspace

#: Name of the advisory workspace lock file (held via flock by the CLI's
#: serve/snapshot commands).  Defined here — next to the recovery code
#: that must *not* delete it — so the two layers cannot drift apart.
WORKSPACE_LOCK_NAME = "LOCK"


class Cole:
    """The column-based learned storage engine."""

    def __init__(
        self,
        directory: str,
        params: Optional[ColeParams] = None,
        stats: Optional[IOStats] = None,
    ) -> None:
        """Open (creating or recovering) a COLE instance in ``directory``."""
        self.params = params if params is not None else ColeParams()
        system = self.params.system
        self.workspace = Workspace(directory, system.page_size, stats)
        self.stats = self.workspace.stats
        key_width = system.key_size
        self.mem_writing = MemGroup(key_width)
        self.mem_merging = MemGroup(key_width)
        self.mem_pending: Optional[PendingMerge] = None
        self.scheduler = MergeScheduler()
        # Queries hold this shared; puts, commit checkpoints, and rewind
        # hold it exclusive, so concurrent readers never observe a
        # half-switched group or a deleted run (see repro.common.gate).
        self.gate = CommitGate("cole-gate")
        self.levels: List[DiskLevel] = []  # levels[i] is on-disk level i+1
        # Memoized read-path enumeration (see _read_sources): membership
        # and labels only change under the exclusive gate, so mutators
        # drop the cache and concurrent readers rebuild it idempotently.
        self._sources_cache: Optional[List[ReadSource]] = None
        self.current_blk = 0
        self.puts_total = 0
        self._run_seq = 0
        self._checkpoint_puts = 0
        self._checkpoint_blk = -1
        # Cascade trigger policy (repro.core.compaction) and the
        # cumulative write-amplification counters it is judged by:
        # bytes_flushed counts L0 flush output (user bytes entering
        # disk), bytes_rewritten counts level-merge output (the bytes
        # the policy chose to rewrite).  Both persist in the manifest.
        self.compaction = make_policy(self.params.compaction)
        self.bytes_flushed = 0
        self.bytes_rewritten = 0
        self.level_bytes_rewritten: Dict[int, int] = {}
        self._recover()

    # =========================================================================
    # block lifecycle
    # =========================================================================

    def begin_block(self, height: int) -> None:
        """Start executing transactions of block ``height``."""
        with self.gate.exclusive():
            if height < self.current_blk:
                raise StorageError(
                    "block heights must be non-decreasing (no forks, §4.3)"
                )
            self.current_blk = height

    def commit_block(self, force_cascade: Optional[bool] = None) -> Digest:
        """Finalize the current block and return ``Hstate`` (Algorithm 1
        line 13 / Algorithm 5 line 22).

        Capacity checks run here, at the block boundary, rather than
        inside ``put``: this keeps every ``<addr, blk>`` compound key
        globally unique (a block's updates can never straddle a flush) and
        makes crash-recovery replay block-aligned.  L0 may transiently
        exceed ``B`` by one block's worth of updates; see DESIGN.md.

        ``force_cascade`` overrides the capacity check (both ways); the
        sharded engine uses it to coordinate cascades across shards so
        their commit IO overlaps.  Passing a value derived from the put
        stream keeps ``Hstate`` deterministic.
        """
        cascade = self.needs_cascade() if force_cascade is None else force_cascade
        with self.gate.exclusive():
            if cascade:
                if self.params.async_merge:
                    self._async_cascade()
                else:
                    self._sync_cascade()
            return self._root_digest()

    def needs_cascade(self) -> bool:
        """True when the next commit will flush L0 (capacity reached).

        Shared with the sharded engine, whose commit fan-out parallelizes
        exactly the commits this predicate marks as heavy.
        """
        return len(self.mem_writing) >= self.params.mem_capacity

    # =========================================================================
    # write path
    # =========================================================================

    def put(self, addr: bytes, value: bytes) -> None:
        """Insert a state update for the current block (Put of Section 2)."""
        system = self.params.system
        if len(addr) != system.addr_size:
            raise StorageError(f"address must be {system.addr_size} bytes")
        key = CompoundKey(addr=addr, blk=self.current_blk).to_int()
        with self.gate.exclusive():
            self.mem_writing.insert(key, value)
            self.puts_total += 1

    def put_many(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        """Batched :meth:`put`: insert a whole write set in one dispatch.

        Equivalent to calling ``put`` per pair — same compound keys, same
        overwrite-within-a-block semantics — with the per-call validation
        and attribute traffic amortized across the batch.
        """
        addr_size = self.params.system.addr_size
        blk = self.current_blk
        count = 0
        with self.gate.exclusive():
            insert = self.mem_writing.insert
            try:
                for addr, value in items:
                    if len(addr) != addr_size:
                        raise StorageError(f"address must be {addr_size} bytes")
                    insert(CompoundKey(addr=addr, blk=blk).to_int(), value)
                    count += 1
            finally:
                self.puts_total += count

    # -- synchronous merge (Algorithm 1) ---------------------------------------

    def _sync_cascade(self) -> None:
        self._sources_cache = None  # membership changes below
        entries = self.mem_writing.drain()
        if not entries:  # forced cascade on an empty L0 is a no-op
            return
        run = self._build_run(1, entries, len(entries))
        self._ensure_level(1).writing.add(run)
        self._note_flushed(run)
        self.mem_writing.clear()
        self._checkpoint_puts = self.puts_total
        self._checkpoint_blk = self.current_blk
        obsolete: List[Run] = []
        index = 0
        while index < len(self.levels) and self.compaction.should_merge(
            self.levels[index].writing, index + 1, self.params
        ):
            level = self.levels[index]
            target = self.compaction.merge_target(index + 1)
            sources = self.compaction.merge_sources(level.writing)
            total = sum(source.num_entries for source in sources)
            merged = merge_entry_streams(
                [source.value_file.iter_entries() for source in sources]
            )
            run = self._build_run(target, merged, total)
            self._ensure_level(target).writing.add(run)
            self._note_rewritten(run)
            obsolete.extend(level.writing.take_all())
            index += 1
        self._save_manifest()
        # Only now are the merged-away runs unreferenced by the manifest;
        # deleting them earlier leaves a crash window where recovery loads
        # a manifest naming files that no longer exist (Section 4.3).
        for run in obsolete:
            run.delete()

    # -- asynchronous merge (Algorithm 5) ----------------------------------------

    def _async_cascade(self) -> None:
        self._sources_cache = None  # groups swap / runs attach below
        self._checkpoint_mem()
        obsolete: List[Run] = []
        index = 0
        while index < len(self.levels) and self.compaction.should_merge(
            self.levels[index].writing, index + 1, self.params
        ):
            obsolete.extend(self._checkpoint_level(index))
            index += 1
        self._save_manifest()
        # Deferred until the manifest stopped naming them (crash safety).
        for run in obsolete:
            run.delete()

    def _checkpoint_mem(self) -> None:
        """The L0 commit checkpoint (Algorithm 5, i = 0)."""
        pending = self.mem_pending
        if pending is not None:
            pending.wait()
            assert pending.output is not None
            self._ensure_level(1).writing.add(pending.output)
            self._note_flushed(pending.output)
            self._checkpoint_puts = pending.checkpoint_puts
            self._checkpoint_blk = pending.checkpoint_blk
            self.mem_pending = None
        self.mem_merging.clear()
        self.mem_writing, self.mem_merging = self.mem_merging, self.mem_writing
        # The merging group now holds the full tree; flush it in background.
        entries = self.mem_merging.drain()
        if not entries:  # forced cascade on an empty L0: nothing to flush
            return
        name = self._next_run_name(1)
        self.mem_pending = self.scheduler.spawn(
            "flush",
            name,
            lambda: Run.build(
                self.workspace, name, 1, iter(entries), len(entries), self.params
            ),
            level=1,
            checkpoint_puts=self.puts_total,
            checkpoint_blk=self.current_blk,
        )

    def _checkpoint_level(self, index: int) -> List[Run]:
        """The commit checkpoint of on-disk level ``index + 1``.

        Returns the merged-away runs; the caller deletes their files
        after the manifest no longer names them.
        """
        level = self.levels[index]
        pending = level.pending
        if pending is not None:
            pending.wait()
            assert pending.output is not None
            self._ensure_level(pending.output.level).writing.add(pending.output)
            self._note_rewritten(pending.output)
            level.pending = None
        obsolete = level.merging.take_all()
        level.switch_groups()
        self._spawn_level_merge(index)
        return obsolete

    def _spawn_level_merge(self, index: int) -> None:
        """Merge level ``index + 1``'s merging group in the background —
        both the checkpoint merge (Algorithm 5 line 19) and the recovery
        restart of an aborted merge (Section 4.3)."""
        level = self.levels[index]
        sources = self.compaction.merge_sources(level.merging)
        if not sources:
            return
        target = self.compaction.merge_target(index + 1)
        total = sum(source.num_entries for source in sources)
        name = self._next_run_name(target)

        def build() -> Run:
            merged = merge_entry_streams(
                [source.value_file.iter_entries() for source in sources]
            )
            return Run.build(self.workspace, name, target, merged, total, self.params)

        level.pending = self.scheduler.spawn("merge", name, build, level=target)

    # -- shared write helpers -------------------------------------------------------

    def _build_run(self, level: int, entries, total: int) -> Run:
        name = self._next_run_name(level)
        return Run.build(self.workspace, name, level, iter(entries), total, self.params)

    def _next_run_name(self, level: int) -> str:
        name = f"L{level}_{self._run_seq:08d}"
        self._run_seq += 1
        return name

    def _ensure_level(self, paper_level: int) -> DiskLevel:
        while len(self.levels) < paper_level:
            self.levels.append(DiskLevel(len(self.levels) + 1))
        return self.levels[paper_level - 1]

    def _note_flushed(self, run: Run) -> None:
        """Account an L0 flush output at the instant it is committed."""
        self.bytes_flushed += run.storage_bytes()

    def _note_rewritten(self, run: Run) -> None:
        """Account a level-merge output at the instant it is committed.

        Counted at the commit checkpoint (not when the background build
        finishes) so the counters stay deterministic across merge timing
        and crash/restart: an aborted merge's bytes are never counted,
        its restart's are counted exactly once.
        """
        written = run.storage_bytes()
        self.bytes_rewritten += written
        self.level_bytes_rewritten[run.level] = (
            self.level_bytes_rewritten.get(run.level, 0) + written
        )

    def wait_for_merges(self) -> None:
        """Join every background merge (benchmark teardown, clean close).

        The finished runs stay uncommitted until their natural checkpoint,
        preserving ``Hstate`` determinism.
        """
        if self.mem_pending is not None:
            self.mem_pending.wait()
        for level in self.levels:
            if level.pending is not None:
                level.pending.wait()

    # =========================================================================
    # root digest (Hstate)
    # =========================================================================

    def root_hash_list(self) -> List[Tuple[str, Digest]]:
        """The ordered (label, digest) list that ``Hstate`` hashes (§3.2)."""
        with self.gate.shared():
            return self._root_hash_list()

    def _root_hash_list(self) -> List[Tuple[str, Digest]]:
        entries: List[Tuple[str, Digest]] = [("mem:w", self.mem_writing.root())]
        if self.params.async_merge:
            entries.append(("mem:m", self.mem_merging.root()))
        for level in self.levels:
            for run in level.writing.runs:
                entries.append((f"run:{run.name}:w", run.commitment()))
            for run in level.merging.runs:
                entries.append((f"run:{run.name}:m", run.commitment()))
        return entries

    def root_digest(self) -> Digest:
        """``Hstate``: the digest over ``root_hash_list``."""
        with self.gate.shared():
            return self._root_digest()

    def _root_digest(self) -> Digest:
        return hash_concat([digest for _label, digest in self._root_hash_list()])

    # =========================================================================
    # read path
    # =========================================================================

    def get(self, addr: bytes) -> Optional[bytes]:
        """Latest value of ``addr`` or ``None`` (Algorithm 6)."""
        with self.gate.shared():
            return self._lookup(CompoundKey.latest_of(addr).to_int(), addr)

    def get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        """Value of ``addr`` as of block ``blk`` (historical point lookup)."""
        with self.gate.shared():
            return self._lookup(CompoundKey(addr=addr, blk=blk).to_int(), addr)

    def get_many(self, addrs: List[bytes]) -> List[Optional[bytes]]:
        """Batched :meth:`get`: latest values, positionally matched.

        One gate hold and one walk of the memoized source enumeration
        serve the whole batch, instead of a hold + walk per key.  Within
        each source the still-unresolved addresses are bloom-filtered
        and probed in ascending key order, so a run's index and value
        files are touched sequentially rather than in request order.
        An address resolved by a fresher source is never probed again
        in older ones (Algorithm 6's first-hit-wins, batch-wide).
        """
        addr_size = self._addr_size()
        results: List[Optional[bytes]] = [None] * len(addrs)
        # Duplicates in one batch resolve to the same snapshot answer;
        # probe each distinct address once and fan the value back out.
        pending: Dict[bytes, List[int]] = {}
        for index, addr in enumerate(addrs):
            pending.setdefault(addr, []).append(index)
        with self.gate.shared():
            for source in self._read_sources():
                if not pending:
                    break
                candidates = sorted(
                    addr for addr in pending if source.may_contain(addr)
                )
                for addr in candidates:
                    found = source.floor_search(
                        CompoundKey.latest_of(addr).to_int()
                    )
                    if found is not None and addr_of_int(found[0], addr_size) == addr:
                        for index in pending.pop(addr):
                            results[index] = found[1]
        return results

    def _lookup(self, key: int, addr: bytes) -> Optional[bytes]:
        """Floor-search every source in freshness order (Algorithm 6):
        the newest entry for ``addr`` with compound key <= ``key``."""
        addr_size = self._addr_size()
        for source in self._read_sources():
            if not source.may_contain(addr):
                continue
            found = source.floor_search(key)
            if found is not None and addr_of_int(found[0], addr_size) == addr:
                return found[1]
        return None

    def _read_sources(self) -> List[ReadSource]:
        """Every sorted source in Algorithm 6's search order (newest
        first), labeled as in ``root_hash_list``.

        The one definition of the read path's traversal order: point
        lookups, provenance queries, and range-scan cursors all walk
        this list, so the three paths cannot drift apart.  Must be used
        under the gate.  Memoized between commit checkpoints — group
        membership, roles, and mem-group identities change only under
        the exclusive gate, whose holders drop the cache; rebuilding is
        idempotent, so racing shared-gate readers are fine.
        """
        sources = self._sources_cache
        if sources is not None:
            return sources
        sources = [ReadSource.mem("mem:w", self.mem_writing)]
        if self.params.async_merge:
            sources.append(ReadSource.mem("mem:m", self.mem_merging))
        for level in self.levels:
            for role, group in (("w", level.writing), ("m", level.merging)):
                for run in group.newest_first():
                    sources.append(ReadSource.run(f"run:{run.name}:{role}", run))
        self._sources_cache = sources
        return sources

    # -- range scans (cursor layer) -----------------------------------------------

    def scan(
        self,
        addr_low: bytes,
        addr_high: bytes,
        *,
        at_blk: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[ScanTriple]:
        """Key-ordered range scan: the live version of every address in
        ``[addr_low, addr_high]`` (inclusive), ascending.

        Returns ``(addr, blk, value)`` triples — ``blk`` is the height
        the returned version was written at.  ``at_blk`` scans the
        historical state as of that block (default: latest); ``limit``
        caps the number of addresses returned, which with
        :func:`repro.core.cursor.addr_successor` over the last returned
        address is the paging primitive the serving layer's
        continuation protocol builds on.  Runs under the gate shared
        for the whole scan, like every other query.
        """
        addr_size = self._addr_size()
        if len(addr_low) != addr_size or len(addr_high) != addr_size:
            raise StorageError(f"scan bounds must be {addr_size}-byte addresses")
        if addr_low > addr_high:
            raise StorageError("empty address range")
        resolved_at = MAX_BLK if at_blk is None else at_blk
        if not 0 <= resolved_at <= MAX_BLK:
            raise StorageError(f"block height out of range: {at_blk}")
        if limit is not None and limit <= 0:
            return []
        key_low = CompoundKey(addr=addr_low, blk=0).to_int()
        key_high = CompoundKey(addr=addr_high, blk=MAX_BLK).to_int()
        with self.gate.shared():
            return scan_sources(
                self._read_sources(),
                key_low,
                key_high,
                at_blk=resolved_at,
                addr_size=addr_size,
                limit=limit,
            )

    # -- provenance queries (Algorithm 8) ----------------------------------------

    def prov_query(self, addr: bytes, blk_low: int, blk_high: int) -> ProvenanceResult:
        """Historical values of ``addr`` in ``[blk_low, blk_high]`` + proof."""
        if blk_low > blk_high:
            raise StorageError("empty block range")
        with self.gate.shared():
            return self._prov_query(addr, blk_low, blk_high)

    def prov_query_anchored(
        self, addr: bytes, blk_low: int, blk_high: int
    ) -> Tuple[ProvenanceResult, Digest]:
        """:meth:`prov_query` plus the ``Hstate`` the proof verifies
        against, both read under one gate hold so no commit checkpoint
        can slide between proof and anchor (the serving layer's PROV op
        hands both to remote verifiers)."""
        if blk_low > blk_high:
            raise StorageError("empty block range")
        with self.gate.shared():
            return self._prov_query(addr, blk_low, blk_high), self._root_digest()

    def _prov_query(self, addr: bytes, blk_low: int, blk_high: int) -> ProvenanceResult:
        addr_int = int.from_bytes(addr, "big")
        key_low = addr_int * 2**64 + blk_low - 1  # <addr, blk_low - 1>
        key_high = addr_int * 2**64 + min(blk_high + 1, MAX_BLK)
        addr_size = self._addr_size()

        found: Dict[int, bytes] = {}  # blk -> value, for our address
        items_by_label: Dict[str, ProofItem] = {}
        early_stop = False

        def note_entries(entries: List[Tuple[int, bytes]]) -> bool:
            """Record disclosed versions of addr; True if one predates blk_low."""
            saw_older = False
            for entry_key, value in entries:
                if addr_of_int(entry_key, addr_size) != addr:
                    continue
                blk = blk_of_int(entry_key)
                if blk > blk_high:
                    continue
                found.setdefault(blk, value)
                if blk < blk_low:
                    saw_older = True
            return saw_older

        # One pass over the unified read-path enumeration — the same
        # freshness order gets and scans traverse (Algorithm 8 rides
        # Algorithm 6's search order).
        for source in self._read_sources():
            if early_stop:
                break
            if source.kind == "mem":
                entries, proof = source.source.range_proof(key_low, key_high)
                items_by_label[source.label] = MemProofItem(proof=proof)
                if note_entries(entries):
                    early_stop = True
                continue
            run = source.source
            if not run.may_contain(addr):
                items_by_label[source.label] = RunNegativeItem(
                    bloom_bytes=run.bloom.to_bytes(), merkle_root=run.merkle_root
                )
                continue
            scan = run.prov_scan(key_low, key_high)
            items_by_label[source.label] = RunProofItem(
                entries=scan.entries,
                lo=scan.lo,
                hi=scan.hi,
                num_entries=run.num_entries,
                merkle_proof=scan.proof,
                bloom_digest=run.bloom.digest(),
            )
            if note_entries(scan.entries):
                early_stop = True

        items: List[ProofItem] = []
        for label, digest in self._root_hash_list():
            item = items_by_label.get(label)
            items.append(item if item is not None else StubItem(digest=digest))

        proof = ProvenanceProof(
            addr=addr, blk_low=blk_low, blk_high=blk_high, items=items
        )
        versions = sorted(
            (blk, value) for blk, value in found.items() if blk >= blk_low
        )
        older = [(blk, value) for blk, value in found.items() if blk < blk_low]
        boundary = max(older) if older else None
        return ProvenanceResult(versions=versions, boundary_version=boundary, proof=proof)

    # =========================================================================
    # accounting / lifecycle
    # =========================================================================

    def storage_bytes(self) -> int:
        """Total on-disk footprint (the storage series of Figures 9-10)."""
        with self.gate.shared():
            return self.workspace.storage_bytes()

    def num_disk_levels(self) -> int:
        """Number of instantiated on-disk levels (``d_COLE`` of Table 1)."""
        return len(self.levels)

    def compaction_stats(self) -> dict:
        """Write-amplification accounting of the compaction policy.

        ``write_amp`` is cumulative merge output over cumulative flush
        output — the figure the leveling/tiering trade-off moves.  The
        per-level rows report the live run layout (count, entries,
        on-disk bytes) plus the merge bytes ever written *onto* that
        level, so `repro query compaction` can show where rewriting
        concentrates.
        """
        with self.gate.shared():
            return self._compaction_stats()

    def _compaction_stats(self) -> dict:
        per_level: Dict[int, dict] = {}
        for level in self.levels:
            runs = level.all_runs()
            per_level[level.level] = {
                "runs": len(runs),
                "entries": sum(run.num_entries for run in runs),
                "bytes": sum(run.storage_bytes() for run in runs),
                "bytes_rewritten": self.level_bytes_rewritten.get(level.level, 0),
            }
        flushed = self.bytes_flushed
        rewritten = self.bytes_rewritten
        return {
            "policy": self.params.compaction,
            "bytes_flushed": flushed,
            "bytes_rewritten": rewritten,
            "write_amp": round(rewritten / flushed, 4) if flushed else 0.0,
            "levels": per_level,
        }

    def rewind_to(self, target_blk: int) -> int:
        """Discard every version newer than ``target_blk`` (fork support,
        the paper's future-work extension — see repro.core.rewind)."""
        from repro.core.rewind import rewind_to

        with self.gate.exclusive():
            self._sources_cache = None  # levels are rebuilt wholesale
            return rewind_to(self, target_blk)

    def close(self) -> None:
        """Join merges, stop the merge workers, and close all file handles.

        Holds the gate exclusive so in-flight queries finish before their
        file handles disappear from under them.
        """
        self.wait_for_merges()
        self.scheduler.close()
        with self.gate.exclusive():
            self.workspace.close()

    # =========================================================================
    # durability (Section 4.3)
    # =========================================================================

    def _save_manifest(self) -> None:
        manifest = Manifest(
            checkpoint_blk=self._checkpoint_blk,
            checkpoint_puts=self._checkpoint_puts,
            next_run_seq=self._run_seq,
            async_merge=self.params.async_merge,
            compaction=self.params.compaction,
            bytes_flushed=self.bytes_flushed,
            bytes_rewritten=self.bytes_rewritten,
            level_bytes_rewritten=dict(self.level_bytes_rewritten),
        )
        manifest.levels = {}
        for level in self.levels:
            groups: Dict[str, List[RunRecord]] = {"writing": [], "merging": []}
            for role, group in (("writing", level.writing), ("merging", level.merging)):
                for run in group.runs:
                    groups[role].append(
                        RunRecord(
                            name=run.name,
                            level=run.level,
                            num_entries=run.num_entries,
                            merkle_root_hex=run.merkle_root.hex(),
                        )
                    )
            manifest.levels[level.level] = groups
        manifest.checkpoint_puts = self._checkpoint_puts
        save_manifest(self.workspace.root, manifest)

    def _recover(self) -> None:
        manifest = load_manifest(self.workspace.root)
        # A committed store's run layout is policy-specific; reopening
        # under a different policy would silently change where the next
        # cascade merges and diverge Hstate across restarts.  Manifests
        # predating the policy field were all written by leveling.
        recorded = manifest.compaction
        if not recorded and manifest.next_run_seq > 0:
            recorded = "leveling"
        if recorded and recorded != self.params.compaction:
            raise StorageError(
                f"workspace was committed with compaction={recorded!r}; "
                f"reopen with the same policy (got {self.params.compaction!r})"
            )
        self.bytes_flushed = manifest.bytes_flushed
        self.bytes_rewritten = manifest.bytes_rewritten
        self.level_bytes_rewritten = dict(manifest.level_bytes_rewritten)
        # The lock is the CLI's advisory workspace guard: not engine
        # state, but deleting it mid-hold would let a second process
        # relock a fresh inode and defeat it.
        known = {"MANIFEST.json", WORKSPACE_LOCK_NAME}
        for paper_level, groups in sorted(manifest.levels.items()):
            level = self._ensure_level(paper_level)
            for role, target in (("writing", level.writing), ("merging", level.merging)):
                for record in groups.get(role, []):
                    run = Run.load(
                        self.workspace,
                        record.name,
                        record.level,
                        record.num_entries,
                        self.params,
                        bytes.fromhex(record.merkle_root_hex),
                    )
                    target.add(run)
                    known.update(
                        record.name + suffix for suffix in RUN_SUFFIXES
                    )
        # Discard files of unfinished merges (Section 4.3).
        for name in list(self.workspace.list_files()):
            if name not in known:
                self.workspace.remove_file(name)
        self._run_seq = manifest.next_run_seq
        self._checkpoint_blk = manifest.checkpoint_blk
        self._checkpoint_puts = manifest.checkpoint_puts
        # Restart aborted level merges (async mode).
        if self.params.async_merge:
            for index, level in enumerate(self.levels):
                if level.merging.runs:
                    self._spawn_level_merge(index)

    @property
    def checkpoint_puts(self) -> int:
        """Number of puts durably contained in committed runs (replay point)."""
        return self._checkpoint_puts

    @property
    def checkpoint_blk(self) -> int:
        """Highest block height durably contained in committed runs."""
        return self._checkpoint_blk

    def shard_checkpoints(self) -> List[int]:
        """Per-shard durable checkpoints (one entry: the engine itself).

        The WAL layer truncates and replays per shard chain; a
        single-node engine is the one-shard special case, so both engine
        shapes answer the same question (`ShardedCole` overrides).
        """
        return [self._checkpoint_blk]

    def _addr_size(self) -> int:
        return self.params.system.addr_size
