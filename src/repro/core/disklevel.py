"""On-disk levels: groups of sorted runs (Sections 4 and 5).

In synchronous mode (Algorithm 1) a level is a single group of up to ``T``
runs.  With asynchronous merge (Algorithm 5, Figure 7) a level holds two
groups with mutually exclusive roles — *writing* (accepts newly committed
runs from the level above) and *merging* (its runs are being merged into
the next level by a background thread) — which are switched at every
commit checkpoint.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.merge import PendingMerge
from repro.core.run import Run

__all__ = ["DiskGroup", "DiskLevel", "PendingMerge"]


class DiskGroup:
    """An ordered list of committed runs (oldest first)."""

    def __init__(self) -> None:
        self.runs: List[Run] = []

    def __len__(self) -> int:
        return len(self.runs)

    def newest_first(self) -> List[Run]:
        """Runs in search order (Algorithm 6: freshness order)."""
        return list(reversed(self.runs))

    def add(self, run: Run) -> None:
        """Append a newly committed run (it becomes the newest)."""
        self.runs.append(run)

    def delete_all(self) -> None:
        """Remove every run's files (after their merge is committed)."""
        for run in self.runs:
            run.delete()
        self.runs.clear()

    def take_all(self) -> List[Run]:
        """Detach and return every run, keeping the files on disk.

        Used when deletion must wait until the manifest no longer names
        the runs (Section 4.3): removing the files first would leave a
        crash window where recovery loads a manifest whose runs are gone.
        """
        runs, self.runs = self.runs, []
        return runs


class DiskLevel:
    """One on-disk level: writing group, merging group, active merge."""

    def __init__(self, level: int) -> None:
        self.level = level
        self.writing = DiskGroup()
        self.merging = DiskGroup()
        self.pending: Optional[PendingMerge] = None

    def switch_groups(self) -> None:
        """Swap the writing / merging roles (Algorithm 5 line 13)."""
        self.writing, self.merging = self.merging, self.writing

    def search_order(self) -> List[Run]:
        """Committed runs in Algorithm 6 order: writing then merging,
        each newest first."""
        return self.writing.newest_first() + self.merging.newest_first()

    def all_runs(self) -> List[Run]:
        """Every committed run in ``root_hash_list`` order (writing group
        oldest-first, then merging group oldest-first)."""
        return list(self.writing.runs) + list(self.merging.runs)

    def cursor(self):
        """Merged key-ordered cursor over every committed run of this
        level, freshness-ordered (``repro.core.cursor``)."""
        from repro.core.cursor import MergingCursor

        return MergingCursor([run.cursor() for run in self.search_order()])
