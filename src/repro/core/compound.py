"""Compound keys ``K = <addr, blk>`` (Section 3.2).

The column-based design indexes every historical version of a state under
a compound key: the state address concatenated with the block height at
which that version was written.  For the learned models the key is viewed
as one big integer, ``binary(addr) * 2**64 + blk``, so all versions of an
address are numerically adjacent and sorted by block height.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.codec import int_from_bytes, int_to_bytes

#: Block heights are 64-bit; this sentinel makes ``<addr, MAX_BLK>`` the
#: largest compound key of an address, so a floor search returns the
#: address's latest version (Algorithm 6 line 2).
MAX_BLK = 2**64 - 1


@dataclass(frozen=True, order=True)
class CompoundKey:
    """An address paired with the block height of one of its versions."""

    addr: bytes
    blk: int

    def __post_init__(self) -> None:
        if not 0 <= self.blk <= MAX_BLK:
            raise ValueError(f"block height out of range: {self.blk}")

    def to_int(self) -> int:
        """Big-integer form used by the learned models."""
        return int_from_bytes(self.addr) * 2**64 + self.blk

    def to_bytes(self) -> bytes:
        """Fixed-width binary form ``addr || blk`` used on disk."""
        return self.addr + int_to_bytes(self.blk, 8)

    @classmethod
    def from_int(cls, key: int, addr_size: int) -> "CompoundKey":
        """Inverse of :meth:`to_int` for a known address width."""
        blk = key & MAX_BLK
        addr = int_to_bytes(key >> 64, addr_size)
        return cls(addr=addr, blk=blk)

    @classmethod
    def from_bytes(cls, data: bytes, addr_size: int) -> "CompoundKey":
        """Inverse of :meth:`to_bytes`."""
        if len(data) != addr_size + 8:
            raise ValueError("compound key has wrong width")
        return cls(addr=data[:addr_size], blk=int_from_bytes(data[addr_size:]))

    @classmethod
    def latest_of(cls, addr: bytes) -> "CompoundKey":
        """The search sentinel ``<addr, max_int>`` for latest-value gets."""
        return cls(addr=addr, blk=MAX_BLK)


def addr_of_int(key: int, addr_size: int) -> bytes:
    """Extract the address bytes from a big-integer compound key."""
    return int_to_bytes(key >> 64, addr_size)


def blk_of_int(key: int) -> int:
    """Extract the block height from a big-integer compound key."""
    return key & MAX_BLK
