"""Key-ordered cursors: the unified read-path substrate of the engine.

Every sorted source of compound key-value pairs — the in-memory MB-tree
groups (L0), the immutable on-disk runs, and whole disk levels — exposes
the same tiny cursor protocol (:class:`Cursor`): ``seek(key)`` positions
at the first entry with key >= ``key`` and ``next()`` streams entries in
ascending compound-key order.  A heap-based k-way :class:`MergingCursor`
composes any number of them into one globally ordered stream, resolving
would-be duplicate keys newest-source-wins (the same defence-in-depth
rule as :func:`repro.core.merge.merge_entry_streams`).

On top of the raw merged stream, :func:`resolve_versions` applies MVCC
newest-wins version resolution: for every address it emits the single
version live at ``at_blk`` (``MAX_BLK`` = the latest) and suppresses all
shadowed entries — older versions of the address and versions written
after ``at_blk``.  The engine has no deletes (state updates only, as in
the paper), so shadow suppression is the entire tombstone story.

The classic LSM read-path architecture (RocksDB-style merging iterators
over immutable sorted runs): point lookups, provenance scans, and the
range-scan path (``Cole.scan``) all traverse the *same* source
enumeration (:class:`ReadSource`, built by ``Cole._read_sources``) in
the same freshness order, so Algorithm 6's search order is defined in
exactly one place.  Cursors are snapshot-scoped: they must be created,
driven, and dropped under one :class:`~repro.common.gate.CommitGate`
shared hold — commit checkpoints (exclusive) are what mutate the
structures a cursor walks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.compound import MAX_BLK, addr_of_int, blk_of_int

Entry = Tuple[int, bytes]  # (compound key as big int, value bytes)
ScanTriple = Tuple[bytes, int, bytes]  # (addr, blk, value)


class Cursor:
    """The cursor protocol every sorted source implements.

    ``seek(key)`` positions at the first entry with compound key >=
    ``key``; ``next()`` returns that entry and advances, or ``None``
    once exhausted.  A cursor starts unpositioned — ``seek`` first.
    """

    def seek(self, key: int) -> None:
        raise NotImplementedError

    def next(self) -> Optional[Entry]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Entry]:
        while True:
            entry = self.next()
            if entry is None:
                return
            yield entry


class MemCursor(Cursor):
    """Cursor over one L0 group's MB-tree (leaf-chain iteration)."""

    def __init__(self, group) -> None:
        self._tree = group.tree
        self._iter: Optional[Iterator[Entry]] = None

    def seek(self, key: int) -> None:
        self._iter = self._tree.iter_from(key)

    def next(self) -> Optional[Entry]:
        if self._iter is None:
            return None
        return next(self._iter, None)


class RunCursor(Cursor):
    """Cursor over one immutable run's value file.

    ``seek`` pays one learned-index descent to locate the start
    position; iteration then rides ``ValueFile.scan_from`` — streaming
    page-sequential reads, one page read per ``pairs_per_page`` entries,
    instead of a point lookup per key.
    """

    def __init__(self, run) -> None:
        self._run = run
        self._iter: Optional[Iterator[Tuple[Entry, int]]] = None

    def seek(self, key: int) -> None:
        run = self._run
        floor = run.floor_search(key)
        if floor is None:
            position = 0  # key precedes the whole run
        else:
            entry, position = floor
            if entry[0] < key:
                position += 1
        # Streaming read: tagged sequential so one big scan cannot evict
        # the page cache's protected (hot point-read) segment.
        self._iter = run.value_file.scan_from(position, sequential=True)

    def next(self) -> Optional[Entry]:
        if self._iter is None:
            return None
        found = next(self._iter, None)
        return found[0] if found is not None else None


class ListCursor(Cursor):
    """Cursor over an already-materialized sorted entry list (tests,
    small merges)."""

    def __init__(self, entries: Sequence[Entry]) -> None:
        self._entries = entries
        self._pos = len(entries)

    def seek(self, key: int) -> None:
        lo, hi = 0, len(self._entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        self._pos = lo

    def next(self) -> Optional[Entry]:
        if self._pos >= len(self._entries):
            return None
        entry = self._entries[self._pos]
        self._pos += 1
        return entry


class MergingCursor(Cursor):
    """Heap-based k-way merge of cursors into one ordered stream.

    ``cursors`` are ordered **newest first** (Algorithm 6's freshness
    order).  Compound keys are globally unique within one engine, so
    duplicate keys across sources indicate either corruption or a
    caller merging overlapping snapshots; they resolve newest-wins —
    the heap orders ties by source index, so the freshest source's
    entry is emitted and the shadowed ones are skipped.
    """

    def __init__(self, cursors: Sequence[Cursor]) -> None:
        self._cursors = list(cursors)
        self._heap: List[Tuple[int, int, bytes]] = []
        self._last_key: Optional[int] = None

    def seek(self, key: int) -> None:
        self._heap = []
        self._last_key = None
        for index, cursor in enumerate(self._cursors):
            cursor.seek(key)
            entry = cursor.next()
            if entry is not None:
                self._heap.append((entry[0], index, entry[1]))
        heapq.heapify(self._heap)

    def next(self) -> Optional[Entry]:
        heap = self._heap
        while heap:
            key, index, value = heap[0]
            follower = self._cursors[index].next()
            if follower is not None:
                heapq.heapreplace(heap, (follower[0], index, follower[1]))
            else:
                heapq.heappop(heap)
            if key == self._last_key:
                continue  # shadowed duplicate from an older source
            self._last_key = key
            return key, value
        return None


# =============================================================================
# the unified source enumeration (Algorithm 6's traversal order)
# =============================================================================

@dataclass(frozen=True)
class ReadSource:
    """One sorted source of an engine's read path, freshness-ordered.

    Wraps either an L0 :class:`~repro.core.memlevel.MemGroup` or an
    on-disk :class:`~repro.core.run.Run` behind one interface, labeled
    exactly as in ``root_hash_list`` so provenance proofs can address
    it.  ``Cole._read_sources`` builds the list once per query; point
    lookups (:meth:`floor_search`), provenance scans, and range-scan
    cursors (:meth:`cursor`) all traverse it in the same order.
    """

    label: str
    kind: str  # "mem" | "run"
    source: object

    @classmethod
    def mem(cls, label: str, group) -> "ReadSource":
        return cls(label=label, kind="mem", source=group)

    @classmethod
    def run(cls, label: str, run) -> "ReadSource":
        return cls(label=label, kind="run", source=run)

    def may_contain(self, addr: bytes) -> bool:
        """Bloom pre-check (runs only; L0 has no filter)."""
        if self.kind == "run":
            return self.source.may_contain(addr)
        return True

    def overlaps(self, key_low: int, key_high: int) -> bool:
        """Range pre-check: can this source hold a key in the range?

        Runs answer from their (memoized) first/last key — the standard
        LSM pruning that spares a scan the index descent and page reads
        of runs wholly outside the range.  Mem groups are cheap to seek
        and always checked.
        """
        if self.kind != "run":
            return True
        first, last = self.source.key_range()
        return first <= key_high and last >= key_low

    def floor_search(self, key: int) -> Optional[Entry]:
        """Largest entry with compound key <= ``key``, if any."""
        if self.kind == "run":
            found = self.source.floor_search(key)
            return found[0] if found is not None else None
        return self.source.floor_search(key)

    def cursor(self) -> Cursor:
        return self.source.cursor()


# =============================================================================
# MVCC version resolution over a merged stream
# =============================================================================

def resolve_versions(
    entries: Iterator[Entry],
    *,
    at_blk: int,
    addr_size: int,
    key_high: int,
) -> Iterator[ScanTriple]:
    """Reduce an ordered compound-key stream to live ``(addr, blk,
    value)`` triples.

    For each address the stream yields its versions in ascending block
    order; the live version at ``at_blk`` is the *last* one with
    ``blk <= at_blk``.  Versions written after ``at_blk`` and shadowed
    older versions are suppressed; an address whose every version
    postdates ``at_blk`` did not exist then and is skipped entirely.
    The stream is consumed only up to ``key_high`` (inclusive).
    """
    current_addr: Optional[bytes] = None
    candidate: Optional[ScanTriple] = None
    for key, value in entries:
        if key > key_high:
            break
        addr = addr_of_int(key, addr_size)
        if addr != current_addr:
            if candidate is not None:
                yield candidate
            current_addr = addr
            candidate = None
        blk = blk_of_int(key)
        if blk <= at_blk:
            candidate = (addr, blk, value)  # ascending: later wins
    if candidate is not None:
        yield candidate


def scan_sources(
    sources: Sequence[ReadSource],
    key_low: int,
    key_high: int,
    *,
    at_blk: int = MAX_BLK,
    addr_size: int,
    limit: Optional[int] = None,
) -> List[ScanTriple]:
    """Merge ``sources`` and return up to ``limit`` live triples in
    ``[key_low, key_high]`` — the engine-level scan kernel.

    Must run under the engine's gate held shared for its whole
    duration (the caller's job): the cursors walk live structures.
    """
    merged = MergingCursor(
        [
            source.cursor()
            for source in sources
            if source.overlaps(key_low, key_high)
        ]
    )
    merged.seek(key_low)
    out: List[ScanTriple] = []
    for triple in resolve_versions(
        iter(merged), at_blk=at_blk, addr_size=addr_size, key_high=key_high
    ):
        out.append(triple)
        if limit is not None and len(out) >= limit:
            break
    return out


def addr_successor(addr: bytes) -> Optional[bytes]:
    """Smallest address greater than ``addr`` at the same width, or
    ``None`` at the top of the address space (continuation keys)."""
    as_int = int.from_bytes(addr, "big") + 1
    if as_int >= 1 << (8 * len(addr)):
        return None
    return as_int.to_bytes(len(addr), "big")
