"""On-disk runs: value file + index file + Merkle file + bloom filter.

A run is immutable once built (Section 4: files stay valid until the next
level merge).  Building consumes a sorted stream of compound key-value
pairs exactly once, feeding all three files and the bloom filter
concurrently — the streaming construction of Algorithms 3 and 4.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.bloomfilter import BloomFilter
from repro.common.errors import StorageError
from repro.common.hashing import Digest, hash_concat
from repro.common.params import ColeParams
from repro.core.compound import addr_of_int
from repro.core.indexfile import IndexFile, IndexFileBuilder
from repro.core.merklefile import MerkleFile, MerkleFileBuilder, MerkleRangeProof
from repro.core.valuefile import ValueFile, ValueFileWriter
from repro.diskio.workspace import Workspace

Entry = Tuple[int, bytes]

#: The file suffixes making up one run — the single source of truth for
#: every layer that enumerates a run's artifacts (recovery, deletion,
#: size accounting, `repro info`, snapshots).
RUN_SUFFIXES = (".val", ".idx", ".mrk", ".blm")


@dataclass(frozen=True)
class RunScan:
    """Result of a provenance scan over one run (Algorithm 8 lines 13-18).

    ``entries`` are the disclosed pairs at positions ``lo..hi`` (the query
    results plus up to one boundary pair on each side, needed by the
    verifier to check completeness).
    """

    entries: List[Entry]
    lo: int
    hi: int
    proof: MerkleRangeProof


class Run:
    """One immutable sorted run of a COLE on-disk level."""

    def __init__(
        self,
        workspace: Workspace,
        name: str,
        level: int,
        num_entries: int,
        params: ColeParams,
        merkle_root: Digest,
        bloom: BloomFilter,
    ) -> None:
        self.workspace = workspace
        self.name = name
        self.level = level
        self.num_entries = num_entries
        self.params = params
        self.merkle_root = merkle_root
        self.bloom = bloom
        system = params.system
        self.value_file = ValueFile(
            workspace.open_file(
                f"{name}.val",
                category="value",
                cache_pages=params.value_cache_pages,
            ),
            num_entries,
            system,
        )
        self.index_file = IndexFile(
            workspace.open_file(f"{name}.idx", category="index"), system
        )
        self.merkle_file = MerkleFile(
            workspace.open_file(f"{name}.mrk", category="merkle"),
            num_entries,
            params.mht_fanout,
        )
        self._key_range: Optional[Tuple[int, int]] = None  # lazy, immutable

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        workspace: Workspace,
        name: str,
        level: int,
        entries: Iterable[Entry],
        num_entries: int,
        params: ColeParams,
    ) -> "Run":
        """Build a run by streaming ``entries`` (sorted, exact count) once."""
        system = params.system
        # cache_pages must match Run.__init__'s open of the same file —
        # the workspace's handle cache rejects mismatched re-opens.
        value_writer = ValueFileWriter(
            workspace.open_file(
                f"{name}.val",
                category="value",
                cache_pages=params.value_cache_pages,
            ),
            system,
        )
        index_builder = IndexFileBuilder(
            workspace.open_file(f"{name}.idx", category="index"), system
        )
        merkle_builder = MerkleFileBuilder(
            workspace.open_file(f"{name}.mrk", category="merkle"),
            num_entries,
            params.mht_fanout,
            system.key_size,
        )
        bloom = BloomFilter.for_capacity(
            num_entries, params.bloom_bits_per_key, params.bloom_hashes
        )

        def tee() -> Iterable[Tuple[int, int]]:
            """Feed value/Merkle/bloom, yielding (key, position) for the index."""
            for key, value in entries:
                position = value_writer.add(key, value)
                merkle_builder.add(key, value)
                bloom.add(addr_of_int(key, system.addr_size))
                yield key, position

        index_builder.add_bottom_models(tee())
        count = value_writer.finish()
        if count != num_entries:
            raise StorageError(
                f"run {name}: declared {num_entries} entries, streamed {count}"
            )
        index_builder.finish()
        merkle_root = merkle_builder.finish()
        _persist_bloom(workspace, name, bloom)
        run = cls(workspace, name, level, num_entries, params, merkle_root, bloom)
        return run

    @classmethod
    def load(
        cls,
        workspace: Workspace,
        name: str,
        level: int,
        num_entries: int,
        params: ColeParams,
        merkle_root: Digest,
    ) -> "Run":
        """Re-open a run recorded in the manifest (crash recovery, §4.3)."""
        bloom = _load_bloom(workspace, name)
        return cls(workspace, name, level, num_entries, params, merkle_root, bloom)

    def delete(self) -> None:
        """Remove all files of this run (after a committed level merge)."""
        for suffix in RUN_SUFFIXES:
            self.workspace.remove_file(self.name + suffix)

    # -- authentication -----------------------------------------------------------

    def commitment(self) -> Digest:
        """The run's entry in ``root_hash_list``: Merkle root + bloom (§4)."""
        return hash_concat([self.merkle_root, self.bloom.digest()])

    # -- queries -------------------------------------------------------------------

    def may_contain(self, addr: bytes) -> bool:
        """Bloom pre-check on the address (Algorithm 7 line 2)."""
        return addr in self.bloom

    def floor_search(self, key: int) -> Optional[Tuple[Entry, int]]:
        """Largest pair with pair key <= ``key``: learned index + page step.

        Returns ``(entry, position)`` or ``None`` if ``key`` precedes the
        whole run.  IO cost: one page per index layer (±1 on a miss) plus
        one or two value-file pages — the ``Cmodel`` of Table 1.
        """
        predicted = self.index_file.search(key)
        if predicted is None:
            return None
        return self._floor_entry(key, predicted)

    def _floor_entry(self, key: int, predicted: int) -> Optional[Tuple[Entry, int]]:
        value_file = self.value_file
        last_page = value_file.page_of(self.num_entries - 1)
        page = min(max(predicted, 0), self.num_entries - 1) // value_file.pairs_per_page
        first_key, last_key = value_file.page_bounds(page)
        while key < first_key and page > 0:
            page -= 1
            first_key, last_key = value_file.page_bounds(page)
        if key < first_key:
            return None
        if key > last_key and page < last_page:
            next_first, _next_last = value_file.page_bounds(page + 1)
            if key >= next_first:
                page += 1
        found = value_file.floor_in_page(page, key)
        return found

    def cursor(self):
        """Key-ordered streaming cursor over this run
        (``repro.core.cursor``): one index descent to seek, then
        page-sequential value-file reads."""
        from repro.core.cursor import RunCursor

        return RunCursor(self)

    def key_range(self) -> Tuple[int, int]:
        """Smallest and largest compound key stored in this run.

        Two page reads on first use, then served from memory (the run
        is immutable) — the range-pruning probe of the scan path.
        """
        cached = self._key_range
        if cached is None:
            cached = (
                self.value_file.entry_at(0)[0],
                self.value_file.entry_at(self.num_entries - 1)[0],
            )
            self._key_range = cached
        return cached

    def prov_scan(self, key_low: int, key_high: int) -> RunScan:
        """Disclose the pairs covering ``[key_low, key_high]`` with proof.

        ``lo`` is the floor of ``key_low`` (or position 0), so the verifier
        sees the boundary pair below the range; ``hi`` extends one past the
        last in-range pair (or the end of the run), so the verifier sees
        the boundary pair above the range.
        """
        floor = self.floor_search(key_low)
        lo = floor[1] if floor is not None else 0
        entries: List[Entry] = []
        hi = lo
        for entry, position in self.value_file.scan_from(lo):
            entries.append(entry)
            hi = position
            if entry[0] > key_high:
                break
        proof = self.merkle_file.prove_range(lo, hi)
        return RunScan(entries=entries, lo=lo, hi=hi, proof=proof)

    def storage_bytes(self) -> int:
        """On-disk footprint of this run's four artifacts."""
        total = 0
        for suffix in RUN_SUFFIXES:
            path = self.workspace.path_of(self.name + suffix)
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total


def _persist_bloom(workspace: Workspace, name: str, bloom: BloomFilter) -> None:
    path = workspace.path_of(f"{name}.blm")
    with open(path, "wb") as handle:
        handle.write(bloom.to_bytes())


def _load_bloom(workspace: Workspace, name: str) -> BloomFilter:
    path = workspace.path_of(f"{name}.blm")
    with open(path, "rb") as handle:
        return BloomFilter.from_bytes(handle.read())
