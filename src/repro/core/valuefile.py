"""Value files: the sorted compound key-value pairs of one run (Section 3.2).

Pairs are fixed-width (``addr || blk || value``) and packed
``pairs_per_page`` to a page, so position ``p`` lives on page
``p // pairs_per_page`` — exactly the geometry the learned models' error
bound ε is derived from (2ε = one page of pairs).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.common.errors import StorageError
from repro.common.params import SystemParams
from repro.diskio.pagefile import PagedFile

Entry = Tuple[int, bytes]  # (compound key as big int, value bytes)


class ValueFileWriter:
    """Streaming writer: appends sorted pairs page by page."""

    def __init__(self, file: PagedFile, params: SystemParams) -> None:
        self._file = file
        self._params = params
        self._pairs_per_page = params.pairs_per_page  # hoisted off the add loop
        self._buffer = bytearray()
        self._count = 0
        self._last_key: Optional[int] = None

    def add(self, key: int, value: bytes) -> int:
        """Append one pair; returns its position.  Keys must be increasing."""
        if self._last_key is not None and key <= self._last_key:
            raise StorageError("value file pairs must be strictly increasing")
        if len(value) != self._params.value_size:
            raise StorageError(
                f"value must be {self._params.value_size} bytes, got {len(value)}"
            )
        self._last_key = key
        self._buffer += _encode_pair(key, value, self._params)
        position = self._count
        self._count += 1
        if self._count % self._pairs_per_page == 0:
            self._file.append_page(bytes(self._buffer))
            self._buffer.clear()
        return position

    def finish(self) -> int:
        """Flush the trailing partial page; returns the total pair count."""
        if self._buffer:
            self._file.append_page(bytes(self._buffer))
            self._buffer.clear()
        self._file.flush()
        return self._count

    @property
    def count(self) -> int:
        """Pairs written so far."""
        return self._count


class ValueFile:
    """Read access to a finished value file of ``num_entries`` pairs."""

    def __init__(self, file: PagedFile, num_entries: int, params: SystemParams) -> None:
        self._file = file
        self._params = params
        self.num_entries = num_entries

    @property
    def pairs_per_page(self) -> int:
        """Pairs per page (``2ε``)."""
        return self._params.pairs_per_page

    def page_of(self, position: int) -> int:
        """Page id holding the pair at ``position``."""
        return position // self.pairs_per_page

    def read_page_entries(self, page_id: int) -> List[Entry]:
        """Decode all pairs stored on ``page_id`` (one page read)."""
        data = self._file.read_page(page_id)
        first = page_id * self.pairs_per_page
        count = min(self.pairs_per_page, self.num_entries - first)
        if count <= 0:
            raise StorageError(f"page {page_id} has no entries")
        return [_decode_pair(data, slot, self._params) for slot in range(count)]

    def entry_at(self, position: int) -> Entry:
        """The pair at ``position`` (one page read, minus cache hits)."""
        if not 0 <= position < self.num_entries:
            raise StorageError(f"position {position} out of range")
        entries = self.read_page_entries(self.page_of(position))
        return entries[position % self.pairs_per_page]

    def floor_in_page(self, page_id: int, key: int) -> Optional[Tuple[Entry, int]]:
        """Largest pair on ``page_id`` with pair key <= ``key``, if any."""
        entries = self.read_page_entries(page_id)
        keys = [entry[0] for entry in entries]
        index = bisect.bisect_right(keys, key) - 1
        if index < 0:
            return None
        return entries[index], page_id * self.pairs_per_page + index

    def scan_from(self, position: int) -> Iterator[Tuple[Entry, int]]:
        """Yield ``(pair, position)`` sequentially starting at ``position``.

        Used by provenance queries (Algorithm 8 lines 14-17): after the
        learned index locates the first result, the value file is scanned
        forward page by page.
        """
        page_id = self.page_of(position)
        while position < self.num_entries:
            entries = self.read_page_entries(page_id)
            start_slot = position - page_id * self.pairs_per_page
            for slot in range(start_slot, len(entries)):
                yield entries[slot], position
                position += 1
            page_id += 1

    def iter_entries(self) -> Iterator[Entry]:
        """Yield all pairs in key order (sequential page reads)."""
        for entry, _position in self.scan_from(0):
            yield entry


def _encode_pair(key: int, value: bytes, params: SystemParams) -> bytes:
    addr_and_blk = key.to_bytes(params.key_size, "big")
    return addr_and_blk + value


def _decode_pair(page: bytes, slot: int, params: SystemParams) -> Entry:
    offset = slot * params.pair_size
    key = int.from_bytes(page[offset : offset + params.key_size], "big")
    value = page[offset + params.key_size : offset + params.pair_size]
    return key, value


def write_value_file(
    file: PagedFile, entries: Iterable[Entry], params: SystemParams
) -> int:
    """Write ``entries`` (sorted) to ``file``; returns the pair count."""
    writer = ValueFileWriter(file, params)
    for key, value in entries:
        writer.add(key, value)
    return writer.finish()
