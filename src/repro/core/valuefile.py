"""Value files: the sorted compound key-value pairs of one run (Section 3.2).

Pairs are fixed-width (``addr || blk || value``) and packed
``pairs_per_page`` to a page, so position ``p`` lives on page
``p // pairs_per_page`` — exactly the geometry the learned models' error
bound ε is derived from (2ε = one page of pairs).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.common.errors import StorageError
from repro.common.params import SystemParams
from repro.diskio.pagefile import PagedFile

Entry = Tuple[int, bytes]  # (compound key as big int, value bytes)


class ValueFileWriter:
    """Streaming writer: appends sorted pairs page by page."""

    def __init__(self, file: PagedFile, params: SystemParams) -> None:
        self._file = file
        self._params = params
        self._pairs_per_page = params.pairs_per_page  # hoisted off the add loop
        self._buffer = bytearray()
        self._count = 0
        self._last_key: Optional[int] = None

    def add(self, key: int, value: bytes) -> int:
        """Append one pair; returns its position.  Keys must be increasing."""
        if self._last_key is not None and key <= self._last_key:
            raise StorageError("value file pairs must be strictly increasing")
        if len(value) != self._params.value_size:
            raise StorageError(
                f"value must be {self._params.value_size} bytes, got {len(value)}"
            )
        self._last_key = key
        self._buffer += _encode_pair(key, value, self._params)
        position = self._count
        self._count += 1
        if self._count % self._pairs_per_page == 0:
            self._file.append_page(bytes(self._buffer))
            self._buffer.clear()
        return position

    def finish(self) -> int:
        """Flush the trailing partial page; returns the total pair count."""
        if self._buffer:
            self._file.append_page(bytes(self._buffer))
            self._buffer.clear()
        self._file.flush()
        return self._count

    @property
    def count(self) -> int:
        """Pairs written so far."""
        return self._count


class ValueFile:
    """Read access to a finished value file of ``num_entries`` pairs.

    Decoding is deliberately lazy: page reads return raw bytes, and
    pairs are materialized one slot at a time only when a caller
    consumes them.  Floor searches binary-search the *raw* page (a
    handful of key decodes) instead of materializing every pair on it —
    page decode was the dominant cost of the whole read path.
    """

    def __init__(self, file: PagedFile, num_entries: int, params: SystemParams) -> None:
        self._file = file
        self._params = params
        self.num_entries = num_entries
        # Hoisted off every decode: the frozen-dataclass properties cost
        # a call per access, and a scan decodes many pairs.
        self._pairs_per_page = params.pairs_per_page
        self._pair_size = params.pair_size
        self._key_size = params.key_size

    @property
    def pairs_per_page(self) -> int:
        """Pairs per page (``2ε``)."""
        return self._pairs_per_page

    def page_of(self, position: int) -> int:
        """Page id holding the pair at ``position``."""
        return position // self._pairs_per_page

    def _page_count(self, page_id: int) -> int:
        """Number of pairs stored on ``page_id``."""
        return min(self._pairs_per_page, self.num_entries - page_id * self._pairs_per_page)

    def _slot_key(self, data: bytes, slot: int) -> int:
        offset = slot * self._pair_size
        return int.from_bytes(data[offset : offset + self._key_size], "big")

    def _slot_entry(self, data: bytes, slot: int) -> Entry:
        offset = slot * self._pair_size
        return (
            int.from_bytes(data[offset : offset + self._key_size], "big"),
            data[offset + self._key_size : offset + self._pair_size],
        )

    def read_page_entries(self, page_id: int) -> List[Entry]:
        """Decode all pairs stored on ``page_id`` (one page read)."""
        data = self._file.read_page(page_id)
        count = self._page_count(page_id)
        if count <= 0:
            raise StorageError(f"page {page_id} has no entries")
        return [self._slot_entry(data, slot) for slot in range(count)]

    def entry_at(self, position: int) -> Entry:
        """The pair at ``position`` (one page read, minus cache hits)."""
        if not 0 <= position < self.num_entries:
            raise StorageError(f"position {position} out of range")
        data = self._file.read_page(self.page_of(position))
        return self._slot_entry(data, position % self._pairs_per_page)

    def page_bounds(self, page_id: int) -> Tuple[int, int]:
        """``(first_key, last_key)`` of ``page_id`` — one page read, two
        key decodes (the page-stepping probe of Algorithm 7)."""
        data = self._file.read_page(page_id)
        count = self._page_count(page_id)
        if count <= 0:
            raise StorageError(f"page {page_id} has no entries")
        return self._slot_key(data, 0), self._slot_key(data, count - 1)

    def floor_in_page(self, page_id: int, key: int) -> Optional[Tuple[Entry, int]]:
        """Largest pair on ``page_id`` with pair key <= ``key``, if any.

        Binary search over the raw page: ~log2(pairs_per_page) key
        decodes plus one pair decode for the hit.
        """
        data = self._file.read_page(page_id)
        count = self._page_count(page_id)
        lo, hi = 0, count
        while lo < hi:
            mid = (lo + hi) // 2
            if self._slot_key(data, mid) <= key:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        slot = lo - 1
        return self._slot_entry(data, slot), page_id * self._pairs_per_page + slot

    def scan_from(
        self, position: int, sequential: bool = True
    ) -> Iterator[Tuple[Entry, int]]:
        """Yield ``(pair, position)`` sequentially starting at ``position``.

        The streaming read of provenance queries (Algorithm 8 lines
        14-17) and of every run cursor: one page read per
        ``pairs_per_page`` pairs, each pair decoded only when the
        consumer actually pulls it (a limit-bounded scan stops paying
        mid-page).  Pages are read with the ``sequential`` hint (default
        on — every scan_from caller is streaming), so one large scan
        cannot evict the page cache's protected hot set.
        """
        page_id = self.page_of(position)
        while position < self.num_entries:
            data = self._file.read_page(page_id, sequential=sequential)
            first = page_id * self._pairs_per_page
            for slot in range(position - first, self._page_count(page_id)):
                yield self._slot_entry(data, slot), position
                position += 1
            page_id += 1

    def iter_entries(self) -> Iterator[Entry]:
        """Yield all pairs in key order (sequential page reads)."""
        for entry, _position in self.scan_from(0, sequential=True):
            yield entry


def _encode_pair(key: int, value: bytes, params: SystemParams) -> bytes:
    addr_and_blk = key.to_bytes(params.key_size, "big")
    return addr_and_blk + value


def write_value_file(
    file: PagedFile, entries: Iterable[Entry], params: SystemParams
) -> int:
    """Write ``entries`` (sorted) to ``file``; returns the pair count."""
    writer = ValueFileWriter(file, params)
    for key, value in entries:
        writer.add(key, value)
    return writer.finish()
