"""Pluggable compaction policy: when a cascade merges a level's group.

The cascade machinery (``Cole._sync_cascade`` / ``_async_cascade``) is the
same for every policy — drain L0 into a level-1 run, walk the levels, and
wherever the policy says a writing group overflowed, merge *all* of its
runs into one run at the next level.  What a :class:`CompactionPolicy`
owns is the three decisions the LSM literature varies:

* **when** a group must merge (:meth:`CompactionPolicy.should_merge`),
* **what** it merges (:meth:`CompactionPolicy.merge_sources`), and
* **where** the output goes (:meth:`CompactionPolicy.merge_target`).

``leveling`` is the paper's behaviour, byte-for-byte: a group merges the
instant it holds ``size_ratio`` runs, however small they are.  That is
optimal when every run is full (one rewrite per level per generation),
but the sharded engine's coordinated commits flush *under-full* runs
(every shard flushes when any is full), and leveling then merges long
before the level holds a level's worth of data — pure write
amplification.

``tiering`` merges only when the group genuinely overflows: the group's
total entries reach ``params.level_capacity(level)`` (``B * T**level``).
Under-full sibling runs accumulate instead of being rewritten, cutting
merge bytes by up to the fill-factor deficit, at the cost of more runs
per level on the read path (Dayan & Idreos's Dostoevsky trade-off).  The
fanout is bounded: a group also merges once it holds
``TIERING_FANOUT_FACTOR * size_ratio`` runs, so point reads never probe
an unbounded stack.  On a stream of full runs both policies trigger at
exactly ``size_ratio`` runs, so tiering is never worse than leveling.

The chosen policy is recorded in the manifest and validated on reopen —
the two lay runs out differently, so silently switching policies would
change ``Hstate`` across restarts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.common.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.params import ColeParams
    from repro.core.disklevel import DiskGroup
    from repro.core.run import Run

#: Valid values of ``ColeParams.compaction``.
COMPACTION_POLICIES = ("leveling", "tiering")

#: Tiering merges a group at ``TIERING_FANOUT_FACTOR * size_ratio`` runs
#: even if it is under capacity, bounding read fanout per level.
TIERING_FANOUT_FACTOR = 4


class CompactionPolicy:
    """The cascade's merge decisions; stateless and engine-shared."""

    name: str = ""

    def should_merge(
        self, group: "DiskGroup", paper_level: int, params: "ColeParams"
    ) -> bool:
        """True when ``group`` (the writing group of on-disk level
        ``paper_level``) must be merged into the next level."""
        raise NotImplementedError

    def merge_sources(self, group: "DiskGroup") -> List["Run"]:
        """The runs a triggered merge consumes (oldest first).

        Both shipped policies merge the whole group — partial selection
        would leave runs whose deletion the manifest commit could not
        account for in one atomic step.
        """
        return list(group.runs)

    def merge_target(self, paper_level: int) -> int:
        """Paper-level number the merged output run lands on."""
        return paper_level + 1


class LevelingPolicy(CompactionPolicy):
    """Merge at ``size_ratio`` runs — the paper's Algorithm 1/5 trigger."""

    name = "leveling"

    def should_merge(
        self, group: "DiskGroup", paper_level: int, params: "ColeParams"
    ) -> bool:
        return len(group) >= params.size_ratio


class TieringPolicy(CompactionPolicy):
    """Merge on genuine capacity overflow, with a bounded run fanout."""

    name = "tiering"

    def should_merge(
        self, group: "DiskGroup", paper_level: int, params: "ColeParams"
    ) -> bool:
        if len(group) >= TIERING_FANOUT_FACTOR * params.size_ratio:
            return True
        entries = sum(run.num_entries for run in group.runs)
        return entries >= params.level_capacity(paper_level)


def make_policy(name: str) -> CompactionPolicy:
    """Policy instance for a ``ColeParams.compaction`` value."""
    if name == "leveling":
        return LevelingPolicy()
    if name == "tiering":
        return TieringPolicy()
    raise StorageError(
        f"unknown compaction policy {name!r} (expected one of {COMPACTION_POLICIES})"
    )
