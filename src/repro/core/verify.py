"""Client-side verification of provenance results (Section 6.2).

The verifier holds only the block header's state digest ``Hstate`` and the
query parameters.  It (1) reconstructs every ``root_hash_list`` entry from
the proof items, (2) recomputes ``Hstate`` and compares, (3) re-derives
the result set from the *disclosed* data — never trusting the server's
result list — and (4) checks completeness: every searched structure
discloses boundary entries straddling the query range, skipped runs prove
the address is absent via their bloom filter, and structures stubbed by
the early stop are only acceptable when an older-than-range version was
already disclosed (Algorithm 8 lines 6-8 / 19-21).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bloomfilter import BloomFilter
from repro.common.errors import VerificationError
from repro.common.hashing import Digest, hash_concat
from repro.core.compound import MAX_BLK, addr_of_int, blk_of_int
from repro.core.merklefile import verify_range_proof as verify_merkle_range
from repro.core.proofs import (
    MemProofItem,
    ProvenanceResult,
    RunNegativeItem,
    RunProofItem,
    StubItem,
)
from repro.mbtree.proof import verify_range_proof as verify_mbtree_range


def verify_provenance(
    result: ProvenanceResult,
    expected_state_root: Digest,
    addr_size: int = 32,
    key_width: Optional[int] = None,
) -> List[Tuple[int, bytes]]:
    """VerifyProv of Section 2: authenticate a provenance query result.

    Returns the verified version list ``[(blk, value), ...]`` (ascending,
    within the query range).  Raises :class:`VerificationError` if any
    check fails.  ``key_width`` defaults to ``addr_size + 8``.
    """
    proof = result.proof
    key_width = key_width if key_width is not None else addr_size + 8
    addr = proof.addr
    addr_int = int.from_bytes(addr, "big")
    key_low = addr_int * 2**64 + proof.blk_low - 1
    key_high = addr_int * 2**64 + min(proof.blk_high + 1, MAX_BLK)

    digests: List[Digest] = []
    disclosed: Dict[int, bytes] = {}
    saw_older = False
    saw_stub_after_search = False
    searched_any = False

    for item in proof.items:
        if isinstance(item, StubItem):
            if searched_any:
                saw_stub_after_search = True
            digests.append(item.digest)
            continue
        searched_any = True
        if isinstance(item, MemProofItem):
            mem_root = _mem_root(item, key_width)
            entries = verify_mbtree_range(item.proof, mem_root, key_width)
            _check_mbtree_window(item, key_low, key_high)
            digests.append(mem_root)
        elif isinstance(item, RunProofItem):
            entries = _verify_run_item(item, key_low, key_high, key_width)
            merkle_root = _reconstruct_merkle_root(item, key_width)
            digests.append(hash_concat([merkle_root, item.bloom_digest]))
        elif isinstance(item, RunNegativeItem):
            bloom = BloomFilter.from_bytes(item.bloom_bytes)
            if addr in bloom:
                raise VerificationError(
                    "run was skipped but its bloom filter contains the address"
                )
            digests.append(item.commitment())
            continue
        else:  # pragma: no cover - exhaustive match
            raise VerificationError(f"unknown proof item {type(item).__name__}")
        for entry_key, value in entries:
            if addr_of_int(entry_key, addr_size) != addr:
                continue
            blk = blk_of_int(entry_key)
            if blk > proof.blk_high:
                continue
            disclosed.setdefault(blk, value)
            if blk < proof.blk_low:
                saw_older = True

    reconstructed = hash_concat(digests)
    if reconstructed != expected_state_root:
        raise VerificationError("reconstructed Hstate does not match the header")

    if saw_stub_after_search and not saw_older:
        raise VerificationError(
            "structures were skipped without disclosing a pre-range version"
        )

    versions = sorted(
        (blk, value) for blk, value in disclosed.items() if blk >= proof.blk_low
    )
    if versions != result.versions:
        raise VerificationError("result versions do not match the disclosed data")
    older = [(blk, value) for blk, value in disclosed.items() if blk < proof.blk_low]
    boundary = max(older) if older else None
    if boundary != result.boundary_version:
        raise VerificationError("boundary version does not match the disclosed data")
    return versions


def _mem_root(item: MemProofItem, key_width: int) -> Digest:
    """Recompute the MB-tree root committed by a memory-level proof item."""
    from repro.mbtree.proof import _compute_digest  # shared digest walk

    return _compute_digest(item.proof.root, key_width)


def _check_mbtree_window(item: MemProofItem, key_low: int, key_high: int) -> None:
    """The MB-tree proof's own low/high must cover the query window."""
    if item.proof.low > key_low or item.proof.high < key_high:
        raise VerificationError("MB-tree proof window does not cover the query range")


def _verify_run_item(
    item: RunProofItem, key_low: int, key_high: int, key_width: int
) -> List[Tuple[int, bytes]]:
    """Boundary/completeness checks for one searched run (step 4 of §6.2)."""
    if not item.entries:
        raise VerificationError("searched run disclosed no entries")
    if len(item.entries) != item.hi - item.lo + 1:
        raise VerificationError("run proof entry count mismatch")
    keys = [key for key, _value in item.entries]
    if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
        raise VerificationError("run proof discloses out-of-order entries")
    if keys[0] > key_low and item.lo != 0:
        raise VerificationError("run proof does not prove the lower boundary")
    if keys[-1] <= key_high and item.hi != item.num_entries - 1:
        raise VerificationError("run proof does not prove the upper boundary")
    return item.entries


def _reconstruct_merkle_root(item: RunProofItem, key_width: int) -> Digest:
    """Recompute the run's Merkle root from the disclosed entries."""
    proof = item.merkle_proof
    if proof.lo != item.lo or proof.hi != item.hi:
        raise VerificationError("Merkle proof range mismatch")
    if proof.num_leaves != item.num_entries:
        raise VerificationError("Merkle proof leaf count mismatch")
    # verify_merkle_range recomputes the root and raises on mismatch; to get
    # the root back we recompute it the same way here.
    root = _fold_merkle(item, key_width)
    verify_merkle_range(item.entries, proof, root, key_width)
    return root


def _fold_merkle(item: RunProofItem, key_width: int) -> Digest:
    from repro.core.merklefile import leaf_hash

    proof = item.merkle_proof
    digests = [leaf_hash(key, value, key_width) for key, value in item.entries]
    position = proof.lo
    for layer, (left, right) in enumerate(proof.sibling_layers):
        span = list(left) + digests + list(right)
        span_start = position - len(left)
        parents: List[Digest] = []
        for start in range(0, len(span), proof.fanout):
            parents.append(hash_concat(span[start : start + proof.fanout]))
        digests = parents
        position = span_start // proof.fanout
    if len(digests) != 1:
        raise VerificationError("Merkle proof did not fold to a single root")
    return digests[0]
