"""MB-tree range proofs and their verification.

A proof is a pruned copy of the tree: subtrees off the query path are
replaced by their digests (:class:`ProofHash`), visited leaves appear in
full (:class:`ProofLeaf`).  The verifier recomputes the root digest from
this subtree — by collision resistance of SHA-256, matching the published
root authenticates both the returned entries and their completeness
(pruned subtrees cannot hide entries inside the query range because the
query path covers every child whose separator interval intersects it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.common.errors import VerificationError
from repro.common.hashing import Digest
from repro.mbtree.node import internal_digest, leaf_digest


@dataclass(frozen=True)
class ProofHash:
    """A pruned subtree, represented only by its digest."""

    digest: Digest


@dataclass(frozen=True)
class ProofLeaf:
    """A fully disclosed leaf."""

    keys: List[int]
    values: List[bytes]


@dataclass(frozen=True)
class ProofInternal:
    """An internal node on the query path."""

    keys: List[int]
    children: List["ProofNode"]


ProofNode = Union[ProofHash, ProofLeaf, ProofInternal]


@dataclass(frozen=True)
class MBTreeProof:
    """Range proof for ``[low, high]`` (with floor extension on the left)."""

    root: ProofNode
    low: int
    high: int

    def size_bytes(self) -> int:
        """Approximate wire size of the proof in bytes."""
        return _node_size(self.root)


def _node_size(node: ProofNode) -> int:
    if isinstance(node, ProofHash):
        return 32
    if isinstance(node, ProofLeaf):
        return sum(40 + len(value) for value in node.values)
    size = 40 * len(node.keys)
    return size + sum(_node_size(child) for child in node.children)


def _compute_digest(node: ProofNode, key_width: int) -> Digest:
    if isinstance(node, ProofHash):
        return node.digest
    if isinstance(node, ProofLeaf):
        return leaf_digest(node.keys, node.values, key_width)
    child_digests = [_compute_digest(child, key_width) for child in node.children]
    return internal_digest(node.keys, child_digests, key_width)


def _collect_entries(node: ProofNode, out: List[Tuple[int, bytes]]) -> None:
    if isinstance(node, ProofLeaf):
        out.extend(zip(node.keys, node.values))
    elif isinstance(node, ProofInternal):
        for child in node.children:
            _collect_entries(child, out)


def verify_range_proof(
    proof: MBTreeProof,
    expected_root: Digest,
    key_width: int = 40,
) -> List[Tuple[int, bytes]]:
    """Verify ``proof`` against ``expected_root`` and return the entries.

    Returns every disclosed entry with ``key <= proof.high`` (including the
    floor entry below ``proof.low``, which callers need for provenance
    semantics).  Raises :class:`VerificationError` on any mismatch.
    """
    recomputed = _compute_digest(proof.root, key_width)
    if recomputed != expected_root:
        raise VerificationError("MB-tree proof does not match the root digest")
    disclosed: List[Tuple[int, bytes]] = []
    _collect_entries(proof.root, disclosed)
    if any(disclosed[i][0] >= disclosed[i + 1][0] for i in range(len(disclosed) - 1)):
        raise VerificationError("MB-tree proof discloses out-of-order entries")
    return [(key, value) for key, value in disclosed if key <= proof.high]


def floor_of(entries: List[Tuple[int, bytes]], key: int) -> Optional[Tuple[int, bytes]]:
    """Largest disclosed entry with ``entry key <= key`` (helper for callers)."""
    best: Optional[Tuple[int, bytes]] = None
    for entry_key, value in entries:
        if entry_key <= key and (best is None or entry_key > best[0]):
            best = (entry_key, value)
    return best
