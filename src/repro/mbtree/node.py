"""MB-tree nodes.

Leaf digests commit to the full entry list; internal digests commit to the
separator keys and the child digests, following the MB-tree construction
[29] where every index node is augmented with the hashes of its children.
Domain-separation prefixes (``b"L"`` / ``b"I"``) prevent a leaf from being
re-interpreted as an internal node in a forged proof.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.codec import int_to_bytes
from repro.common.hashing import Digest, hash_concat


def encode_key(key: int, key_width: int) -> bytes:
    """Fixed-width big-endian encoding of a tree key for hashing."""
    return int_to_bytes(key, key_width)


def leaf_digest(keys: List[int], values: List[bytes], key_width: int) -> Digest:
    """Digest committing to a leaf's entries, in order."""
    parts: List[bytes] = [b"L"]
    for key, value in zip(keys, values):
        parts.append(encode_key(key, key_width))
        parts.append(value)
    return hash_concat(parts)


def internal_digest(keys: List[int], child_digests: List[Digest], key_width: int) -> Digest:
    """Digest committing to an internal node's separators and children."""
    parts: List[bytes] = [b"I"]
    for key in keys:
        parts.append(encode_key(key, key_width))
    parts.extend(child_digests)
    return hash_concat(parts)


class Node:
    """Base class for MB-tree nodes; caches its digest until dirtied."""

    __slots__ = ("keys", "parent", "_digest")

    def __init__(self) -> None:
        self.keys: List[int] = []
        self.parent: Optional["Internal"] = None
        self._digest: Optional[Digest] = None

    def mark_dirty(self) -> None:
        """Invalidate the cached digest up to the root."""
        node: Optional[Node] = self
        while node is not None and node._digest is not None:
            node._digest = None
            node = node.parent

    def digest(self, key_width: int) -> Digest:
        raise NotImplementedError


class Leaf(Node):
    """Leaf node: parallel ``keys`` / ``values`` lists plus a next pointer."""

    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__()
        self.values: List[bytes] = []
        self.next: Optional["Leaf"] = None

    def digest(self, key_width: int) -> Digest:
        if self._digest is None:
            self._digest = leaf_digest(self.keys, self.values, key_width)
        return self._digest


class Internal(Node):
    """Internal node: ``len(children) == len(keys) + 1``.

    ``keys[i]`` separates ``children[i]`` (keys < keys[i]) from
    ``children[i+1]`` (keys >= keys[i]).
    """

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: List[Node] = []

    def digest(self, key_width: int) -> Digest:
        if self._digest is None:
            child_digests = [child.digest(key_width) for child in self.children]
            self._digest = internal_digest(self.keys, child_digests, key_width)
        return self._digest

    def child_index_for(self, key: int) -> int:
        """Index of the child subtree that would contain ``key``."""
        import bisect

        return bisect.bisect_right(self.keys, key)
