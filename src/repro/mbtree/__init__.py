"""Merkle B+-tree (MB-tree, Li et al. [29]).

COLE keeps its in-memory level ``L0`` in an MB-tree (Section 3.2) because a
B+-tree compacts into sorted runs cheaply; the CMI baseline uses one
MB-tree per state address as its lower index.  The tree supports inserts,
floor searches (largest key <= query, the lookup rule of Algorithm 6),
in-order iteration for flushing, and authenticated range proofs verified
against the tree's root digest.
"""

from repro.mbtree.tree import MBTree
from repro.mbtree.proof import (
    MBTreeProof,
    ProofHash,
    ProofInternal,
    ProofLeaf,
    verify_range_proof,
)

__all__ = [
    "MBTree",
    "MBTreeProof",
    "ProofHash",
    "ProofInternal",
    "ProofLeaf",
    "verify_range_proof",
]
