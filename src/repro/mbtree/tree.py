"""The MB-tree proper: a B+-tree whose nodes carry Merkle digests.

Only the operations COLE and CMI need are implemented:

* ``insert`` (overwriting duplicates — re-updating a state in the same
  block replaces its value);
* ``floor_search`` — largest key <= query, the rule Algorithm 6 uses with
  the sentinel key ``<addr, max_int>``;
* in-order iteration (flushing L0 to the first on-disk level scans the
  leaf level, Algorithm 1 line 5);
* ``root_hash`` and authenticated ``range_proof``.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.common.hashing import Digest
from repro.mbtree.node import Internal, Leaf, Node
from repro.mbtree.proof import MBTreeProof, ProofHash, ProofInternal, ProofLeaf, ProofNode


class MBTree:
    """Merkle B+-tree over integer keys and byte-string values."""

    def __init__(self, order: int = 16, key_width: int = 40) -> None:
        """Create an empty tree.

        Args:
            order: maximum children per internal node (>= 3).
            key_width: byte width used to encode keys inside digests.
        """
        if order < 3:
            raise ValueError("order must be >= 3")
        self.order = order
        self.key_width = key_width
        self._root: Node = Leaf()
        self._size = 0

    # -- basic properties ----------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        """True if the tree holds no entries."""
        return self._size == 0

    def root_hash(self) -> Digest:
        """Root digest (an empty tree is a single empty leaf)."""
        return self._root.digest(self.key_width)

    def clear(self) -> None:
        """Drop all entries (used when L0 is flushed to disk)."""
        self._root = Leaf()
        self._size = 0

    # -- insert ----------------------------------------------------------------

    def insert(self, key: int, value: bytes) -> None:
        """Insert ``key -> value``, overwriting an existing entry."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value
            leaf.mark_dirty()
            return
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        leaf.mark_dirty()
        self._size += 1
        if len(leaf.keys) >= self.order:
            self._split_leaf(leaf)

    def _find_leaf(self, key: int) -> Leaf:
        node = self._root
        while isinstance(node, Internal):
            node = node.children[node.child_index_for(key)]
        assert isinstance(node, Leaf)
        return node

    def _split_leaf(self, leaf: Leaf) -> None:
        mid = len(leaf.keys) // 2
        right = Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        leaf.mark_dirty()
        self._insert_into_parent(leaf, right.keys[0], right)

    def _split_internal(self, node: Internal) -> None:
        mid = len(node.keys) // 2
        promote = node.keys[mid]
        right = Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        for child in right.children:
            child.parent = right
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        node.mark_dirty()
        self._insert_into_parent(node, promote, right)

    def _insert_into_parent(self, left: Node, key: int, right: Node) -> None:
        parent = left.parent
        if parent is None:
            new_root = Internal()
            new_root.keys = [key]
            new_root.children = [left, right]
            left.parent = new_root
            right.parent = new_root
            self._root = new_root
            return
        index = parent.children.index(left)
        parent.keys.insert(index, key)
        parent.children.insert(index + 1, right)
        right.parent = parent
        parent.mark_dirty()
        if len(parent.children) > self.order:
            self._split_internal(parent)

    # -- lookups -----------------------------------------------------------------

    def get(self, key: int) -> Optional[bytes]:
        """Exact-match lookup."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return None

    def floor_search(self, key: int) -> Optional[Tuple[int, bytes]]:
        """Return the entry with the largest key <= ``key``, if any."""
        if self._size == 0:
            return None
        leaf = self._find_leaf(key)
        index = bisect.bisect_right(leaf.keys, key) - 1
        if index >= 0:
            return leaf.keys[index], leaf.values[index]
        # All keys in this leaf exceed `key`; the floor (if any) is the last
        # entry of the preceding leaf.  Rare enough to find by full walk.
        previous: Optional[Leaf] = None
        for candidate in self._iter_leaves():
            if candidate is leaf:
                break
            previous = candidate
        if previous is None or not previous.keys:
            return None
        return previous.keys[-1], previous.values[-1]

    def items(self) -> Iterator[Tuple[int, bytes]]:
        """Yield all entries in ascending key order."""
        for leaf in self._iter_leaves():
            yield from zip(leaf.keys, leaf.values)

    def iter_from(self, key: int) -> Iterator[Tuple[int, bytes]]:
        """Yield entries with key >= ``key`` in ascending order.

        Seeks the starting leaf directly (one root-to-leaf descent) and
        then rides the leaf chain — the cursor primitive of
        :mod:`repro.core.cursor`.  The tree must not be mutated while
        the iterator is live.
        """
        if self._size == 0:
            return
        leaf: Optional[Leaf] = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        while leaf is not None:
            for position in range(index, len(leaf.keys)):
                yield leaf.keys[position], leaf.values[position]
            leaf = leaf.next
            index = 0

    def range_items(self, low: int, high: int) -> Iterator[Tuple[int, bytes]]:
        """Yield entries with ``low <= key <= high`` in ascending order."""
        for key, value in self.items():
            if key > high:
                return
            if key >= low:
                yield key, value

    def _iter_leaves(self) -> Iterator[Leaf]:
        node = self._root
        while isinstance(node, Internal):
            node = node.children[0]
        leaf: Optional[Leaf] = node  # type: ignore[assignment]
        while leaf is not None:
            yield leaf
            leaf = leaf.next

    # -- authenticated range proofs ------------------------------------------------

    def range_proof(self, low: int, high: int) -> Tuple[List[Tuple[int, bytes]], MBTreeProof]:
        """Authenticated range query for ``[low, high]`` with floor extension.

        Returns the result entries (including the *floor* entry just below
        ``low``, which provenance queries need — it is the version valid at
        the range's lower bound) and a proof subtree from which the verifier
        reconstructs the root digest and checks completeness.
        """
        floor = self.floor_search(low)
        effective_low = floor[0] if floor is not None else low
        subtree = self._build_proof(self._root, effective_low, high)
        proof = MBTreeProof(root=subtree, low=low, high=high)
        results = [
            (key, value)
            for key, value in self.range_items(effective_low, high)
        ]
        return results, proof

    def _build_proof(self, node: Node, low: int, high: int) -> ProofNode:
        if isinstance(node, Leaf):
            return ProofLeaf(keys=list(node.keys), values=list(node.values))
        assert isinstance(node, Internal)
        first = node.child_index_for(low)
        last = node.child_index_for(high)
        children: List[ProofNode] = []
        for index, child in enumerate(node.children):
            if first <= index <= last:
                children.append(self._build_proof(child, low, high))
            else:
                children.append(ProofHash(digest=child.digest(self.key_width)))
        return ProofInternal(keys=list(node.keys), children=children)
