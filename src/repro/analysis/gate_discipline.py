"""gate-discipline: CommitGate usage invariants, checked lexically.

The engine's concurrency contract (DESIGN.md, ``repro.common.gate``) is:

* structural engine state is mutated only under ``gate.exclusive()``;
* the gate is **not reentrant** — public entry points acquire exactly
  once, underscore helpers assume it is already held (that is the whole
  point of the ``root_digest`` / ``_root_digest`` split);
* the gate is a *thread* primitive — acquiring it on the event loop
  blocks every connection, so ``async def`` bodies must hop to the
  executor first.

PR 2's 1800x reader-starvation bug (provenance ran exclusive instead of
shared) is the class of mistake this rule exists to make mechanical.

Three sub-checks, per class that constructs a ``CommitGate`` in its
``__init__``:

1. **unguarded mutator** — an assignment to a tracked structural
   attribute inside a *public* method must sit lexically inside a
   ``with self.gate.exclusive():`` block (dunder methods are exempt:
   construction and teardown are single-threaded by contract);
2. **nested acquisition** — a ``with self.gate...`` inside another, or a
   call to a public gate-acquiring method of the same class while a gate
   block is open, self-deadlocks on the non-reentrant gate;
3. **gate in async def** — any gate acquisition lexically inside an
   ``async def`` (anywhere in the tree) without an executor hop.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.base import Checker, Finding, SourceFile, SourceTree, dotted_name

RULE = "gate-discipline"

#: Structural attributes a reader could observe half-updated; all
#: writes outside ``__init__``/teardown must hold the gate exclusively.
TRACKED_ATTRS = {
    "current_blk",
    "mem_writing",
    "mem_merging",
    "mem_pending",
    "levels",
}

GATE_ACQUIRE_METHODS = {
    "shared",
    "exclusive",
    "acquire_shared",
    "acquire_exclusive",
}


def _gate_call_on_self(node: ast.AST) -> Optional[str]:
    """Return the method name for ``self.gate.<m>(...)`` calls, else None."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) >= 3 and parts[-2] == "gate" and parts[-1] in GATE_ACQUIRE_METHODS:
        return parts[-1]
    return None


def _is_gate_with(item: ast.withitem) -> bool:
    return _gate_call_on_self(item.context_expr) is not None


class _GatedClass:
    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.methods: Dict[str, ast.AST] = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # Public methods that acquire the gate anywhere in their body:
        # calling one of these while already holding the gate deadlocks.
        self.gate_acquirers: Set[str] = set()
        for name, fn in self.methods.items():
            for sub in ast.walk(fn):
                if isinstance(sub, ast.Call) and _gate_call_on_self(sub):
                    self.gate_acquirers.add(name)
                    break


def _find_gated_classes(src: SourceFile) -> List[_GatedClass]:
    out = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        init = next(
            (
                s
                for s in node.body
                if isinstance(s, ast.FunctionDef) and s.name == "__init__"
            ),
            None,
        )
        if init is None:
            continue
        for sub in ast.walk(init):
            if (
                isinstance(sub, ast.Assign)
                and isinstance(sub.value, ast.Call)
                and dotted_name(sub.value.func) in ("CommitGate", "gate.CommitGate")
            ):
                targets = [dotted_name(t) for t in sub.targets]
                if "self.gate" in targets:
                    out.append(_GatedClass(node))
                    break
    return out


def _tracked_assign_lines(node: ast.AST) -> List[Tuple[int, str]]:
    """(line, attr) for every ``self.<tracked> = ...`` in ``node`` itself."""
    out = []
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        name = dotted_name(target)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "self" and parts[1] in TRACKED_ATTRS:
            out.append((node.lineno, parts[1]))
    return out


class GateDisciplineChecker(Checker):
    rule = RULE

    def run(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for src in tree.files:
            for cls in _find_gated_classes(src):
                self._check_class(src, cls, findings)
            self._check_async_gate(src, findings)
        return findings

    # -- sub-checks 1 + 2 --------------------------------------------------

    def _check_class(
        self, src: SourceFile, cls: _GatedClass, findings: List[Finding]
    ) -> None:
        for name, fn in cls.methods.items():
            if name.startswith("__") and name.endswith("__"):
                continue  # construction/teardown are single-threaded
            public = not name.startswith("_")
            self._walk_method(src, cls, name, public, fn, findings)

    def _walk_method(
        self,
        src: SourceFile,
        cls: _GatedClass,
        method: str,
        public: bool,
        fn: ast.AST,
        findings: List[Finding],
    ) -> None:
        def visit(node: ast.AST, gate_depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                # Nested defs run later (usually on the executor or a
                # merge thread); they are analyzed on their own terms.
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                depth = gate_depth
                if isinstance(child, ast.With) and any(
                    _is_gate_with(i) for i in child.items
                ):
                    if gate_depth > 0:
                        findings.append(
                            Finding(
                                RULE,
                                src.path,
                                child.lineno,
                                f"{cls.node.name}.{method}: nested acquisition of "
                                "self.gate — the CommitGate is not reentrant",
                            )
                        )
                    depth = gate_depth + 1
                if public and depth == 0:
                    for line, attr in _tracked_assign_lines(child):
                        findings.append(
                            Finding(
                                RULE,
                                src.path,
                                line,
                                f"{cls.node.name}.{method}: assignment to "
                                f"self.{attr} outside `with self.gate.exclusive()` "
                                "in a public method",
                            )
                        )
                if gate_depth > 0 and isinstance(child, ast.Call):
                    callee = dotted_name(child.func)
                    if callee is not None:
                        parts = callee.split(".")
                        if (
                            len(parts) == 2
                            and parts[0] == "self"
                            and not parts[1].startswith("_")
                            and parts[1] in cls.gate_acquirers
                        ):
                            findings.append(
                                Finding(
                                    RULE,
                                    src.path,
                                    child.lineno,
                                    f"{cls.node.name}.{method}: calls self."
                                    f"{parts[1]}() while holding self.gate — "
                                    f"{parts[1]} re-acquires the non-reentrant "
                                    "gate (use the underscore helper)",
                                )
                            )
                visit(child, depth)

        visit(fn, 0)

    # -- sub-check 3 -------------------------------------------------------

    def _check_async_gate(self, src: SourceFile, findings: List[Finding]) -> None:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            body = self._async_body(node)
            # A matched `with` already covers its own context call.
            with_calls = {
                id(i.context_expr)
                for sub in body
                if isinstance(sub, ast.With)
                for i in sub.items
                if _is_gate_with(i)
            }
            for sub in body:
                hit: Optional[int] = None
                if isinstance(sub, ast.With) and any(
                    _is_gate_with(i) for i in sub.items
                ):
                    hit = sub.lineno
                elif isinstance(sub, ast.Call) and id(sub) not in with_calls:
                    name = dotted_name(sub.func)
                    if name is not None:
                        parts = name.split(".")
                        if (
                            len(parts) >= 2
                            and parts[-2] == "gate"
                            and parts[-1] in GATE_ACQUIRE_METHODS
                        ):
                            hit = sub.lineno
                if hit is not None:
                    findings.append(
                        Finding(
                            RULE,
                            src.path,
                            hit,
                            f"async def {node.name}: acquires a CommitGate on "
                            "the event loop — hop to the executor "
                            "(run_in_executor / to_thread) instead",
                        )
                    )

    def _async_body(self, fn: ast.AsyncFunctionDef) -> List[ast.AST]:
        """Nodes lexically in ``fn``'s own body: nested sync defs run on
        the executor, nested async defs are walked separately — skip both."""
        out: List[ast.AST] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                out.append(child)
                visit(child)

        visit(fn)
        return out
