"""``repro.analysis`` — the invariant lint suite (``repro lint``).

Four AST checkers encode the concurrency and protocol invariants that
previously lived only in DESIGN.md prose (see each module's docstring
for the bug class it targets):

* :mod:`~repro.analysis.gate_discipline` — CommitGate usage;
* :mod:`~repro.analysis.async_blocking` — no sync IO on the event loop;
* :mod:`~repro.analysis.protocol_surface` — Op/Status completeness;
* :mod:`~repro.analysis.error_taxonomy` — typed, never-swallowed errors.

The dynamic half — the ``REPRO_DEBUG_LOCKS=1`` lock-order detector —
lives in :mod:`repro.common.debuglock` (the locks it wraps sit below
this package) and is re-exported here as part of the analysis surface.
"""

from repro.analysis.base import Checker, Finding, SourceTree, load_tree
from repro.analysis.runner import Report, default_checkers, run_lint
from repro.common.debuglock import (
    DebugLock,
    LockOrderError,
    LockOrderGraph,
    debug_locks_enabled,
    maybe_debug_lock,
    reset_lock_order,
)

__all__ = [
    "Checker",
    "DebugLock",
    "Finding",
    "LockOrderError",
    "LockOrderGraph",
    "Report",
    "SourceTree",
    "debug_locks_enabled",
    "default_checkers",
    "load_tree",
    "maybe_debug_lock",
    "reset_lock_order",
    "run_lint",
]
