"""The ``repro lint`` runner: load tree, run checkers, emit the report.

The JSON report schema is pinned (and asserted by ``tests/test_analysis``)::

    {
      "version": 1,
      "root": "<analysis root>",
      "rules": ["async-blocking-call", ...],
      "counts": {"<rule>": <int>, ...},   # post-suppression
      "suppressed": <int>,
      "findings": [{"rule", "path", "line", "message"}, ...]
    }

Exit status: 0 on zero findings, 1 otherwise — CI runs it as a hard gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.async_blocking import AsyncBlockingChecker
from repro.analysis.base import Checker, Finding, SourceTree, load_tree
from repro.analysis.error_taxonomy import ErrorTaxonomyChecker
from repro.analysis.gate_discipline import GateDisciplineChecker
from repro.analysis.protocol_surface import ProtocolSurfaceChecker

REPORT_VERSION = 1


def default_checkers() -> List[Checker]:
    return [
        GateDisciplineChecker(),
        AsyncBlockingChecker(),
        ProtocolSurfaceChecker(),
        ErrorTaxonomyChecker(),
    ]


def default_root() -> Path:
    """The installed ``repro`` package directory (the live tree)."""
    return Path(__file__).resolve().parent.parent


@dataclass
class Report:
    root: str
    findings: List[Finding]
    suppressed: int
    rules: List[str] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {rule: 0 for rule in self.rules}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "root": self.root,
            "rules": self.rules,
            "counts": self.counts,
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def render_text(self) -> str:
        if not self.findings:
            note = f" ({self.suppressed} suppressed)" if self.suppressed else ""
            return f"repro lint: 0 findings{note}"
        lines = [f.render() for f in self.findings]
        lines.append(
            f"repro lint: {len(self.findings)} finding(s), "
            f"{self.suppressed} suppressed"
        )
        return "\n".join(lines)


def run_lint(
    root: Optional[Path] = None,
    checkers: Optional[Sequence[Checker]] = None,
    tree: Optional[SourceTree] = None,
) -> Report:
    """Run ``checkers`` over ``root`` (default: the live repro tree)."""
    if tree is None:
        tree = load_tree(root if root is not None else default_root())
    active = list(checkers) if checkers is not None else default_checkers()
    kept: List[Finding] = []
    suppressed = 0
    for checker in active:
        for finding in checker.run(tree):
            src = tree.get(finding.path)
            if src is not None and src.suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return Report(
        root=str(tree.root),
        findings=kept,
        suppressed=suppressed,
        rules=[c.rule for c in active],
    )
