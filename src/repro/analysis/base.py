"""Shared plumbing for the ``repro lint`` static checkers.

Every checker is a small :mod:`ast` visitor over the parsed ``src/repro``
tree (or a fixture tree in tests).  This module owns the pieces they
share: loading and parsing the tree once, the :class:`Finding` record,
and the per-line suppression syntax::

    risky_call()  # repro-lint: disable=async-blocking-call

A suppression comment names one or more rules (comma-separated) and
silences findings **on that physical line only** — the runner drops a
finding when its rule appears in the suppression set of its line.  Every
suppression in the live tree is expected to carry a justification in the
surrounding code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set

SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source line."""

    rule: str
    path: str
    line: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule names disabled on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = SUPPRESS_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            out[lineno] = {rule for rule in rules if rule}
    return out


@dataclass
class SourceFile:
    """One parsed module: path (posix, relative to the tree root), text,
    AST, and its per-line suppression map."""

    path: str
    text: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]]

    def suppressed(self, rule: str, line: int) -> bool:
        return rule in self.suppressions.get(line, set())


class SourceTree:
    """The parsed file set one lint run operates on."""

    def __init__(self, root: Path, files: List[SourceFile]) -> None:
        self.root = root
        self.files = files
        self._by_path = {f.path: f for f in files}

    def get(self, relpath: str) -> Optional[SourceFile]:
        return self._by_path.get(relpath)

    def under(self, *prefixes: str) -> List[SourceFile]:
        """Files whose relative path starts with any of ``prefixes``."""
        return [
            f for f in self.files if any(f.path.startswith(p) for p in prefixes)
        ]


def load_tree(root: Path) -> SourceTree:
    """Parse every ``.py`` file under ``root`` into a :class:`SourceTree`."""
    files: List[SourceFile] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel:
            continue
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        files.append(SourceFile(rel, text, tree, parse_suppressions(text)))
    return SourceTree(root, files)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Checker:
    """Base class: one rule, one pass over the tree."""

    rule: str = ""

    def run(self, tree: SourceTree) -> List[Finding]:
        raise NotImplementedError
