"""async-blocking-call: no synchronous IO on the event loop.

The serving design runs **all** blocking engine work on the thread-pool
executor (``ColeServer._run``); the event loop only parses frames and
awaits futures.  One stray ``fsync`` or gate acquisition inside an
``async def`` stalls every connection on the server — and nothing
crashes, it just gets slow, which is why this must be a lint rule and
not a code review hope.

Scope: ``async def`` bodies in ``server/``, ``cluster/`` and
``replication/``.  Nested *sync* defs and lambdas inside an async body
are skipped — they are the executor thunks themselves.  Flagged calls:

* known blocking module calls (``os.pread``/``pwrite``/``fsync``/...,
  ``time.sleep``, ``open``, blocking ``socket`` constructors);
* any CommitGate method on an attribute named ``gate``;
* constructors that do recovery IO (``Cole``, ``ShardedCole``,
  ``WriteAheadLog``, ``PagedFile``);
* gated engine methods called on a receiver named ``engine`` and WAL
  methods (append/sync/close) on a receiver named ``wal`` — these block
  on the gate or on file IO respectively.

The sanctioned escape is an executor hop: passing the bound method to
``run_in_executor``/``to_thread`` (or ``self._run``) is not a call and
is never flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.base import Checker, Finding, SourceFile, SourceTree, dotted_name

RULE = "async-blocking-call"

SCOPES = ("server/", "cluster/", "replication/")

BLOCKING_CALLS = {
    "open",
    "time.sleep",
    "os.pread",
    "os.pwrite",
    "os.read",
    "os.write",
    "os.fsync",
    "os.fdatasync",
    "os.open",
    "os.sendfile",
    "os.makedirs",
    "os.replace",
    "socket.socket",
    "socket.create_connection",
}

BLOCKING_CONSTRUCTORS = {"Cole", "ShardedCole", "WriteAheadLog", "PagedFile"}

GATE_METHODS = {
    "shared",
    "exclusive",
    "acquire_shared",
    "acquire_exclusive",
    "release_shared",
    "release_exclusive",
}

#: Public engine entry points that take the CommitGate (or join merge
#: threads, for ``close``/``wait_for_merges``).
ENGINE_METHODS = {
    "get",
    "get_at",
    "get_many",
    "put",
    "put_many",
    "scan",
    "prov_query",
    "prov_query_anchored",
    "begin_block",
    "commit_block",
    "rewind_to",
    "root_digest",
    "storage_bytes",
    "root_hash_list",
    "shard_roots",
    "close",
    "wait_for_merges",
}

#: WAL methods that hit the filesystem (append = write syscall,
#: sync = fsync, close = flush + fsync).
WAL_METHODS = {"append_put", "append_puts", "append_commit", "sync", "close"}


def _classify(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    if name in BLOCKING_CALLS:
        return f"blocking call {name}()"
    if name in BLOCKING_CONSTRUCTORS:
        return f"{name}() constructor does recovery/file IO"
    parts = name.split(".")
    if len(parts) >= 2:
        receiver, method = parts[-2], parts[-1]
        if receiver == "gate" and method in GATE_METHODS:
            return f"CommitGate.{method}() blocks the loop"
        if receiver == "engine" and method in ENGINE_METHODS:
            return f"engine.{method}() takes the CommitGate"
        if receiver == "wal" and method in WAL_METHODS:
            return f"wal.{method}() does file IO"
    return None


class AsyncBlockingChecker(Checker):
    rule = RULE

    def run(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for src in tree.under(*SCOPES):
            self._check_file(src, findings)
        return findings

    def _check_file(self, src: SourceFile, findings: List[Finding]) -> None:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            self._check_async_def(src, node, findings)

    def _check_async_def(
        self, src: SourceFile, fn: ast.AsyncFunctionDef, findings: List[Finding]
    ) -> None:
        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, ast.Call):
                    reason = _classify(child)
                    if reason is not None:
                        findings.append(
                            Finding(
                                RULE,
                                src.path,
                                child.lineno,
                                f"async def {fn.name}: {reason}; hop to the "
                                "executor (run_in_executor / to_thread)",
                            )
                        )
                visit(child)

        visit(fn)
