"""protocol-surface: every Op/Status lands everywhere it must.

Adding a protocol op is an N-place edit: the ``Op`` member, an encode
helper, the server dispatch branch, a client method, and (for statuses)
the ``check_status`` referral decoder.  PR 8's ``MOVED`` plumbing
touched all of them; forgetting one produces a server that silently
answers ``ERROR unknown op`` or a client that cannot speak the op at
all.  This rule makes the completeness mechanical:

* every ``Op`` member must be referenced by at least one module-level
  helper in ``server/protocol.py`` (its encode/decode path), appear in
  ``server/server.py`` (the dispatch branch), and be *reachable from a
  client*: a client file either references ``Op.X`` directly or calls
  one of the protocol helpers that does;
* every ``Status`` member must be referenced by a protocol helper, and
  handled in ``check_status`` — except the success statuses (``OK``,
  ``NOT_FOUND``) that helpers return to callers as values.

The checker is driven entirely by the parsed ``Op``/``Status`` class
bodies, so adding ``Op`` 15 with a missing client method turns CI red
with three precise findings instead of a 2 a.m. page.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.base import Checker, Finding, SourceFile, SourceTree, dotted_name

RULE = "protocol-surface"

PROTOCOL_FILE = "server/protocol.py"
SERVER_FILE = "server/server.py"
#: Files that originate requests.  ``cluster/node.py`` is on the list
#: because nodes are clients of their peers during migration (ADMIN).
CLIENT_FILES = ("server/client.py", "cluster/client.py", "cluster/node.py")

#: Statuses helpers return to the caller as data rather than raise in
#: ``check_status`` (OK payloads and the GET miss encoding).
SUCCESS_STATUSES = {"OK", "NOT_FOUND"}


def _enum_members(src: SourceFile, class_name: str) -> Dict[str, int]:
    """Member name -> definition line for ``class_name``'s int members."""
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            out: Dict[str, int] = {}
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)
                ):
                    out[stmt.targets[0].id] = stmt.lineno
            return out
    return {}


def _member_refs(node: ast.AST, class_name: str) -> Set[str]:
    """``X`` for every ``<class_name>.X`` attribute access under ``node``."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            name = dotted_name(sub)
            if name is not None and name.startswith(class_name + "."):
                out.add(name.split(".", 1)[1].split(".")[0])
    return out


def _helper_refs(src: SourceFile, class_name: str) -> Dict[str, Set[str]]:
    """member -> names of module-level functions referencing it."""
    out: Dict[str, Set[str]] = {}
    for stmt in src.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for member in _member_refs(stmt, class_name):
                out.setdefault(member, set()).add(stmt.name)
    return out


def _names_used(src: SourceFile) -> Set[str]:
    """Every bare name and attribute name appearing in the module."""
    out: Set[str] = set()
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Name):
            out.add(node.id)
        elif isinstance(node, ast.Attribute):
            out.add(node.attr)
    return out


class ProtocolSurfaceChecker(Checker):
    rule = RULE

    def run(self, tree: SourceTree) -> List[Finding]:
        protocol = tree.get(PROTOCOL_FILE)
        if protocol is None:
            return []
        findings: List[Finding] = []
        ops = _enum_members(protocol, "Op")
        statuses = _enum_members(protocol, "Status")
        op_helpers = _helper_refs(protocol, "Op")
        status_helpers = _helper_refs(protocol, "Status")

        server = tree.get(SERVER_FILE)
        server_ops = (
            _member_refs(server.tree, "Op") if server is not None else set()
        )
        client_names: Set[str] = set()
        client_ops: Set[str] = set()
        for path in CLIENT_FILES:
            client = tree.get(path)
            if client is not None:
                client_names |= _names_used(client)
                client_ops |= _member_refs(client.tree, "Op")

        for member in sorted(ops):
            line = ops[member]
            helpers = op_helpers.get(member, set())
            if not helpers:
                findings.append(
                    Finding(
                        RULE,
                        protocol.path,
                        line,
                        f"Op.{member}: no encode/decode helper in protocol.py "
                        "references it",
                    )
                )
            if server is not None and member not in server_ops:
                findings.append(
                    Finding(
                        RULE,
                        protocol.path,
                        line,
                        f"Op.{member}: no dispatch branch in {SERVER_FILE} "
                        "references it",
                    )
                )
            if client_names and member not in client_ops and not (
                helpers & client_names
            ):
                findings.append(
                    Finding(
                        RULE,
                        protocol.path,
                        line,
                        f"Op.{member}: unreachable from any client file "
                        f"({', '.join(CLIENT_FILES)}) — no client method",
                    )
                )

        check_status_refs: Set[str] = set()
        for stmt in protocol.tree.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "check_status":
                check_status_refs = _member_refs(stmt, "Status")
        for member in sorted(statuses):
            line = statuses[member]
            if member not in status_helpers:
                findings.append(
                    Finding(
                        RULE,
                        protocol.path,
                        line,
                        f"Status.{member}: no protocol helper references it",
                    )
                )
            if member not in check_status_refs and member not in SUCCESS_STATUSES:
                findings.append(
                    Finding(
                        RULE,
                        protocol.path,
                        line,
                        f"Status.{member}: not handled in check_status()",
                    )
                )
        return findings
