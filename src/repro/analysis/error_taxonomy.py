"""error-taxonomy: errors are typed, and never silently swallowed.

Two failure modes this rule encodes:

* **swallowed errors** — a bare ``except:`` (anywhere in the tree) or an
  ``except Exception:`` / ``except BaseException:`` whose body is only
  ``pass``.  The WAL/durability layers turn swallowed exceptions into
  acknowledged-but-lost writes; a best-effort handler must either narrow
  the exception tuple or carry a suppression comment justifying why
  dropping the error is safe at that site.
* **untyped raises** — in ``core/``, ``wal/`` and ``server/``, raised
  exception classes must derive from the :mod:`repro.common.errors`
  hierarchy so callers can catch ``ReproError`` at the process boundary
  and everything else is a genuine bug.  Argument-validation builtins
  (``ValueError``/``TypeError``/``KeyError``) and control-flow builtins
  (``NotImplementedError``/``StopIteration``/``TimeoutError``) are
  allowed; ``raise Exception``/``RuntimeError`` and ad-hoc local classes
  are findings.

The ReproError hierarchy is computed from the tree itself (a fixpoint
over every ``class X(Y)`` in the file set), so subclasses defined
outside ``common/errors.py`` — e.g. ``Referral(StorageError)`` in the
protocol module — are recognized without maintaining a list here.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.base import Checker, Finding, SourceFile, SourceTree, dotted_name

RULE = "error-taxonomy"

RAISE_SCOPES = ("core/", "wal/", "server/")

#: Builtins sanctioned outside the ReproError hierarchy: argument
#: validation and python control-flow conventions.
ALLOWED_BUILTINS = {
    "ValueError",
    "TypeError",
    "KeyError",
    "NotImplementedError",
    "StopIteration",
    "StopAsyncIteration",
    "TimeoutError",
    "AssertionError",
}

ROOT_ERROR = "ReproError"


def _broad_names(handler: ast.ExceptHandler) -> bool:
    """True if the handler catches Exception or BaseException."""
    node = handler.type
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in nodes:
        name = dotted_name(item) if item is not None else None
        if name in ("Exception", "BaseException"):
            return True
    return False


def _repro_error_classes(tree: SourceTree) -> Set[str]:
    """Class names deriving (transitively) from ReproError, tree-wide."""
    bases: Dict[str, Set[str]] = {}
    for src in tree.files:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                names = set()
                for base in node.bases:
                    name = dotted_name(base)
                    if name is not None:
                        names.add(name.split(".")[-1])
                bases.setdefault(node.name, set()).update(names)
    derived = {ROOT_ERROR}
    changed = True
    while changed:
        changed = False
        for cls, parents in bases.items():
            if cls not in derived and parents & derived:
                derived.add(cls)
                changed = True
    return derived


class ErrorTaxonomyChecker(Checker):
    rule = RULE

    def run(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        derived = _repro_error_classes(tree)
        for src in tree.files:
            self._check_handlers(src, findings)
        for src in tree.under(*RAISE_SCOPES):
            self._check_raises(src, derived, findings)
        return findings

    def _check_handlers(self, src: SourceFile, findings: List[Finding]) -> None:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    Finding(
                        RULE,
                        src.path,
                        node.lineno,
                        "bare `except:` — name the exceptions (it also "
                        "catches KeyboardInterrupt/SystemExit)",
                    )
                )
                continue
            body_is_pass = all(isinstance(stmt, ast.Pass) for stmt in node.body)
            if body_is_pass and _broad_names(node):
                findings.append(
                    Finding(
                        RULE,
                        src.path,
                        node.lineno,
                        "`except Exception: pass` swallows every error — "
                        "narrow the tuple or justify with a suppression",
                    )
                )

    def _check_raises(
        self, src: SourceFile, derived: Set[str], findings: List[Finding]
    ) -> None:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            cls = self._raised_class(node.exc)
            if cls is None:
                continue  # re-raise of a stored/caught exception object
            if cls in derived or cls in ALLOWED_BUILTINS:
                continue
            findings.append(
                Finding(
                    RULE,
                    src.path,
                    node.lineno,
                    f"raise {cls}: not part of the repro.common.errors "
                    "hierarchy (derive it from ReproError)",
                )
            )

    def _raised_class(self, exc: ast.expr) -> Optional[str]:
        """Class name for ``raise X(...)`` / ``raise X``, else None."""
        node = exc.func if isinstance(exc, ast.Call) else exc
        name = dotted_name(node)
        if name is None:
            return None
        last = name.split(".")[-1]
        # `raise exc` / `raise self._startup_error` re-raises a value;
        # only PascalCase names are treated as classes.
        if name.startswith("self.") or not last[:1].isupper():
            return None
        return last
