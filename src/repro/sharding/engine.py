"""Sharded COLE: hash-partitioned scale-out of the storage engine.

One :class:`ShardedCole` owns a directory of ``num_shards`` fully
independent :class:`~repro.core.storage.Cole` instances — each with its
own workspace subdirectory, manifest, crash recovery, and background
merges — and the address space hash-partitioned across them
(``repro.sharding.router``).  Because every ``<addr, blk>`` compound key
of one address lives in exactly one shard, reads, provenance scans, and
proofs are single-shard operations; only the block lifecycle fans out.

The composite state root extends Algorithm 5's determinism argument: each
shard's ``Hstate`` is deterministic at its commit checkpoints, so the
ordered hash over per-shard roots is too, regardless of merge timing *and*
of commit scheduling across shards.  Commits fan out through a thread
pool so the per-shard merge cascades — the blocking part of a commit —
overlap in wall-clock time.

Durability composes per shard (Section 4.3): each shard records its own
checkpoint, recovery replays the transaction log from the *earliest*
shard checkpoint, and :meth:`ShardedCole.replay_put` drops writes that a
shard already holds durably.
"""

from __future__ import annotations

import heapq
import itertools
import os
from concurrent.futures import ThreadPoolExecutor
from operator import itemgetter
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.chain.backend import StorageBackend
from repro.common.errors import StorageError
from repro.common.gate import CommitGate
from repro.common.hashing import Digest, hash_concat
from repro.common.params import ShardParams
from repro.core.cursor import ScanTriple, addr_successor
from repro.core.storage import Cole
from repro.diskio.iostats import IOStats
from repro.sharding.proofs import ShardedProvenanceResult
from repro.sharding.router import shard_of


def scan_page_size(limit: int, num_shards: int) -> int:
    """Adaptive per-shard page for a cross-shard scan of ``limit``
    results: each shard's expected share plus slack, refilled by
    continuation when the merge drains a shard early.

    Module-level because it defines the *deployment request pattern*:
    the fig20 benchmark replays exactly the per-shard requests this
    sizing produces, so the engine and the measurement cannot drift.
    """
    return max(8, -(-limit // num_shards) + 4)


class ShardedCole(StorageBackend):
    """N independent COLE shards behind the one-engine storage contract."""

    def __init__(
        self,
        directory: str,
        params: Optional[ShardParams] = None,
        stats: Optional[IOStats] = None,
    ) -> None:
        """Open (creating or recovering) every shard under ``directory``."""
        self.params = params if params is not None else ShardParams()
        self.stats = stats if stats is not None else IOStats()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.shards: List[Cole] = [
            Cole(self.shard_directory(index), self.params.cole, stats=self.stats)
            for index in range(self.params.num_shards)
        ]
        workers = self.params.commit_workers or self.params.num_shards
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cole-shard"
        )
        self.current_blk = max(shard.current_blk for shard in self.shards)
        # Cross-shard atomicity: single-shard reads (get / get_at) ride
        # each shard's own gate; ops that must observe every shard at one
        # instant (provenance anchored to the composite root, the
        # shard-root vector) hold this top-level gate shared, and every
        # mutator (puts, composite commits, rewind) holds it exclusive.
        # Ordering is always top gate before shard gate, so the two
        # levels cannot deadlock.
        self.gate = CommitGate("shardedcole-gate")
        # Hot addresses route repeatedly; memoizing addr -> shard index
        # beats recomputing crc32 per put.  Bounded so an unbounded
        # address space cannot grow it without limit.
        self._route_cache: dict = {}
        self._route_cache_limit = 1 << 20

    def shard_directory(self, index: int) -> str:
        """Workspace subdirectory of shard ``index``."""
        return os.path.join(self.directory, f"shard-{index:02d}")

    def _route(self, addr: bytes) -> int:
        cache = self._route_cache
        index = cache.get(addr)
        if index is None:
            index = shard_of(addr, len(self.shards))
            if len(cache) >= self._route_cache_limit:
                cache.clear()
            cache[addr] = index
        return index

    def _shard_for(self, addr: bytes) -> Cole:
        return self.shards[self._route(addr)]

    # =========================================================================
    # block lifecycle
    # =========================================================================

    def begin_block(self, height: int) -> None:
        """Start block ``height`` on every shard.

        Holds the top gate while the per-shard ``begin_block`` calls
        take each shard's own gate — the documented top-before-shard
        order, so this cannot deadlock against readers.
        """
        with self.gate.exclusive():
            if height < self.current_blk:
                raise StorageError(
                    "block heights must be non-decreasing (no forks, §4.3)"
                )
            self.current_blk = height
            for shard in self.shards:
                shard.begin_block(height)

    def commit_block(self) -> Digest:
        """Finalize the block on every shard; returns the composite root.

        Cascades are **coordinated**: when any shard's L0 is at capacity,
        every shard cascades on this block, through the thread pool — so
        the per-shard flush builds and manifest fsyncs always overlap
        instead of landing on whichever later blocks each shard's own
        fill would have picked.  The trigger is a deterministic function
        of the put stream, so the composite ``Hstate`` stays identical
        across nodes.  Blocks where no shard is at capacity commit
        inline: the pool round-trip costs more than a root recompute.
        """
        with self.gate.exclusive():
            cascade = any(shard.needs_cascade() for shard in self.shards)
            if cascade and len(self.shards) > 1:
                roots = list(
                    self._pool.map(
                        lambda shard: shard.commit_block(force_cascade=True), self.shards
                    )
                )
            else:
                roots = [
                    shard.commit_block(force_cascade=cascade) for shard in self.shards
                ]
            return hash_concat(roots)

    # =========================================================================
    # write path
    # =========================================================================

    def put(self, addr: bytes, value: bytes) -> None:
        """Insert a state update on the owning shard."""
        with self.gate.exclusive():
            self._shard_for(addr).put(addr, value)

    def put_many(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        """Batched put: one routing pass, then one batch per touched shard."""
        num_shards = len(self.shards)
        with self.gate.exclusive():
            if num_shards == 1:
                self.shards[0].put_many(items)
                return
            route = self._route
            buckets: List[List[Tuple[bytes, bytes]]] = [[] for _ in range(num_shards)]
            for item in items:
                buckets[route(item[0])].append(item)
            for shard, bucket in zip(self.shards, buckets):
                if bucket:
                    shard.put_many(bucket)

    def replay_put(self, addr: bytes, value: bytes) -> bool:
        """A crash-recovery replay write (Section 4.3, per shard).

        Shards checkpoint independently, so the log is replayed from the
        earliest shard checkpoint (:attr:`checkpoint_blk`); writes whose
        block a shard already holds durably are dropped here.  Returns
        True when the put was applied.
        """
        with self.gate.exclusive():
            shard = self._shard_for(addr)
            if self.current_blk <= shard.checkpoint_blk:
                return False
            shard.put(addr, value)
            return True

    # =========================================================================
    # read path
    # =========================================================================

    def get(self, addr: bytes) -> Optional[bytes]:
        """Latest value of ``addr`` or ``None`` (single-shard lookup)."""
        return self._shard_for(addr).get(addr)

    def get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        """Value of ``addr`` as of block ``blk``."""
        return self._shard_for(addr).get_at(addr, blk)

    def get_many(self, addrs: List[bytes]) -> List[Optional[bytes]]:
        """Batched get: one routing pass, one batched lookup per shard.

        Like :meth:`get`, rides each touched shard's own gate (a batch
        of latest-value reads needs no cross-shard instant); shards that
        own none of the batch are never touched, and multi-shard batches
        fan out on the commit pool so per-shard source walks overlap.
        """
        num_shards = len(self.shards)
        if num_shards == 1:
            return self.shards[0].get_many(list(addrs))
        route = self._route
        buckets: List[List[int]] = [[] for _ in range(num_shards)]
        for index, addr in enumerate(addrs):
            buckets[route(addr)].append(index)
        touched = [
            (shard, positions)
            for shard, positions in zip(self.shards, buckets)
            if positions
        ]
        results: List[Optional[bytes]] = [None] * len(addrs)

        def lookup(job: Tuple[Cole, List[int]]) -> Tuple[List[int], List[Optional[bytes]]]:
            shard, positions = job
            return positions, shard.get_many([addrs[i] for i in positions])

        if len(touched) == 1:
            answers = [lookup(touched[0])]
        else:
            answers = self._pool.map(lookup, touched)
        for positions, values in answers:
            for position, value in zip(positions, values):
                results[position] = value
        return results

    def scan(
        self,
        addr_low: bytes,
        addr_high: bytes,
        *,
        at_blk: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[ScanTriple]:
        """Key-ordered range scan across every shard (globally sorted).

        The address space is hash-partitioned, so each shard holds an
        arbitrary subset of any address range and the per-shard streams
        must be re-merged globally.  Shards return MVCC-resolved
        ``(addr, blk, value)`` triples already sorted and mutually
        disjoint (one address lives in exactly one shard), so the
        second-level merge is a plain k-way merge by address.

        With a ``limit``, each shard is first asked for only its
        expected share (``limit / N`` plus slack) **in parallel** on
        the commit pool, and a shard that exhausts its page while the
        merge still needs entries refills via a continuation scan from
        its last returned address — total work stays ~``limit`` triples
        instead of ``N x limit``.  The whole scan holds the top-level
        gate shared: like anchored provenance, a cross-shard scan must
        describe one instant, which any concurrent commit (exclusive
        here) would break.
        """
        with self.gate.shared():
            if len(self.shards) == 1:
                return self.shards[0].scan(
                    addr_low, addr_high, at_blk=at_blk, limit=limit
                )
            if limit is None:
                parts = list(
                    self._pool.map(
                        lambda shard: shard.scan(addr_low, addr_high, at_blk=at_blk),
                        self.shards,
                    )
                )
                return list(heapq.merge(*parts, key=itemgetter(0)))
            if limit <= 0:
                return []
            page = scan_page_size(limit, len(self.shards))
            first_pages = list(
                self._pool.map(
                    lambda shard: shard.scan(
                        addr_low, addr_high, at_blk=at_blk, limit=page
                    ),
                    self.shards,
                )
            )
            streams = [
                self._shard_scan_pages(shard, batch, addr_high, at_blk, page)
                for shard, batch in zip(self.shards, first_pages)
            ]
            return list(
                itertools.islice(heapq.merge(*streams, key=itemgetter(0)), limit)
            )

    @staticmethod
    def _shard_scan_pages(
        shard: Cole,
        first: List[ScanTriple],
        addr_high: bytes,
        at_blk: Optional[int],
        page: int,
    ) -> Iterator[ScanTriple]:
        """One shard's scan stream: the prefetched page, then
        continuation refills while the cross-shard merge keeps pulling."""
        batch = first
        while True:
            yield from batch
            if len(batch) < page:
                return  # the shard ran out of matching addresses
            next_low = addr_successor(batch[-1][0])
            if next_low is None or next_low > addr_high:
                return
            batch = shard.scan(next_low, addr_high, at_blk=at_blk, limit=page)

    def prov_query(self, addr: bytes, blk_low: int, blk_high: int) -> ShardedProvenanceResult:
        """Historical values of ``addr`` with a composite-root-anchored proof."""
        result, _root = self.prov_query_anchored(addr, blk_low, blk_high)
        return result

    def prov_query_anchored(
        self, addr: bytes, blk_low: int, blk_high: int
    ) -> Tuple[ShardedProvenanceResult, Digest]:
        """:meth:`prov_query` plus the composite ``Hstate`` it verifies
        against.

        Holds the top-level gate shared: the inner proof and the
        shard-root vector it anchors to must describe the same instant,
        which any concurrent *mutation* (exclusive on this gate) would
        break — while concurrent queries remain free to overlap.
        """
        with self.gate.shared():
            index = shard_of(addr, len(self.shards))
            inner = self.shards[index].prov_query(addr, blk_low, blk_high)
            roots = self._shard_roots()
            result = ShardedProvenanceResult(
                shard_index=index, shard_roots=roots, result=inner
            )
            return result, hash_concat(roots)

    # =========================================================================
    # composite root (Hstate)
    # =========================================================================

    def shard_roots(self) -> List[Digest]:
        """Ordered per-shard ``Hstate`` digests (the composite preimage)."""
        with self.gate.shared():
            return self._shard_roots()

    def _shard_roots(self) -> List[Digest]:
        return [shard.root_digest() for shard in self.shards]

    def root_digest(self) -> Digest:
        """Composite ``Hstate``: the hash over the ordered shard roots."""
        with self.gate.shared():
            return hash_concat(self._shard_roots())

    # =========================================================================
    # accounting / lifecycle
    # =========================================================================

    @property
    def puts_total(self) -> int:
        """Total puts accepted across all shards."""
        return sum(shard.puts_total for shard in self.shards)

    @property
    def checkpoint_blk(self) -> int:
        """Earliest shard checkpoint: replay the log from after this height."""
        return min(shard.checkpoint_blk for shard in self.shards)

    def shard_checkpoints(self) -> List[int]:
        """Every shard's durable checkpoint, in shard order.

        The WAL layer filters and truncates each shard's chain against
        its *own* checkpoint — the earliest-checkpoint summary above
        would make eager shards re-apply (harmless) but lazy shards
        under-truncate, so the per-shard vector is the real contract.
        """
        return [shard.checkpoint_blk for shard in self.shards]

    def storage_bytes(self) -> int:
        """Total on-disk footprint across all shards."""
        return sum(shard.storage_bytes() for shard in self.shards)

    def num_disk_levels(self) -> int:
        """Deepest instantiated on-disk level across shards."""
        return max(shard.num_disk_levels() for shard in self.shards)

    def compaction_stats(self) -> dict:
        """Aggregated write-amplification accounting across shards.

        Byte counters sum; the per-level rows merge by paper level.
        Each shard takes its own gate (top gate before shard gates —
        the established lock order).
        """
        merged: dict = {
            "policy": self.params.cole.compaction,
            "bytes_flushed": 0,
            "bytes_rewritten": 0,
            "levels": {},
        }
        with self.gate.shared():
            for shard in self.shards:
                stats = shard.compaction_stats()
                merged["bytes_flushed"] += stats["bytes_flushed"]
                merged["bytes_rewritten"] += stats["bytes_rewritten"]
                for level, row in stats["levels"].items():
                    into = merged["levels"].setdefault(
                        level,
                        {"runs": 0, "entries": 0, "bytes": 0, "bytes_rewritten": 0},
                    )
                    for field in into:
                        into[field] += row[field]
        flushed = merged["bytes_flushed"]
        merged["write_amp"] = (
            round(merged["bytes_rewritten"] / flushed, 4) if flushed else 0.0
        )
        return merged

    def wait_for_merges(self) -> None:
        """Join every shard's background merges (teardown, clean close)."""
        for shard in self.shards:
            shard.wait_for_merges()

    def rewind_to(self, target_blk: int) -> int:
        """Discard every version newer than ``target_blk`` on every shard."""
        with self.gate.exclusive():
            if len(self.shards) == 1:
                dropped = self.shards[0].rewind_to(target_blk)
            else:
                dropped = sum(
                    self._pool.map(
                        lambda shard: shard.rewind_to(target_blk), self.shards
                    )
                )
            self.current_blk = min(self.current_blk, target_blk)
            return dropped

    def close(self) -> None:
        """Join merges, stop the commit pool, and close every shard."""
        self._pool.shutdown(wait=True)
        for shard in self.shards:
            shard.close()
