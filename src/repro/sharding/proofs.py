"""Provenance results in a sharded deployment.

A provenance query touches exactly one shard (the compound keys of one
address all live there), so the proof is that shard's ordinary
:class:`~repro.core.proofs.ProvenanceProof` — plus the context a verifier
needs to anchor it in the *composite* state root: which shard answered,
and the full ordered list of per-shard roots whose hash is ``Hstate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.hashing import Digest
from repro.core.proofs import ProvenanceProof, ProvenanceResult


@dataclass
class ShardedProvenanceResult:
    """One shard's provenance answer plus the composite-root context.

    Mirrors :class:`~repro.core.proofs.ProvenanceResult`'s surface
    (``versions`` / ``boundary_version`` / ``proof``) so callers written
    against the unsharded engine keep working unchanged.
    """

    shard_index: int
    shard_roots: List[Digest]  # ordered per-shard roots; Hstate = H(cat)
    result: ProvenanceResult

    @property
    def versions(self) -> List[Tuple[int, bytes]]:
        return self.result.versions

    @property
    def boundary_version(self) -> Optional[Tuple[int, bytes]]:
        return self.result.boundary_version

    @property
    def proof(self) -> ProvenanceProof:
        return self.result.proof

    def proof_size_bytes(self) -> int:
        """Total proof size: the shard proof plus one digest per shard."""
        return self.result.proof.size_bytes() + sum(
            len(root) for root in self.shard_roots
        )
