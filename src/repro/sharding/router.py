"""Address -> shard routing.

The route must be deterministic across processes, nodes, and restarts —
the composite ``Hstate`` hangs on every node partitioning the address
space identically — so the router avoids Python's salted ``hash``.
CRC32 over the address bytes is cheap enough for the per-put hot path and
spreads well: state addresses are either hash-derived
(:meth:`repro.chain.contracts.base.ExecutionContext.address`) or uniform
random, and CRC32 keeps even adversarially structured addresses from all
landing on one shard's doorstep.
"""

from __future__ import annotations

import zlib


def shard_of(addr: bytes, num_shards: int) -> int:
    """The index of the shard owning ``addr`` (0-based, stable)."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_shards == 1:
        return 0
    return zlib.crc32(addr) % num_shards
