"""Sharding: hash-partitioned scale-out of COLE (see DESIGN.md).

Public surface:

* :class:`ShardedCole` — N independent COLE shards behind the standard
  :class:`~repro.chain.backend.StorageBackend` contract, with a composite
  ``Hstate`` over the ordered per-shard roots and parallel block commits;
* :func:`shard_of` — the public, deterministic address -> shard route;
* :func:`verify_sharded_provenance` — client-side verification of
  :class:`ShardedProvenanceResult` against the composite state root.

Configuration lives in :class:`repro.common.params.ShardParams`.
"""

from repro.common.params import ShardParams
from repro.sharding.engine import ShardedCole
from repro.sharding.proofs import ShardedProvenanceResult
from repro.sharding.router import shard_of
from repro.sharding.verify import verify_sharded_provenance

__all__ = [
    "ShardParams",
    "ShardedCole",
    "ShardedProvenanceResult",
    "shard_of",
    "verify_sharded_provenance",
]
