"""Client-side verification of sharded provenance results.

The verifier holds only the composite ``Hstate`` from a block header.
Soundness chains three checks: (1) the claimed per-shard root list hashes
to the composite root, so the server cannot invent shard roots; (2) the
queried address routes to the claimed shard under the public routing
function, so the server cannot answer from a shard that misses versions;
(3) the inner proof verifies against that shard's root exactly as in the
unsharded engine (Section 6.2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import VerificationError
from repro.common.hashing import Digest, hash_concat
from repro.core.verify import verify_provenance
from repro.sharding.proofs import ShardedProvenanceResult
from repro.sharding.router import shard_of


def verify_sharded_provenance(
    result: ShardedProvenanceResult,
    expected_state_root: Digest,
    addr_size: int = 32,
    key_width: Optional[int] = None,
) -> List[Tuple[int, bytes]]:
    """VerifyProv against a composite (sharded) state root.

    Returns the verified version list; raises
    :class:`VerificationError` on any mismatch.
    """
    roots = list(result.shard_roots)
    if not roots:
        raise VerificationError("sharded proof discloses no shard roots")
    if hash_concat(roots) != expected_state_root:
        raise VerificationError("shard roots do not hash to the composite Hstate")
    index = result.shard_index
    if not 0 <= index < len(roots):
        raise VerificationError("shard index out of range")
    if shard_of(result.result.proof.addr, len(roots)) != index:
        raise VerificationError("address does not route to the claimed shard")
    return verify_provenance(
        result.result, roots[index], addr_size=addr_size, key_width=key_width
    )
