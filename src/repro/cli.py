"""Command-line interface: inspect workspaces, run experiments, serve.

Usage (after ``pip install -e .``)::

    python -m repro.cli info /path/to/cole-workspace
    python -m repro.cli experiment fig9 [--heights 30,100] [--engines mpt,cole]
    python -m repro.cli experiment table1
    python -m repro.cli serve /path/to/workspace --port 7407 [--shards 4]
    python -m repro.cli loadgen --port 7407 --clients 32 --ops 200
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.report import format_bytes, format_table
from repro.core.manifest import MANIFEST_NAME, load_manifest

_EXPERIMENTS = {
    "fig9": ("run_overall_performance", {"workload_name": "smallbank"}),
    "fig10": ("run_overall_performance", {"workload_name": "kvstore"}),
    "fig11": ("run_workload_mix", {}),
    "fig12": ("run_latency", {}),
    "fig13": ("run_size_ratio", {}),
    "fig14": ("run_provenance_range", {}),
    "fig15": ("run_mht_fanout", {}),
    "fig16": ("run_sharding_scalability", {}),
    "fig17": ("run_service_throughput", {}),
    "table1": ("run_complexity_table", {}),
    "index-share": ("run_index_share", {}),
}


def cmd_info(args: argparse.Namespace) -> int:
    """Print the manifest and file inventory of a COLE workspace."""
    import os

    shard_dirs = sorted(
        name
        for name in (os.listdir(args.workspace) if os.path.isdir(args.workspace) else [])
        if name.startswith("shard-")
        and os.path.isfile(os.path.join(args.workspace, name, MANIFEST_NAME))
    )
    if shard_dirs and not os.path.isfile(os.path.join(args.workspace, MANIFEST_NAME)):
        print(f"workspace:        {args.workspace} (sharded, {len(shard_dirs)} shards)")
        print("inspect a shard:")
        for name in shard_dirs:
            print(f"  repro info {os.path.join(args.workspace, name)}")
        return 0
    manifest = load_manifest(args.workspace)
    print(f"workspace:        {args.workspace}")
    print(f"checkpoint block: {manifest.checkpoint_blk}")
    print(f"async merge:      {manifest.async_merge}")
    rows = []
    total = 0
    for level, groups in sorted(manifest.levels.items()):
        for role, records in groups.items():
            for record in records:
                size = 0
                for suffix in (".val", ".idx", ".mrk", ".blm"):
                    path = os.path.join(args.workspace, record.name + suffix)
                    if os.path.exists(path):
                        size += os.path.getsize(path)
                total += size
                rows.append(
                    [level, role, record.name, record.num_entries, format_bytes(size)]
                )
    print(format_table(["level", "group", "run", "entries", "size"], rows))
    print(f"total committed run bytes: {format_bytes(total)}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one paper experiment and print its series."""
    from repro.bench import experiments

    name = args.name
    if name not in _EXPERIMENTS:
        print(f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}")
        return 2
    function_name, kwargs = _EXPERIMENTS[name]
    driver = getattr(experiments, function_name)
    call_kwargs = dict(kwargs)
    if args.heights and "heights" in driver.__code__.co_varnames:
        call_kwargs["heights"] = tuple(int(h) for h in args.heights.split(","))
    if args.engines and "engines" in driver.__code__.co_varnames:
        call_kwargs["engines"] = tuple(args.engines.split(","))
    if args.shards and "shard_counts" in driver.__code__.co_varnames:
        call_kwargs["shard_counts"] = tuple(int(n) for n in args.shards.split(","))
    result = driver(**call_kwargs)
    if isinstance(result, dict):
        for key, value in result.items():
            print(f"{key}: {value}")
        return 0
    if result:
        headers = list(result[0].keys())
        print(format_table(headers, [[row.get(h, "") for h in headers] for row in result]))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a COLE workspace over TCP until interrupted."""
    import asyncio

    from repro.common.params import ColeParams, ShardParams
    from repro.core import Cole
    from repro.server import ColeServer, ServerConfig
    from repro.sharding import ShardedCole

    cole_params = ColeParams(async_merge=True, mem_capacity=args.mem_capacity)
    if args.shards > 1:
        engine = ShardedCole(
            args.workspace, ShardParams(cole=cole_params, num_shards=args.shards)
        )
    else:
        engine = Cole(args.workspace, cole_params)
    config = ServerConfig(
        batch_max_puts=args.batch_puts,
        batch_max_delay=args.batch_delay_ms / 1000.0,
        cache_capacity=args.cache_capacity,
    )
    server = ColeServer(engine, host=args.host, port=args.port, config=config)

    async def serve() -> None:
        host, port = await server.start()
        shards = f", {args.shards} shards" if args.shards > 1 else ""
        print(f"serving {args.workspace} on {host}:{port}{shards} (Ctrl-C stops)")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("\nstopped")
    finally:
        engine.close()
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running server with concurrent YCSB-style clients."""
    from repro.server import LoadgenParams, format_report, run_loadgen_sync

    params = LoadgenParams(
        clients=args.clients,
        ops_per_client=args.ops,
        read_fraction=args.read_fraction,
        num_keys=args.num_keys,
        mode=args.mode,
        rate=args.rate,
        seed=args.seed,
    )
    report = run_loadgen_sync(args.host, args.port, params)
    print(format_report(report))
    return 1 if report.errors else 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="COLE reproduction utilities"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="inspect a COLE workspace")
    info.add_argument("workspace", help="workspace directory")
    info.set_defaults(func=cmd_info)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", help=f"one of {sorted(_EXPERIMENTS)}")
    experiment.add_argument("--heights", help="comma-separated block heights")
    experiment.add_argument("--engines", help="comma-separated engine names")
    experiment.add_argument(
        "--shards", help="comma-separated shard counts (fig16 sharding sweep)"
    )
    experiment.set_defaults(func=cmd_experiment)

    serve = sub.add_parser("serve", help="serve a workspace over TCP")
    serve.add_argument("workspace", help="engine workspace directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7407)
    serve.add_argument(
        "--shards", type=int, default=1, help="shard count (>1 serves a ShardedCole)"
    )
    serve.add_argument(
        "--mem-capacity", type=int, default=512, help="per-shard L0 capacity B"
    )
    serve.add_argument(
        "--batch-puts", type=int, default=512, help="group-commit size threshold"
    )
    serve.add_argument(
        "--batch-delay-ms",
        type=float,
        default=10.0,
        help="group-commit time threshold (milliseconds)",
    )
    serve.add_argument("--cache-capacity", type=int, default=8192)
    serve.set_defaults(func=cmd_serve)

    loadgen = sub.add_parser("loadgen", help="drive a running server with load")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7407)
    loadgen.add_argument("--clients", type=int, default=32)
    loadgen.add_argument("--ops", type=int, default=200, help="ops per client")
    loadgen.add_argument("--read-fraction", type=float, default=0.5)
    loadgen.add_argument("--num-keys", type=int, default=1024)
    loadgen.add_argument(
        "--mode", choices=("closed", "open"), default="closed", help="loop discipline"
    )
    loadgen.add_argument(
        "--rate", type=float, default=2000.0, help="total ops/s (open loop)"
    )
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.set_defaults(func=cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
