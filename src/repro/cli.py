"""Command-line interface: inspect, experiment, serve, snapshot, restore.

Usage (after ``pip install -e .``)::

    python -m repro.cli info /path/to/cole-workspace
    python -m repro.cli experiment fig9 [--heights 30,100] [--engines mpt,cole]
    python -m repro.cli experiment table1
    python -m repro.cli serve /path/to/workspace --port 7407 [--shards 4] [--wal]
    python -m repro.cli serve /path/to/replica --replica-of 127.0.0.1:7407
    python -m repro.cli loadgen --port 7407 --clients 32 --ops 200 [--json]
    python -m repro.cli loadgen --port 7407 --workload E [--scan-len 50]
    python -m repro.cli loadgen --port 7407 --multi-get-size 16
    python -m repro.cli snapshot /path/to/workspace /path/to/snapshot
    python -m repro.cli snapshot /path/to/ws /path/to/inc --incremental-from /path/to/snapshot
    python -m repro.cli snapshot --verify-only /path/to/snapshot
    python -m repro.cli restore /path/to/snapshot /path/to/new-workspace
    python -m repro.cli export -w /path/to/workspace --at-blk 100 -o slice.repx
    python -m repro.cli import slice.repx -w /path/to/new-workspace
    python -m repro.cli cluster init manifest.json --nodes 2 --shards 4
    python -m repro.cli cluster serve /data/node0 --node node-0 -m manifest.json
    python -m repro.cli cluster status -m manifest.json
    python -m repro.cli cluster migrate 0 node-1 -m manifest.json --snapshot-dir /tmp/s0
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.report import format_bytes, format_table
from repro.core.manifest import MANIFEST_NAME, load_manifest

_EXPERIMENTS = {
    "fig9": ("run_overall_performance", {"workload_name": "smallbank"}),
    "fig10": ("run_overall_performance", {"workload_name": "kvstore"}),
    "fig11": ("run_workload_mix", {}),
    "fig12": ("run_latency", {}),
    "fig13": ("run_size_ratio", {}),
    "fig14": ("run_provenance_range", {}),
    "fig15": ("run_mht_fanout", {}),
    "fig16": ("run_sharding_scalability", {}),
    "fig17": ("run_service_throughput", {}),
    "fig18": ("run_durability", {}),
    "fig19": ("run_read_scaling", {}),
    "fig20": ("run_scan_throughput", {}),
    "fig21": ("run_cluster_scaling", {}),
    "fig22": ("run_compaction_policies", {}),
    "table1": ("run_complexity_table", {}),
    "index-share": ("run_index_share", {}),
    "multi-get": ("run_multi_get", {}),
    "negative-lookup": ("run_negative_lookup", {}),
    "scan-hotset": ("run_scan_vs_hotset", {}),
}

#: Default WAL directory inside a workspace (a sibling of the shard /
#: run files; engine recovery ignores subdirectories).
WAL_DIRNAME = "wal"

def _lock_workspace(workspace: str, purpose: str):
    """Take the workspace's advisory lock; returns the held file handle.

    The flock lives on the inode, so it stays valid for the holder even
    though engine recovery may unlink a stale lock file.  A held lock in
    another process aborts with a clear message instead of letting two
    uncoordinated writers rewrite one manifest.
    """
    import fcntl
    import os

    from repro.core.storage import WORKSPACE_LOCK_NAME

    os.makedirs(workspace, exist_ok=True)
    handle = open(os.path.join(workspace, WORKSPACE_LOCK_NAME), "w")
    try:
        fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        handle.close()
        raise SystemExit(
            f"workspace {workspace} is locked by another process "
            f"(a running `repro serve`?); stop it before running {purpose}"
        )
    return handle


def _detect_shards(workspace: str) -> int:
    """Shard count of an existing workspace (1 when single-engine/new).

    Counts ``shard-NN`` subdirectories: the sharded engine creates them
    eagerly on open, so detection works even before the first cascade
    writes a manifest.
    """
    import os

    if not os.path.isdir(workspace):
        return 1
    count = sum(
        1
        for name in os.listdir(workspace)
        if name.startswith("shard-")
        and os.path.isdir(os.path.join(workspace, name))
    )
    return count or 1


def _open_engine(workspace: str, num_shards: int, mem_capacity: int = 512):
    """Open (recovering) the engine serving/snapshotting a workspace."""
    from repro.common.params import ColeParams, ShardParams
    from repro.core import Cole
    from repro.sharding import ShardedCole

    cole_params = ColeParams(async_merge=True, mem_capacity=mem_capacity)
    if num_shards > 1:
        return ShardedCole(
            workspace, ShardParams(cole=cole_params, num_shards=num_shards)
        )
    return Cole(workspace, cole_params)


def cmd_info(args: argparse.Namespace) -> int:
    """Print the manifest and file inventory of a COLE workspace."""
    import os

    shard_dirs = sorted(
        name
        for name in (os.listdir(args.workspace) if os.path.isdir(args.workspace) else [])
        if name.startswith("shard-")
        and os.path.isfile(os.path.join(args.workspace, name, MANIFEST_NAME))
    )
    if shard_dirs and not os.path.isfile(os.path.join(args.workspace, MANIFEST_NAME)):
        print(f"workspace:        {args.workspace} (sharded, {len(shard_dirs)} shards)")
        print("inspect a shard:")
        for name in shard_dirs:
            print(f"  repro info {os.path.join(args.workspace, name)}")
        return 0
    from repro.core.run import RUN_SUFFIXES

    manifest = load_manifest(args.workspace)
    print(f"workspace:        {args.workspace}")
    print(f"checkpoint block: {manifest.checkpoint_blk}")
    print(f"async merge:      {manifest.async_merge}")
    rows = []
    total = 0
    for level, groups in sorted(manifest.levels.items()):
        for role, records in groups.items():
            for record in records:
                size = 0
                for suffix in RUN_SUFFIXES:
                    path = os.path.join(args.workspace, record.name + suffix)
                    if os.path.exists(path):
                        size += os.path.getsize(path)
                total += size
                rows.append(
                    [level, role, record.name, record.num_entries, format_bytes(size)]
                )
    print(format_table(["level", "group", "run", "entries", "size"], rows))
    print(f"total committed run bytes: {format_bytes(total)}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one paper experiment and print its series."""
    from repro.bench import experiments

    name = args.name
    if name not in _EXPERIMENTS:
        print(f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}")
        return 2
    function_name, kwargs = _EXPERIMENTS[name]
    driver = getattr(experiments, function_name)
    call_kwargs = dict(kwargs)
    if args.heights and "heights" in driver.__code__.co_varnames:
        call_kwargs["heights"] = tuple(int(h) for h in args.heights.split(","))
    if args.engines and "engines" in driver.__code__.co_varnames:
        call_kwargs["engines"] = tuple(args.engines.split(","))
    if args.shards and "shard_counts" in driver.__code__.co_varnames:
        call_kwargs["shard_counts"] = tuple(int(n) for n in args.shards.split(","))
    if args.replicas and "replica_counts" in driver.__code__.co_varnames:
        call_kwargs["replica_counts"] = tuple(int(n) for n in args.replicas.split(","))
    result = driver(**call_kwargs)
    if isinstance(result, dict):
        for key, value in result.items():
            print(f"{key}: {value}")
        return 0
    if result:
        headers = list(result[0].keys())
        print(format_table(headers, [[row.get(h, "") for h in headers] for row in result]))
    return 0


def _parse_host_port(value: str) -> tuple:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--replica-of expects HOST:PORT, got {value!r}")
    return host, int(port)


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a COLE workspace over TCP until interrupted."""
    import asyncio
    import os

    from repro.server import ColeServer, ServerConfig

    replica_of = _parse_host_port(args.replica_of) if args.replica_of else None
    if replica_of is not None and args.wal:
        raise SystemExit(
            "--replica-of and --wal are mutually exclusive: a replica's "
            "recovery source is the primary's stream, not a local WAL"
        )
    if args.bootstrap_from:
        if replica_of is None:
            raise SystemExit("--bootstrap-from only makes sense with --replica-of")
        if not os.path.isdir(args.workspace) or not os.listdir(args.workspace):
            from repro.wal import restore_store

            meta = restore_store(args.bootstrap_from, args.workspace)
            print(
                f"bootstrapped {args.workspace} from snapshot "
                f"{args.bootstrap_from} ({len(meta['files'])} files)",
                flush=True,
            )
    # --shards 0 (the default) re-opens an existing workspace with the
    # shard count it was created with — restarting a 4-shard store
    # without remembering the flag must not serve an empty single-engine
    # view over its shard directories.
    num_shards = args.shards or _detect_shards(args.workspace)
    lock = _lock_workspace(args.workspace, "a second server")
    engine = _open_engine(args.workspace, num_shards, args.mem_capacity)
    wal = None
    if args.wal:
        from repro.wal import WriteAheadLog

        wal = WriteAheadLog(
            args.wal_dir or os.path.join(args.workspace, WAL_DIRNAME),
            num_shards=num_shards,
            sync_policy=args.wal_sync,
            segment_max_bytes=args.wal_segment_kb * 1024,
        )
    elif replica_of is not None:
        # A restored snapshot ships the primary's WAL tail: replay it so
        # the replica subscribes at the snapshot's root, not behind it.
        wal_dir = os.path.join(args.workspace, WAL_DIRNAME)
        if os.path.isdir(wal_dir):
            from repro.wal import WriteAheadLog, replay_wal

            boot_wal = WriteAheadLog(wal_dir, num_shards=num_shards)
            stats = replay_wal(engine, boot_wal)
            boot_wal.close()
            if stats.replayed_anything:
                print(
                    f"replayed {stats.puts_replayed} snapshot-tail writes "
                    f"in {stats.blocks_replayed} blocks",
                    flush=True,
                )
    config = ServerConfig(
        batch_max_puts=args.batch_puts,
        batch_max_delay=args.batch_delay_ms / 1000.0,
        cache_capacity=args.cache_capacity,
        negative_cache_capacity=args.negative_cache_capacity,
    )
    server = ColeServer(
        engine,
        host=args.host,
        port=args.port,
        config=config,
        wal=wal,
        replica_of=replica_of,
    )

    async def serve() -> None:
        host, port = await server.start()
        stats = server.replay_stats
        if stats is not None and stats.replayed_anything:
            print(
                f"recovered {stats.puts_replayed} writes in "
                f"{stats.blocks_replayed} blocks from the WAL "
                f"(heights {stats.first_height}..{stats.last_height})",
                flush=True,
            )
        shards = f", {num_shards} shards" if num_shards > 1 else ""
        durability = f", wal={wal.sync_policy}" if wal is not None else ""
        role = (
            f", replica of {args.replica_of}" if replica_of is not None else ""
        )
        print(
            f"serving {args.workspace} on {host}:{port}{shards}{durability}"
            f"{role} (loop={loop_name}; Ctrl-C stops)",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    from repro.server.eventloop import install_event_loop_policy

    loop_name = install_event_loop_policy()
    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("\nstopped")
    finally:
        if wal is not None:
            wal.close()
        engine.close()
        lock.close()
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Take a consistent point-in-time snapshot of a workspace.

    Offline by design: the workspace lock aborts the copy when another
    process (a live ``repro serve``) holds the store — the commit gate
    only coordinates threads *within* one process.

    ``--incremental-from PREV`` copies only runs new since ``PREV``
    (which may itself be incremental — chains verify and restore hop by
    hop).  ``--verify-only PATH`` checks an existing snapshot chain and
    takes no copy; the positional arguments are not used.
    """
    import os

    from repro.common.errors import IntegrityError, StorageError
    from repro.wal import WriteAheadLog, replay_wal, snapshot_store, verify_snapshot

    if args.verify_only:
        if args.workspace or args.dest:
            raise SystemExit(
                "snapshot --verify-only takes the snapshot path only "
                "(no workspace/dest arguments)"
            )
        try:
            meta = verify_snapshot(args.verify_only)
        except (IntegrityError, StorageError) as exc:
            print(f"snapshot verification FAILED: {exc}")
            return 1
        chain = "incremental" if meta.get("parent") else "full"
        print(f"snapshot:    {args.verify_only} ({chain}) OK")
        print(f"root digest: {meta['root_digest']}")
        print(
            f"files:       {len(meta['files'])} copied, "
            f"{len(meta.get('reused', {}))} reused from the parent chain"
        )
        return 0
    if not args.workspace or not args.dest:
        raise SystemExit("snapshot requires workspace and dest arguments")

    num_shards = args.shards or _detect_shards(args.workspace)
    lock = _lock_workspace(args.workspace, "snapshot")
    engine = _open_engine(args.workspace, num_shards)
    wal = None
    try:
        wal_dir = os.path.join(args.workspace, WAL_DIRNAME)
        if os.path.isdir(wal_dir):
            # Bring the in-memory level back first so the recorded root
            # digest covers every write the WAL still owes the engine.
            wal = WriteAheadLog(wal_dir, num_shards=num_shards)
            replay_wal(engine, wal)
        meta = snapshot_store(
            engine, args.dest, wal=wal, parent=args.incremental_from
        )
    finally:
        if wal is not None:
            wal.close()
        engine.close()
        lock.close()
    print(f"snapshot:    {args.dest}")
    print(f"kind:        {meta['kind']} ({meta['num_shards']} shards)")
    print(f"root digest: {meta['root_digest']}")
    if args.incremental_from:
        copied = sum(attrs["size"] for attrs in meta["files"].values())
        print(
            f"files:       {len(meta['files'])} copied ({format_bytes(copied)}), "
            f"{len(meta['reused'])} reused from {args.incremental_from}"
        )
    else:
        print(f"files:       {len(meta['files'])}")
    return 0


def cmd_restore(args: argparse.Namespace) -> int:
    """Restore a snapshot into a fresh workspace and verify its root."""
    import os

    from repro.wal import WriteAheadLog, replay_wal, restore_store

    meta = restore_store(args.snapshot, args.dest)
    engine = _open_engine(args.dest, meta["num_shards"])
    wal = None
    try:
        wal_dir = os.path.join(args.dest, WAL_DIRNAME)
        if meta.get("has_wal") and os.path.isdir(wal_dir):
            wal = WriteAheadLog(wal_dir, num_shards=meta["num_shards"])
            replay_wal(engine, wal)
        root = engine.root_digest().hex()
    finally:
        if wal is not None:
            wal.close()
        engine.close()
    print(f"restored:    {args.dest} ({len(meta['files'])} files verified)")
    print(f"root digest: {root}")
    if root != meta["root_digest"]:
        print(f"MISMATCH:    snapshot recorded {meta['root_digest']}")
        return 1
    print("root digest matches the snapshot record")
    return 0


def _parse_addr_bound(value: Optional[str], flag: str) -> Optional[bytes]:
    if value is None:
        return None
    try:
        return bytes.fromhex(value)
    except ValueError:
        raise SystemExit(f"{flag} expects a hex-encoded address, got {value!r}")


def cmd_export(args: argparse.Namespace) -> int:
    """Stream a snapshot-consistent keyspace slice into a portable file.

    Rides the engine's paged range-scan cursors: memory stays bounded
    by the page size however large the slice.  The WAL is replayed
    first (like ``repro snapshot``) so the slice sees every durable
    write.
    """
    import os

    from repro.core.export import export_slice
    from repro.wal import WriteAheadLog, replay_wal

    num_shards = args.shards or _detect_shards(args.workspace)
    lock = _lock_workspace(args.workspace, "export")
    engine = _open_engine(args.workspace, num_shards)
    wal = None
    try:
        wal_dir = os.path.join(args.workspace, WAL_DIRNAME)
        if os.path.isdir(wal_dir):
            wal = WriteAheadLog(wal_dir, num_shards=num_shards)
            replay_wal(engine, wal)
        with open(args.output, "wb") as out:
            stats = export_slice(
                engine,
                out,
                at_blk=args.at_blk,
                addr_low=_parse_addr_bound(args.low, "--low"),
                addr_high=_parse_addr_bound(args.high, "--high"),
            )
    finally:
        if wal is not None:
            wal.close()
        engine.close()
        lock.close()
    size = os.path.getsize(args.output)
    print(f"exported:    {args.output} ({format_bytes(size)})")
    print(f"triples:     {stats['triples']} (as of block {stats['at_blk']})")
    print(f"source root: {stats['root']}")
    return 0


def cmd_import(args: argparse.Namespace) -> int:
    """Replay an export stream into a fresh workspace."""
    import os

    from repro.core.export import import_slice

    if os.path.isdir(args.workspace) and os.listdir(args.workspace):
        raise SystemExit(
            f"import destination {args.workspace} is not empty; "
            "imports replay into a fresh workspace"
        )
    lock = _lock_workspace(args.workspace, "import")
    engine = _open_engine(args.workspace, max(1, args.shards))
    try:
        with open(args.file, "rb") as inp:
            stats = import_slice(engine, inp)
        engine.wait_for_merges()
        root = engine.root_digest().hex()
    finally:
        engine.close()
        lock.close()
    print(f"imported:    {stats['triples']} triples over {stats['blocks']} blocks")
    print(f"root digest: {root}")
    print(f"source root: {stats['source_root']}")
    if root == stats["source_root"]:
        print("root digest matches the export header")
    else:
        print(
            "note: roots differ for partial slices or overwrite-heavy "
            "histories (the export carries surviving versions only)"
        )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running server with concurrent YCSB-style clients.

    Exits non-zero when any op errored — a loadgen run against a broken
    server must not report a clean throughput number and exit 0.
    """
    from repro.server import LoadgenParams, format_report, run_loadgen_sync

    kwargs = dict(
        clients=args.clients,
        ops_per_client=args.ops,
        num_keys=args.num_keys,
        scan_length=args.scan_len,
        mode=args.mode,
        rate=args.rate,
        seed=args.seed,
        multi_get_size=args.multi_get_size,
    )
    if args.workload:
        # A YCSB workload letter presets the op mix (E = scan heavy);
        # explicit fractions would contradict it.
        params = LoadgenParams.for_workload(args.workload, **kwargs)
    else:
        params = LoadgenParams(
            read_fraction=args.read_fraction,
            scan_fraction=args.scan_frac,
            **kwargs,
        )
    client_factory = None
    if args.manifest or args.seeds:
        # Cluster target: every worker routes by the manifest through
        # the same connect() factory the single-server path uses.
        from repro.server import connect

        manifest_file = args.manifest
        seeds = tuple(s for s in (args.seeds or "").split(",") if s)
        client_factory = lambda: connect(  # noqa: E731
            manifest_file=manifest_file, seeds=seeds
        )
    report = run_loadgen_sync(args.host, args.port, params, client_factory)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(format_report(report))
    return 1 if report.errors else 0


def cmd_cluster_init(args: argparse.Namespace) -> int:
    """Write an epoch-0 cluster manifest with round-robin placement."""
    from repro.cluster import plan_manifest

    manifest = plan_manifest(
        args.nodes, args.shards, host=args.host, base_port=args.base_port
    )
    manifest.save(args.manifest)
    print(f"wrote {args.manifest} (epoch 0, {args.shards} shards)")
    for name, control in sorted(manifest.nodes.items()):
        owned = manifest.shards_of_node(name)
        print(f"  {name}: control {control}, shards {list(owned)}")
        print(f"    repro cluster serve <workspace>/{name} --node {name} "
              f"-m {args.manifest}")
    return 0


def cmd_cluster_serve(args: argparse.Namespace) -> int:
    """Serve one cluster node (its shard group + control port)."""
    import asyncio

    from repro.cluster import ClusterManifest, ClusterNode
    from repro.server import ServerConfig

    manifest = ClusterManifest.load(args.manifest)
    lock = _lock_workspace(args.workspace, "a second cluster node")
    config = ServerConfig(
        batch_max_puts=args.batch_puts,
        batch_max_delay=args.batch_delay_ms / 1000.0,
    )
    node = ClusterNode(
        args.workspace,
        args.node,
        manifest,
        config=config,
        mem_capacity=args.mem_capacity,
        wal_sync=args.wal_sync,
    )

    async def serve() -> None:
        host, port = await node.start()
        for shard_id, address in sorted(node.data_addresses().items()):
            print(f"  shard {shard_id}: {address}", flush=True)
        # Same readiness line shape as `repro serve`, so process
        # supervisors and the bench harness share one regex.
        print(
            f"serving {args.workspace} on {host}:{port} "
            f"(cluster node {args.node}, {len(node.shards)} shards, "
            f"control, loop={loop_name}; Ctrl-C stops)",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await node.stop()

    from repro.server.eventloop import install_event_loop_policy

    loop_name = install_event_loop_policy()
    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("\nstopped")
    finally:
        lock.close()
    return 0


def cmd_cluster_status(args: argparse.Namespace) -> int:
    """Ask every node's control port for its shard states."""
    import asyncio

    from repro.cluster import ClusterManifest, admin_call, fetch_manifest

    if args.manifest:
        manifest = ClusterManifest.load(args.manifest)
    elif args.seed:
        manifest = asyncio.run(fetch_manifest(args.seed))
    else:
        raise SystemExit("cluster status needs --manifest or --seed")
    print(f"manifest epoch {manifest.epoch}, {manifest.num_shards} shards")
    rows = []
    for name, control in sorted(manifest.nodes.items()):
        try:
            status = asyncio.run(admin_call(control, {"cmd": "status"}))
        except Exception as exc:  # noqa: BLE001 — report, don't die
            rows.append([name, control, "-", f"unreachable: {exc}", "-", "-"])
            continue
        for shard_id, shard in sorted(status["shards"].items()):
            rows.append(
                [
                    name,
                    control,
                    shard_id,
                    shard["phase"]
                    + (f" -> {shard['moved_to']}" if shard["moved_to"] else ""),
                    shard["height"],
                    shard["address"],
                ]
            )
    print(format_table(
        ["node", "control", "shard", "phase", "height", "address"], rows
    ))
    return 0


def cmd_cluster_migrate(args: argparse.Namespace) -> int:
    """Live-migrate one shard to another node, rewriting the manifest."""
    import tempfile

    from repro.cluster import ClusterManifest, migrate_shard_sync

    manifest = ClusterManifest.load(args.manifest)
    old = manifest.shards[args.shard]
    snapshot_dir = args.snapshot_dir or tempfile.mkdtemp(
        prefix=f"repro-migrate-shard{args.shard}-"
    )
    print(
        f"migrating shard {args.shard}: {old.node} ({old.address}) "
        f"-> {args.to_node} ..."
    )
    new_manifest = migrate_shard_sync(
        manifest,
        args.shard,
        args.to_node,
        snapshot_dir=snapshot_dir,
        timeout=args.timeout,
    )
    new_manifest.save(args.manifest)
    moved = new_manifest.shards[args.shard]
    print(
        f"shard {args.shard} now on {moved.node} ({moved.address}); "
        f"manifest epoch {manifest.epoch} -> {new_manifest.epoch}, "
        f"rewrote {args.manifest}"
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the invariant lint suite (``repro.analysis``) over the tree."""
    from pathlib import Path

    from repro.analysis import run_lint

    root = Path(args.root) if args.root else None
    report = run_lint(root=root)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 1 if report.findings else 0


def cmd_query(args: argparse.Namespace) -> int:
    """The ``repro query`` inspection group (click-based).

    click is imported lazily so every other command works in
    environments without it (e.g. minimal CI runners).
    """
    try:
        from repro.obs.query import run_query
    except ImportError:
        print(
            "repro query needs the 'click' package, which is not installed",
            file=sys.stderr,
        )
        return 2
    return run_query(args.rest)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="COLE reproduction utilities"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="inspect a COLE workspace")
    info.add_argument("workspace", help="workspace directory")
    info.set_defaults(func=cmd_info)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", help=f"one of {sorted(_EXPERIMENTS)}")
    experiment.add_argument("--heights", help="comma-separated block heights")
    experiment.add_argument("--engines", help="comma-separated engine names")
    experiment.add_argument(
        "--shards", help="comma-separated shard counts (fig16 sharding sweep)"
    )
    experiment.add_argument(
        "--replicas",
        help="comma-separated replica counts (fig19 read-scaling sweep)",
    )
    experiment.set_defaults(func=cmd_experiment)

    serve = sub.add_parser("serve", help="serve a workspace over TCP")
    serve.add_argument("workspace", help="engine workspace directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7407)
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard count (>1 serves a ShardedCole; 0 = auto-detect from "
        "the workspace, new workspaces default to 1)",
    )
    serve.add_argument(
        "--mem-capacity", type=int, default=512, help="per-shard L0 capacity B"
    )
    serve.add_argument(
        "--batch-puts", type=int, default=512, help="group-commit size threshold"
    )
    serve.add_argument(
        "--batch-delay-ms",
        type=float,
        default=10.0,
        help="group-commit time threshold (milliseconds)",
    )
    serve.add_argument("--cache-capacity", type=int, default=8192)
    serve.add_argument(
        "--negative-cache-capacity",
        type=int,
        default=4096,
        help="known-absent address cache entries (0 disables)",
    )
    serve.add_argument(
        "--wal",
        action="store_true",
        help="durable serving: write-ahead log + crash recovery",
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        help="WAL directory (default: <workspace>/wal)",
    )
    serve.add_argument(
        "--wal-sync",
        choices=("none", "batch", "always"),
        default="batch",
        help="fsync policy: batch = group fsync per ack wave (default)",
    )
    serve.add_argument(
        "--wal-segment-kb", type=int, default=4096, help="segment roll size"
    )
    serve.add_argument(
        "--replica-of",
        metavar="HOST:PORT",
        default=None,
        help="replica mode: tail the primary's WAL stream and serve "
        "reads; PUT/FLUSH answer NOT_PRIMARY",
    )
    serve.add_argument(
        "--bootstrap-from",
        metavar="SNAPSHOT",
        default=None,
        help="restore this snapshot into the workspace first (replica "
        "mode, empty workspace only)",
    )
    serve.set_defaults(func=cmd_serve)

    snapshot = sub.add_parser(
        "snapshot", help="consistent point-in-time copy of a workspace"
    )
    snapshot.add_argument(
        "workspace", nargs="?", help="source workspace directory"
    )
    snapshot.add_argument(
        "dest", nargs="?", help="snapshot directory (must be empty)"
    )
    snapshot.add_argument(
        "--shards", type=int, default=0, help="shard count (0 = auto-detect)"
    )
    snapshot.add_argument(
        "--incremental-from",
        metavar="PREV",
        help="copy only runs new since the snapshot at PREV (chainable)",
    )
    snapshot.add_argument(
        "--verify-only",
        metavar="PATH",
        help="verify the snapshot chain at PATH and exit (no copy)",
    )
    snapshot.set_defaults(func=cmd_snapshot)

    restore = sub.add_parser(
        "restore", help="restore a snapshot into a fresh workspace"
    )
    restore.add_argument("snapshot", help="snapshot directory")
    restore.add_argument("dest", help="new workspace directory (must be empty)")
    restore.set_defaults(func=cmd_restore)

    export = sub.add_parser(
        "export", help="stream a keyspace slice into a portable file"
    )
    export.add_argument(
        "-w", "--workspace", required=True, help="source workspace directory"
    )
    export.add_argument(
        "-o", "--output", required=True, help="output stream file"
    )
    export.add_argument(
        "--at-blk",
        type=int,
        default=None,
        help="block height of the slice (default: current height)",
    )
    export.add_argument("--low", help="lowest address, hex (default: zero)")
    export.add_argument("--high", help="highest address, hex (default: max)")
    export.add_argument(
        "--shards", type=int, default=0, help="shard count (0 = auto-detect)"
    )
    export.set_defaults(func=cmd_export)

    importer = sub.add_parser(
        "import", help="replay an export stream into a fresh workspace"
    )
    importer.add_argument("file", help="export stream file")
    importer.add_argument(
        "-w", "--workspace", required=True, help="destination workspace (empty)"
    )
    importer.add_argument(
        "--shards", type=int, default=1, help="shard count of the new workspace"
    )
    importer.set_defaults(func=cmd_import)

    loadgen = sub.add_parser("loadgen", help="drive a running server with load")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7407)
    loadgen.add_argument("--clients", type=int, default=32)
    loadgen.add_argument("--ops", type=int, default=200, help="ops per client")
    loadgen.add_argument("--read-fraction", type=float, default=0.5)
    loadgen.add_argument(
        "--scan-frac",
        type=float,
        default=0.0,
        help="fraction of ops that are key-ordered range scans",
    )
    loadgen.add_argument(
        "--scan-len",
        type=int,
        default=16,
        help="max results per scan (lengths draw uniformly from [1, N])",
    )
    loadgen.add_argument(
        "--workload",
        choices=tuple("ABCE") + tuple("abce"),
        default=None,
        help="YCSB workload letter preset (E = scan heavy); overrides "
        "--read-fraction/--scan-frac",
    )
    loadgen.add_argument("--num-keys", type=int, default=1024)
    loadgen.add_argument(
        "--mode", choices=("closed", "open"), default="closed", help="loop discipline"
    )
    loadgen.add_argument(
        "--rate", type=float, default=2000.0, help="total ops/s (open loop)"
    )
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument(
        "--multi-get-size",
        type=int,
        default=1,
        help="issue reads as MULTI_GET batches of this many keys "
        "(1 = plain GETs)",
    )
    loadgen.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    loadgen.add_argument(
        "--manifest",
        default=None,
        help="cluster manifest file: route ops across the cluster instead "
        "of --host/--port",
    )
    loadgen.add_argument(
        "--seeds",
        default=None,
        help="comma-separated cluster seed addresses (HOST:PORT,...) to "
        "fetch the manifest from",
    )
    loadgen.set_defaults(func=cmd_loadgen)

    cluster = sub.add_parser(
        "cluster", help="multi-process cluster: init / serve / status / migrate"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cluster_init = cluster_sub.add_parser(
        "init", help="write an epoch-0 cluster manifest"
    )
    cluster_init.add_argument("manifest", help="manifest file to write")
    cluster_init.add_argument("--nodes", type=int, default=2)
    cluster_init.add_argument("--shards", type=int, default=4)
    cluster_init.add_argument("--host", default="127.0.0.1")
    cluster_init.add_argument(
        "--base-port",
        type=int,
        default=7450,
        help="node i gets control port base+16i, its shards the ports after",
    )
    cluster_init.set_defaults(func=cmd_cluster_init)

    cluster_serve = cluster_sub.add_parser(
        "serve", help="serve one node's shard group + control port"
    )
    cluster_serve.add_argument("workspace", help="this node's workspace directory")
    cluster_serve.add_argument(
        "--node", required=True, help="node name from the manifest (e.g. node-0)"
    )
    cluster_serve.add_argument(
        "-m", "--manifest", required=True, help="cluster manifest file"
    )
    cluster_serve.add_argument("--mem-capacity", type=int, default=512)
    cluster_serve.add_argument(
        "--batch-puts", type=int, default=512, help="group-commit size threshold"
    )
    cluster_serve.add_argument(
        "--batch-delay-ms",
        type=float,
        default=10.0,
        help="group-commit time threshold (milliseconds)",
    )
    cluster_serve.add_argument(
        "--wal-sync",
        choices=("none", "batch", "always"),
        default="batch",
        help="per-shard WAL fsync policy",
    )
    cluster_serve.set_defaults(func=cmd_cluster_serve)

    cluster_status = cluster_sub.add_parser(
        "status", help="shard states from every node's control port"
    )
    cluster_status.add_argument(
        "-m", "--manifest", default=None, help="cluster manifest file"
    )
    cluster_status.add_argument(
        "--seed",
        default=None,
        help="fetch the manifest from this member address instead",
    )
    cluster_status.set_defaults(func=cmd_cluster_status)

    cluster_migrate = cluster_sub.add_parser(
        "migrate", help="live-migrate one shard to another node"
    )
    cluster_migrate.add_argument("shard", type=int, help="shard id to move")
    cluster_migrate.add_argument("to_node", help="destination node name")
    cluster_migrate.add_argument(
        "-m", "--manifest", required=True, help="manifest file (rewritten)"
    )
    cluster_migrate.add_argument(
        "--snapshot-dir",
        default=None,
        help="bootstrap snapshot directory (default: a temp dir)",
    )
    cluster_migrate.add_argument("--timeout", type=float, default=60.0)
    cluster_migrate.set_defaults(func=cmd_cluster_migrate)

    lint = sub.add_parser(
        "lint",
        help="run the invariant lint suite (gate discipline, async "
        "blocking calls, protocol surface, error taxonomy)",
    )
    lint.add_argument(
        "--root",
        default=None,
        help="tree to analyze (default: the installed repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the machine-readable CI artifact)",
    )
    lint.set_defaults(func=cmd_lint)

    # The query group is click-based and parses its own arguments:
    # everything after "query" passes through untouched (add_help=False
    # so "repro query --help" reaches click's help, not argparse's).
    query = sub.add_parser(
        "query",
        help="inspect a workspace or live server (levels/segments/bloom/"
        "wal/replication/caches/latency/audit)",
        add_help=False,
    )
    query.add_argument("rest", nargs=argparse.REMAINDER)
    query.set_defaults(func=cmd_query)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    if argv is None:
        argv = sys.argv[1:]
    # "query" owns its own argument parsing (click); hand everything
    # after it over untouched.  argparse's REMAINDER would reject a
    # leading option token ("query -w ..."), so dispatch before it.
    if argv and argv[0] == "query":
        return cmd_query(argparse.Namespace(rest=list(argv[1:])))
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
