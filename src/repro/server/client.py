"""The asyncio client of the serving layer: pooled, pipelined connections.

A :class:`ServerClient` owns ``pool_size`` TCP connections and spreads
requests across them round-robin.  Each connection **pipelines**: a
request is written and its response future queued without waiting for
earlier responses, and a per-connection reader task resolves futures in
FIFO order — valid because the server answers every connection strictly
in request order.  Pipelining removes the per-op network round trip from
the critical path, which is where most of a small op's latency lives.

:class:`ReplicatedClient` is the replica-aware mode: writes go to the
primary (following ``NOT_PRIMARY`` redirects), reads fan out round-robin
across the replica set with the primary as fallback, and
:meth:`ReplicatedClient.refresh_lag` sidelines replicas lagging more
than ``max_lag`` blocks behind the primary.

Every client shape — single server, replica set, cluster — implements
the one :class:`KVClient` interface, and :func:`connect` is the factory
that picks the shape from its arguments.  Callers (loadgen, benchmarks,
``repro query -s``, examples) hold a ``KVClient`` and never special-case
the class behind it.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple, Union

from repro.common.errors import StorageError
from repro.server import protocol
from repro.server.protocol import Referral, Op, RootInfo


class KVClient:
    """The one client interface every serving topology implements.

    ``connect()`` / ``close()`` bracket the session (or use ``async
    with``); between them the data plane is ``get / put / get_at /
    multi_get / multi_put / scan / prov`` and the control plane is
    ``root / flush / stats / metrics``.  Subclasses differ only in
    *routing* — which server a request reaches — never in semantics.
    """

    async def connect(self) -> "KVClient":
        raise NotImplementedError

    async def close(self) -> None:
        raise NotImplementedError

    async def __aenter__(self) -> "KVClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- data plane -----------------------------------------------------------

    async def put(self, addr: bytes, value: bytes) -> int:
        raise NotImplementedError

    async def get(self, addr: bytes) -> Optional[bytes]:
        raise NotImplementedError

    async def get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        raise NotImplementedError

    async def multi_get(self, addrs: Sequence[bytes]) -> List[Optional[bytes]]:
        raise NotImplementedError

    async def multi_put(self, items: Sequence[Tuple[bytes, bytes]]) -> int:
        raise NotImplementedError

    async def prov(
        self, addr: bytes, blk_low: int, blk_high: int
    ) -> Tuple[object, bytes]:
        raise NotImplementedError

    async def scan(
        self,
        addr_low: bytes,
        addr_high: bytes,
        *,
        at_blk: Optional[int] = None,
        limit: Optional[int] = None,
        page_size: int = 0,
    ) -> List[Tuple[bytes, int, bytes]]:
        raise NotImplementedError

    # -- control plane --------------------------------------------------------

    async def root(self) -> RootInfo:
        raise NotImplementedError

    async def flush(self) -> RootInfo:
        raise NotImplementedError

    async def stats(self) -> dict:
        raise NotImplementedError

    async def metrics(self) -> str:
        raise NotImplementedError


class _Connection:
    """One TCP connection with FIFO response matching."""

    def __init__(self) -> None:
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self._pending: Deque[asyncio.Future] = deque()
        self._reader_task: Optional[asyncio.Task] = None
        self._send_lock = asyncio.Lock()
        self._closed = False

    async def open(self, host: str, port: int) -> None:
        self.reader, self.writer = await asyncio.open_connection(host, port)
        try:
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop()
            )
        except BaseException:
            self.writer.close()  # never leak a connected socket
            raise

    async def _read_loop(self) -> None:
        try:
            while True:
                body = await protocol.read_frame(self.reader)
                if body is None:
                    break
                if not self._pending:
                    raise StorageError("unsolicited response frame")
                future = self._pending.popleft()
                if not future.done():
                    future.set_result(body)
        except Exception as exc:  # noqa: BLE001 — fail every waiter
            self._fail_pending(exc)
        else:
            self._fail_pending(StorageError("connection closed by server"))

    def _fail_pending(self, exc: BaseException) -> None:
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(exc)

    async def request(self, frame: bytes) -> bytes:
        """Send one frame, await its response body (pipelined)."""
        if self._closed or self.writer is None:
            raise StorageError("connection is closed")
        future = asyncio.get_running_loop().create_future()
        # The (enqueue, write) pair must be atomic per request so the
        # FIFO future queue matches the server's response order.
        async with self._send_lock:
            self._pending.append(future)
            try:
                self.writer.write(frame)
                await self.writer.drain()
            except BaseException:
                # A send that never reached the server must not leave its
                # future in the FIFO queue: the next response would resolve
                # the orphan and desynchronize every later request on this
                # connection.  (The read loop may have failed it already —
                # hence the guarded remove.)
                try:
                    self._pending.remove(future)
                except ValueError:
                    pass
                raise
        return await future

    async def close(self) -> None:
        self._closed = True
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            # Whatever terminal error the reader died with was already
            # delivered to every pending future; close() must not
            # re-raise it at the caller.
            except (asyncio.CancelledError, Exception):  # repro-lint: disable=error-taxonomy
                pass


class ServerClient(KVClient):
    """Typed ops over a pool of pipelined connections."""

    def __init__(self, host: str, port: int, pool_size: int = 1) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self._conns: List[_Connection] = []
        self._next = 0

    async def connect(self) -> "ServerClient":
        """Open every pooled connection.

        All-or-nothing: when one open fails mid-pool-fill, every
        connection opened so far is closed before the error propagates —
        a half-built pool would otherwise leak its sockets (and their
        reader tasks) with no handle left to close them.
        """
        conns: List[_Connection] = []
        try:
            for _ in range(self.pool_size):
                conn = _Connection()
                await conn.open(self.host, self.port)
                conns.append(conn)
        except BaseException:
            for conn in conns:
                await conn.close()
            raise
        self._conns = conns
        return self

    async def close(self) -> None:
        """Close every pooled connection."""
        conns, self._conns = self._conns, []
        for conn in conns:
            await conn.close()

    async def __aenter__(self) -> "ServerClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def _conn(self) -> _Connection:
        if not self._conns:
            raise StorageError("client is not connected")
        conn = self._conns[self._next % len(self._conns)]
        self._next += 1
        return conn

    # -- ops ------------------------------------------------------------------

    async def put(self, addr: bytes, value: bytes) -> int:
        """Buffer a write on the server; returns its target block height."""
        body = await self._conn().request(protocol.encode_put(addr, value))
        return protocol.decode_height_response(body)

    async def get(self, addr: bytes) -> Optional[bytes]:
        """Latest value of ``addr`` (read-your-writes across all clients)."""
        body = await self._conn().request(protocol.encode_get(addr))
        return protocol.decode_value_response(body)

    async def get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        """Value of ``addr`` as of block ``blk``."""
        body = await self._conn().request(protocol.encode_get_at(addr, blk))
        return protocol.decode_value_response(body)

    async def multi_get(self, addrs: Sequence[bytes]) -> List[Optional[bytes]]:
        """Latest values of ``addrs`` in one round trip, positionally
        matched (``None`` per absent address).  Encoded — and its batch
        size validated — before any connection is touched."""
        frame = protocol.encode_multi_get(list(addrs))
        body = await self._conn().request(frame)
        return protocol.decode_multi_get_response(body)

    async def multi_put(self, items: Sequence[Tuple[bytes, bytes]]) -> int:
        """Write a whole ``(addr, value)`` batch in one round trip;
        returns the single block height the batch will commit at."""
        frame = protocol.encode_multi_put(list(items))
        body = await self._conn().request(frame)
        return protocol.decode_height_response(body)

    async def prov(
        self, addr: bytes, blk_low: int, blk_high: int
    ) -> Tuple[object, bytes]:
        """Provenance result plus the ``Hstate`` digest it verifies against."""
        body = await self._conn().request(protocol.encode_prov(addr, blk_low, blk_high))
        result, root = protocol.decode_prov_response(body)
        return result, root

    async def scan(
        self,
        addr_low: bytes,
        addr_high: bytes,
        *,
        at_blk: Optional[int] = None,
        limit: Optional[int] = None,
        page_size: int = 0,
    ) -> List[Tuple[bytes, int, bytes]]:
        """Key-ordered range scan: live ``(addr, blk, value)`` triples in
        ``[addr_low, addr_high]``, ascending.

        Drives the continuation protocol: each request fetches one
        result page (``page_size``; 0 lets the server pick) and the next
        request resumes from the returned continuation key, so one
        logical scan streams past any single frame.  ``at_blk`` reads
        the historical state as of that block; ``limit`` caps the total
        triples returned.

        Multi-page scans are snapshot-consistent: the server pins every
        page to a committed height and reports it, and continuation
        pages are re-requested at the *first* page's height — writers
        committing between pages cannot tear the reassembled result
        across commit epochs.
        """
        results: List[Tuple[bytes, int, bytes]] = []
        cursor_addr = addr_low
        pin = at_blk
        while True:
            want = page_size
            if limit is not None:
                remaining = limit - len(results)
                if remaining <= 0:
                    return results
                want = min(want, remaining) if want else remaining
            body = await self._conn().request(
                protocol.encode_scan(cursor_addr, addr_high, pin, want)
            )
            rows, continuation, height = protocol.decode_scan_response(body)
            results.extend(rows)
            if pin is None:
                pin = height  # later pages stay in this page's snapshot
            if limit is not None and len(results) >= limit:
                return results[:limit]
            if continuation is None:
                return results
            cursor_addr = continuation

    async def root(self) -> RootInfo:
        """Committed state root, commit version, and block height."""
        body = await self._conn().request(protocol.encode_simple(Op.ROOT))
        return protocol.decode_root_response(body)

    async def stats(self) -> dict:
        """The server's serving statistics (JSON-decoded)."""
        import json

        body = await self._conn().request(protocol.encode_simple(Op.STATS))
        return json.loads(protocol.decode_blob_response(body))

    async def metrics(self) -> str:
        """The server's Prometheus-style metrics text exposition."""
        body = await self._conn().request(protocol.encode_simple(Op.METRICS))
        return protocol.decode_blob_response(body).decode("utf-8")

    async def flush(self) -> RootInfo:
        """Force a group commit; returns the new state anchor."""
        body = await self._conn().request(protocol.encode_simple(Op.FLUSH))
        return protocol.decode_root_response(body)


def _parse_addr(addr: str) -> Tuple[str, int]:
    """``host:port`` -> ``(host, port)`` (the referral payload shape)."""
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise StorageError(f"malformed primary address {addr!r}")
    return host, int(port)


class ReplicatedClient(KVClient):
    """Reads fanned across replicas, writes routed to the primary.

    ``replicas`` lists read-serving replica addresses; reads round-robin
    over the healthy ones (plus the primary when ``read_primary`` is
    true, or whenever no replica is usable) and retry once against the
    primary when the chosen replica fails mid-request — replica reads
    are idempotent, so the retry is safe.  A write answered with
    ``NOT_PRIMARY`` (the configured "primary" was actually a replica)
    reconnects to the address the rejection carried and retries once.
    """

    def __init__(
        self,
        primary: Tuple[str, int],
        replicas: Sequence[Tuple[str, int]] = (),
        pool_size: int = 1,
        max_lag: Optional[int] = None,
        read_primary: bool = True,
    ) -> None:
        self._primary_addr = primary
        self._replica_addrs = list(replicas)
        self.pool_size = pool_size
        self.max_lag = max_lag
        self.read_primary = read_primary
        self._primary: Optional[ServerClient] = None
        self._replicas: List[ServerClient] = []
        self._lagging: set = set()  # indexes sidelined by refresh_lag
        self._next = 0
        self.redirects = 0
        self.read_fallbacks = 0

    @property
    def primary(self) -> ServerClient:
        if self._primary is None:
            raise StorageError("client is not connected")
        return self._primary

    @property
    def replicas(self) -> List[ServerClient]:
        return list(self._replicas)

    async def connect(self) -> "ReplicatedClient":
        """Open the primary and every replica (all-or-nothing)."""
        primary = ServerClient(*self._primary_addr, pool_size=self.pool_size)
        opened: List[ServerClient] = []
        try:
            await primary.connect()
            for host, port in self._replica_addrs:
                replica = ServerClient(host, port, pool_size=self.pool_size)
                await replica.connect()
                opened.append(replica)
        except BaseException:
            for client in opened:
                await client.close()
            await primary.close()
            raise
        self._primary = primary
        self._replicas = opened
        return self

    async def close(self) -> None:
        clients, self._replicas = self._replicas, []
        for client in clients:
            await client.close()
        if self._primary is not None:
            primary, self._primary = self._primary, None
            await primary.close()

    async def __aenter__(self) -> "ReplicatedClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- read routing ---------------------------------------------------------

    def _read_targets(self) -> List[ServerClient]:
        """Round-robin order for one read: chosen node first, primary last."""
        pool: List[ServerClient] = [
            replica
            for index, replica in enumerate(self._replicas)
            if index not in self._lagging
        ]
        if self.read_primary or not pool:
            pool.append(self.primary)
        start = self._next % len(pool)
        self._next += 1
        ordered = pool[start:] + pool[:start]
        if self._primary is not None and self._primary not in ordered:
            ordered.append(self._primary)  # last-resort fallback
        return ordered

    async def _read(self, issue):
        targets = self._read_targets()
        for index, target in enumerate(targets):
            try:
                return await issue(target)
            except (StorageError, ConnectionError, OSError):
                # NotPrimaryError cannot happen on reads; anything else
                # (replica down, mid-stream disconnect) falls through to
                # the next target, ending at the primary.
                if index == len(targets) - 1:
                    raise
                self.read_fallbacks += 1

    async def get(self, addr: bytes) -> Optional[bytes]:
        """Latest value of ``addr`` from any replica (primary fallback)."""
        return await self._read(lambda client: client.get(addr))

    async def get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        """Value of ``addr`` as of block ``blk`` from any replica."""
        return await self._read(lambda client: client.get_at(addr, blk))

    async def multi_get(self, addrs: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched latest-value read from any replica (primary fallback)."""
        return await self._read(lambda client: client.multi_get(addrs))

    async def prov(
        self, addr: bytes, blk_low: int, blk_high: int
    ) -> Tuple[object, bytes]:
        """Provenance from any replica — the proof self-verifies against
        the ``Hstate`` digest it returns, replica or not."""
        return await self._read(lambda client: client.prov(addr, blk_low, blk_high))

    async def scan(
        self,
        addr_low: bytes,
        addr_high: bytes,
        *,
        at_blk: Optional[int] = None,
        limit: Optional[int] = None,
        page_size: int = 0,
    ) -> List[Tuple[bytes, int, bytes]]:
        """Range scan from any replica (primary fallback).

        The whole paged scan runs against one chosen node: pages are
        snapshot-pinned to the first page's height, and a different
        replica might not have applied that height yet — it would
        silently serve an incomplete view of the pinned snapshot.
        """
        return await self._read(
            lambda client: client.scan(
                addr_low, addr_high, at_blk=at_blk, limit=limit, page_size=page_size
            )
        )

    # -- write routing --------------------------------------------------------

    async def _on_primary(self, issue):
        try:
            return await issue(self.primary)
        except Referral as exc:
            # The configured primary is a replica (NOT_PRIMARY) or the
            # shard has moved (MOVED): either way the rejection names
            # the server that will accept the write — follow it.
            self.redirects += 1
            redirected = ServerClient(
                *_parse_addr(exc.address), pool_size=self.pool_size
            )
            await redirected.connect()
            stale, self._primary = self._primary, redirected
            if stale is not None:
                await stale.close()
            return await issue(self.primary)

    async def put(self, addr: bytes, value: bytes) -> int:
        """Write through the primary (follows NOT_PRIMARY referrals)."""
        return await self._on_primary(lambda client: client.put(addr, value))

    async def multi_put(self, items: Sequence[Tuple[bytes, bytes]]) -> int:
        """Batched write through the primary (follows referrals)."""
        return await self._on_primary(lambda client: client.multi_put(items))

    async def flush(self) -> RootInfo:
        """Force a group commit on the primary."""
        return await self._on_primary(lambda client: client.flush())

    async def root(self) -> RootInfo:
        """The primary's committed state anchor."""
        return await self._on_primary(lambda client: client.root())

    async def stats(self) -> dict:
        """The primary's STATS."""
        return await self._on_primary(lambda client: client.stats())

    async def metrics(self) -> str:
        """The primary's metrics exposition."""
        return await self._on_primary(lambda client: client.metrics())

    # -- replica health -------------------------------------------------------

    async def replica_roots(self) -> List[RootInfo]:
        """Every replica's current ROOT (for lag / equality checks)."""
        return [await replica.root() for replica in self._replicas]

    async def refresh_lag(self) -> List[int]:
        """Re-measure replica lag; sideline replicas beyond ``max_lag``.

        Returns the lag (in blocks) per replica.  With ``max_lag`` unset
        this is measurement only — no replica is sidelined.
        """
        primary_height = (await self.root()).height
        lags: List[int] = []
        lagging: set = set()
        for index, replica in enumerate(self._replicas):
            try:
                height = (await replica.root()).height
                lag = max(0, primary_height - height)
            except (StorageError, ConnectionError, OSError):
                lag = -1  # unreachable counts as infinitely behind
            lags.append(lag)
            if self.max_lag is not None and (lag < 0 or lag > self.max_lag):
                lagging.add(index)
        self._lagging = lagging
        return lags


Target = Union[str, Tuple[str, int]]


def _to_addr(target: Target) -> Tuple[str, int]:
    """Accept ``"host:port"`` or ``(host, port)``; return the tuple."""
    if isinstance(target, str):
        return _parse_addr(target)
    host, port = target
    return host, int(port)


def connect(
    target: Optional[Target] = None,
    *,
    replicas: Sequence[Target] = (),
    manifest: object = None,
    manifest_file: Optional[str] = None,
    seeds: Sequence[Target] = (),
    pool_size: int = 1,
    max_lag: Optional[int] = None,
    read_primary: bool = True,
) -> KVClient:
    """Build the right :class:`KVClient` for the serving topology.

    The factory — not the caller — picks the client class:

    * cluster arguments (``manifest``, ``manifest_file``, or ``seeds``)
      select the manifest-routed ``ClusterClient``;
    * ``replicas`` (with ``target`` as the primary) selects
      :class:`ReplicatedClient`;
    * a bare ``target`` selects the single-server :class:`ServerClient`.

    Targets are ``"host:port"`` strings or ``(host, port)`` tuples.  The
    returned client is *not yet connected*: use ``async with
    connect(...) as client`` or ``await connect(...).connect()``.
    """
    cluster_args = manifest is not None or manifest_file or seeds
    if cluster_args:
        if target is not None or replicas:
            raise StorageError(
                "connect(): cluster arguments (manifest/manifest_file/seeds) "
                "are exclusive with target/replicas"
            )
        # Imported lazily: repro.cluster depends on this module.
        from repro.cluster.client import ClusterClient

        seed_addrs = tuple(
            seed if isinstance(seed, str) else "%s:%d" % _to_addr(seed)
            for seed in seeds
        )
        return ClusterClient(
            manifest=manifest,
            manifest_file=manifest_file,
            seeds=seed_addrs,
            pool_size=pool_size,
        )
    if target is None:
        raise StorageError("connect() needs a target or cluster arguments")
    if replicas:
        return ReplicatedClient(
            _to_addr(target),
            [_to_addr(replica) for replica in replicas],
            pool_size=pool_size,
            max_lag=max_lag,
            read_primary=read_primary,
        )
    host, port = _to_addr(target)
    return ServerClient(host, port, pool_size=pool_size)
