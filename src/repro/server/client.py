"""The asyncio client of the serving layer: pooled, pipelined connections.

A :class:`ServerClient` owns ``pool_size`` TCP connections and spreads
requests across them round-robin.  Each connection **pipelines**: a
request is written and its response future queued without waiting for
earlier responses, and a per-connection reader task resolves futures in
FIFO order — valid because the server answers every connection strictly
in request order.  Pipelining removes the per-op network round trip from
the critical path, which is where most of a small op's latency lives.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common.errors import StorageError
from repro.server import protocol
from repro.server.protocol import Op, RootInfo


class _Connection:
    """One TCP connection with FIFO response matching."""

    def __init__(self) -> None:
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self._pending: Deque[asyncio.Future] = deque()
        self._reader_task: Optional[asyncio.Task] = None
        self._send_lock = asyncio.Lock()
        self._closed = False

    async def open(self, host: str, port: int) -> None:
        self.reader, self.writer = await asyncio.open_connection(host, port)
        try:
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop()
            )
        except BaseException:
            self.writer.close()  # never leak a connected socket
            raise

    async def _read_loop(self) -> None:
        try:
            while True:
                body = await protocol.read_frame(self.reader)
                if body is None:
                    break
                if not self._pending:
                    raise StorageError("unsolicited response frame")
                future = self._pending.popleft()
                if not future.done():
                    future.set_result(body)
        except Exception as exc:  # noqa: BLE001 — fail every waiter
            self._fail_pending(exc)
        else:
            self._fail_pending(StorageError("connection closed by server"))

    def _fail_pending(self, exc: BaseException) -> None:
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(exc)

    async def request(self, frame: bytes) -> bytes:
        """Send one frame, await its response body (pipelined)."""
        if self._closed or self.writer is None:
            raise StorageError("connection is closed")
        future = asyncio.get_running_loop().create_future()
        # The (enqueue, write) pair must be atomic per request so the
        # FIFO future queue matches the server's response order.
        async with self._send_lock:
            self._pending.append(future)
            self.writer.write(frame)
            await self.writer.drain()
        return await future

    async def close(self) -> None:
        self._closed = True
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass


class ServerClient:
    """Typed ops over a pool of pipelined connections."""

    def __init__(self, host: str, port: int, pool_size: int = 1) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self._conns: List[_Connection] = []
        self._next = 0

    async def connect(self) -> "ServerClient":
        """Open every pooled connection.

        All-or-nothing: when one open fails mid-pool-fill, every
        connection opened so far is closed before the error propagates —
        a half-built pool would otherwise leak its sockets (and their
        reader tasks) with no handle left to close them.
        """
        conns: List[_Connection] = []
        try:
            for _ in range(self.pool_size):
                conn = _Connection()
                await conn.open(self.host, self.port)
                conns.append(conn)
        except BaseException:
            for conn in conns:
                await conn.close()
            raise
        self._conns = conns
        return self

    async def close(self) -> None:
        """Close every pooled connection."""
        conns, self._conns = self._conns, []
        for conn in conns:
            await conn.close()

    async def __aenter__(self) -> "ServerClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def _conn(self) -> _Connection:
        if not self._conns:
            raise StorageError("client is not connected")
        conn = self._conns[self._next % len(self._conns)]
        self._next += 1
        return conn

    # -- ops ------------------------------------------------------------------

    async def put(self, addr: bytes, value: bytes) -> int:
        """Buffer a write on the server; returns its target block height."""
        body = await self._conn().request(protocol.encode_put(addr, value))
        return protocol.decode_height_response(body)

    async def get(self, addr: bytes) -> Optional[bytes]:
        """Latest value of ``addr`` (read-your-writes across all clients)."""
        body = await self._conn().request(protocol.encode_get(addr))
        return protocol.decode_value_response(body)

    async def get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        """Value of ``addr`` as of block ``blk``."""
        body = await self._conn().request(protocol.encode_get_at(addr, blk))
        return protocol.decode_value_response(body)

    async def prov(
        self, addr: bytes, blk_low: int, blk_high: int
    ) -> Tuple[object, bytes]:
        """Provenance result plus the ``Hstate`` digest it verifies against."""
        body = await self._conn().request(protocol.encode_prov(addr, blk_low, blk_high))
        result, root = protocol.decode_prov_response(body)
        return result, root

    async def root(self) -> RootInfo:
        """Committed state root, commit version, and block height."""
        body = await self._conn().request(protocol.encode_simple(Op.ROOT))
        return protocol.decode_root_response(body)

    async def stats(self) -> dict:
        """The server's serving statistics (JSON-decoded)."""
        import json

        body = await self._conn().request(protocol.encode_simple(Op.STATS))
        return json.loads(protocol.decode_blob_response(body))

    async def flush(self) -> RootInfo:
        """Force a group commit; returns the new state anchor."""
        body = await self._conn().request(protocol.encode_simple(Op.FLUSH))
        return protocol.decode_root_response(body)
