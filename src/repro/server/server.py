"""The asyncio TCP server fronting a COLE engine.

One :class:`ColeServer` owns one engine — a single
:class:`~repro.core.storage.Cole` or a sharded
:class:`~repro.sharding.engine.ShardedCole` — and serves the
length-prefixed binary protocol of :mod:`repro.server.protocol` to any
number of concurrent connections.

Request flow:

* **PUT** is acknowledged as soon as it lands in the
  :class:`~repro.server.batcher.WriteBatcher`; group commit folds many
  clients' writes into one block.
* **GET / GET_AT** consult, in order: the batcher overlay (buffered
  writes, read-your-writes for everyone), the
  :class:`~repro.server.cache.VersionedReadCache` (exact: entries are
  stamped with the commit version and die wholesale at every group
  commit), and finally the engine itself on the thread pool.
* **PROV** first forces a group commit so the proof anchors to a
  committed ``Hstate``, then runs the engine's anchored provenance query.
* **ROOT / STATS / FLUSH** are control-plane ops.

Each connection's requests are answered strictly in order, so clients
may pipeline.  Engine work runs on a small thread pool; the engine's
:class:`~repro.common.gate.CommitGate` keeps those concurrent reads safe
against commit checkpoints and background merge cascades.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.common.errors import StorageError
from repro.server import protocol
from repro.server.batcher import MISSING, WriteBatcher
from repro.server.cache import VersionedReadCache
from repro.server.protocol import Op, RootInfo


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of the serving layer.

    Attributes:
        batch_max_puts: group-commit size threshold.
        batch_max_delay: group-commit time threshold (seconds).
        cache_capacity: entries in the versioned read cache.
        executor_workers: threads running engine work (reads + commits).
    """

    batch_max_puts: int = 512
    batch_max_delay: float = 0.01
    cache_capacity: int = 8192
    executor_workers: int = 8

    def __post_init__(self) -> None:
        if self.batch_max_puts < 1:
            raise ValueError("batch_max_puts must be >= 1")
        if self.batch_max_delay <= 0:
            raise ValueError("batch_max_delay must be positive")
        if self.executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")


class _WalSyncer:
    """Group-commit fsync: one fsync acks every put appended before it.

    PUT handlers park on :meth:`durable` with the LSN their record got;
    at most one WAL sync runs at a time (on the thread pool), and each
    completed sync resolves every waiter it covered — the more clients
    pile on, the more acks each fsync amortizes.
    """

    def __init__(self, wal, run_in_executor) -> None:
        self.wal = wal
        self._run = run_in_executor
        self._waiters: List[tuple] = []  # heap of (lsn, seq, future)
        self._seq = 0
        self._task: Optional[asyncio.Task] = None

    async def durable(self, lsn: int) -> None:
        """Return once the WAL record at ``lsn`` is durable (per policy)."""
        policy = self.wal.sync_policy
        if policy == "none":
            return  # ack on reaching the OS page cache
        if policy == "always":
            await self._run(self.wal.sync)  # strict: an fsync per ack
            return
        if lsn <= self.wal.synced_lsn:
            return
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        heapq.heappush(self._waiters, (lsn, self._seq, future))
        self._seq += 1
        if self._task is None:
            self._task = loop.create_task(self._drain())
        await future

    async def _drain(self) -> None:
        try:
            while self._waiters:
                try:
                    synced = await self._run(self.wal.sync)
                except Exception as exc:  # fail every parked ack loudly
                    error = StorageError(f"WAL sync failed: {exc}")
                    while self._waiters:
                        _, _, future = heapq.heappop(self._waiters)
                        if not future.done():
                            future.set_exception(error)
                    return
                while self._waiters and self._waiters[0][0] <= synced:
                    _, _, future = heapq.heappop(self._waiters)
                    if not future.done():
                        future.set_result(None)
        finally:
            self._task = None


class ColeServer:
    """Serve one engine over TCP."""

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServerConfig] = None,
        wal=None,
    ) -> None:
        """Wrap ``engine`` (a ``Cole`` or ``ShardedCole``); ``port=0``
        binds an ephemeral port (reported by :meth:`start`).

        ``wal`` (a :class:`~repro.wal.WriteAheadLog`, caller-owned like
        the engine) makes the server durable: its unreplayed tail is
        replayed into the engine before the port binds, and every PUT is
        acknowledged only once its record is durable under the WAL's
        sync policy.
        """
        self.engine = engine
        self.host = host
        self.port = port
        self.config = config if config is not None else ServerConfig()
        self.wal = wal
        self.wal_syncer: Optional[_WalSyncer] = None
        self.replay_stats = None  # ReplayStats once start() recovered
        self.cache = VersionedReadCache(self.config.cache_capacity)
        #: Commit version: the read-cache epoch, bumped per group commit.
        self.version = 0
        self.batcher: Optional[WriteBatcher] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._conn_writers: Set[asyncio.StreamWriter] = set()
        # Op counters (STATS).
        self.op_counts = {"put": 0, "get": 0, "get_at": 0, "prov": 0,
                          "root": 0, "stats": 0, "flush": 0}
        self.overlay_hits = 0
        self.connections_total = 0

    # =========================================================================
    # lifecycle
    # =========================================================================

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        With a WAL attached, the unacked tail is replayed into the
        engine first — no request can observe pre-recovery state.
        """
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="cole-serve",
        )
        if self.wal is not None:
            from repro.wal import replay_wal

            self.replay_stats = await self._run(replay_wal, self.engine, self.wal)
            self.wal_syncer = _WalSyncer(self.wal, self._run)
        self.batcher = WriteBatcher(
            self.engine,
            max_batch=self.config.batch_max_puts,
            max_delay=self.config.batch_max_delay,
            run_in_executor=self._run,
            on_commit=self._committed,
            wal=self.wal,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled or :meth:`stop`."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting, drain the batcher, release the thread pool.

        The engine is *not* closed — the caller owns it.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing the transports ends each handler's read loop at its
        # next frame boundary — no task cancellation, no half-written
        # responses.
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self.batcher is not None:
            await self.batcher.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _run(self, fn, *args):
        """Run engine work on the thread pool; awaitable."""
        return asyncio.get_running_loop().run_in_executor(self._executor, fn, *args)

    def _committed(self, height: int, root, batch_size: int) -> None:
        """Group-commit hook: a new epoch begins, the cache's old answers
        expire wholesale (they are only stale for written addresses, but
        those are covered by the overlay until this very instant)."""
        self.version += 1

    # =========================================================================
    # connection handling
    # =========================================================================

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_total += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._conn_writers.add(writer)
        try:
            while True:
                body = await protocol.read_frame(reader)
                if body is None:
                    break
                try:
                    op, args = protocol.decode_request(body)
                    response = await self._dispatch(op, args)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    response = protocol.encode_error(f"{type(exc).__name__}: {exc}")
                writer.write(response)
                await writer.drain()
        except StorageError:
            # Broken framing (oversized length prefix, mid-frame close):
            # no way to answer reliably — drop the connection.
            pass
        except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, op: int, args: tuple) -> bytes:
        if op == Op.PUT:
            self.op_counts["put"] += 1
            addr, value = args
            height = self.batcher.put(addr, value)
            if self.wal_syncer is not None:
                # The write is buffered and WAL-appended; the ack waits
                # for its record to be durable (group fsync).
                await self.wal_syncer.durable(self.batcher.last_put_lsn)
            return protocol.encode_height_response(height)
        if op == Op.GET:
            self.op_counts["get"] += 1
            return protocol.encode_value_response(await self._get(args[0]))
        if op == Op.GET_AT:
            self.op_counts["get_at"] += 1
            addr, blk = args
            return protocol.encode_value_response(await self._get_at(addr, blk))
        if op == Op.PROV:
            self.op_counts["prov"] += 1
            return await self._prov(*args)
        if op == Op.ROOT:
            self.op_counts["root"] += 1
            return protocol.encode_root_response(await self._root_info())
        if op == Op.STATS:
            self.op_counts["stats"] += 1
            blob = json.dumps(await self._stats()).encode()
            return protocol.encode_blob_response(blob)
        if op == Op.FLUSH:
            self.op_counts["flush"] += 1
            self.batcher.forced_flushes += 1
            root, height = await self.batcher.flush()
            return protocol.encode_root_response(
                RootInfo(digest=root, version=self.version, height=height)
            )
        return protocol.encode_error(f"unknown opcode {op}")

    # =========================================================================
    # reads
    # =========================================================================

    async def _get(self, addr: bytes) -> Optional[bytes]:
        buffered = self.batcher.lookup(addr)
        if buffered is not MISSING:
            self.overlay_hits += 1
            return buffered
        version = self.version
        hit, value = self.cache.get((0, addr), version)
        if hit:
            return value
        value = await self._run(self.engine.get, addr)
        self.cache.put((0, addr), version, value)
        return value

    async def _get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        buffered = self.batcher.lookup_at(addr, blk)
        if buffered is not MISSING:
            self.overlay_hits += 1
            return buffered
        version = self.version
        hit, value = self.cache.get((1, addr, blk), version)
        if hit:
            return value
        value = await self._run(self.engine.get_at, addr, blk)
        self.cache.put((1, addr, blk), version, value)
        return value

    async def _prov(self, addr: bytes, blk_low: int, blk_high: int) -> bytes:
        # Anchor at a committed Hstate: buffered writes must be in the
        # engine before the proof is cut, or a range covering the open
        # block would silently miss them.
        await self.batcher.flush()
        result, root = await self._run(
            self.engine.prov_query_anchored, addr, blk_low, blk_high
        )
        blob = pickle.dumps((result, root), protocol=pickle.HIGHEST_PROTOCOL)
        return protocol.encode_blob_response(blob)

    # =========================================================================
    # control plane
    # =========================================================================

    async def _root_info(self) -> RootInfo:
        if self.batcher.last_root is None:
            self.batcher.last_root = await self._run(self.engine.root_digest)
        return RootInfo(
            digest=self.batcher.last_root,
            version=self.version,
            height=self.batcher.last_height,
        )

    async def _stats(self) -> dict:
        batcher = self.batcher
        engine = self.engine
        storage = await self._run(engine.storage_bytes)
        num_shards = len(engine.shards) if hasattr(engine, "shards") else 1
        stats = {
            "ops": dict(self.op_counts),
            "connections_total": self.connections_total,
            "version": self.version,
            "committed_height": batcher.last_height,
            "open_height": batcher._next_height,
            "buffered_puts": batcher.buffered,
            "overlay_hits": self.overlay_hits,
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
                "entries": len(self.cache),
                "capacity": self.cache.capacity,
            },
            "batcher": {
                "commits": batcher.commits,
                "batched_puts": batcher.batched_puts,
                "avg_batch": (
                    batcher.batched_puts / batcher.commits if batcher.commits else 0.0
                ),
                "size_flushes": batcher.size_flushes,
                "timer_flushes": batcher.timer_flushes,
                "forced_flushes": batcher.forced_flushes,
            },
            "engine": {
                "puts_total": engine.puts_total,
                "storage_bytes": storage,
                "disk_levels": engine.num_disk_levels(),
                "shards": num_shards,
            },
        }
        engine_stats = getattr(engine, "stats", None)
        if engine_stats is not None:
            stats["io"] = {
                "page_reads": engine_stats.total_reads,
                "page_writes": engine_stats.total_writes,
            }
        if self.wal is not None:
            stats["wal"] = self.wal.stats()
            if self.replay_stats is not None:
                stats["wal"]["replayed_blocks"] = self.replay_stats.blocks_replayed
                stats["wal"]["replayed_puts"] = self.replay_stats.puts_replayed
        return stats


class ServerThread:
    """A :class:`ColeServer` on its own event-loop thread.

    The in-process deployment shape used by the benchmarks, the tests,
    and the demo: the caller's thread stays free to run clients (or an
    entire load generator) against real sockets while the server loop
    runs here.  ``start`` blocks until the port is bound; ``stop`` is
    idempotent and joins the thread.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServerConfig] = None,
        wal=None,
    ) -> None:
        self.server = ColeServer(engine, host, port, config, wal=wal)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        """Spawn the loop thread; returns the bound ``(host, port)``.

        Idempotent: calling again while running just reports the address.
        """
        if self._thread is not None and self._thread.is_alive():
            return self.server.host, self.server.port
        self._thread = threading.Thread(
            target=self._run, name="cole-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.server.host, self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()  # until stop() calls loop.stop()
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()

    def stop(self) -> None:
        """Stop serving and join the loop thread (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
        thread.join()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
