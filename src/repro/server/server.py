"""The asyncio TCP server fronting a COLE engine.

One :class:`ColeServer` owns one engine — a single
:class:`~repro.core.storage.Cole` or a sharded
:class:`~repro.sharding.engine.ShardedCole` — and serves the
length-prefixed binary protocol of :mod:`repro.server.protocol` to any
number of concurrent connections.

Request flow:

* **PUT** is acknowledged as soon as it lands in the
  :class:`~repro.server.batcher.WriteBatcher`; group commit folds many
  clients' writes into one block.
* **GET / GET_AT** consult, in order: the batcher overlay (buffered
  writes, read-your-writes for everyone), the
  :class:`~repro.server.cache.VersionedReadCache` (exact: entries are
  stamped with the commit version and die wholesale at every group
  commit), and finally the engine itself on the thread pool.
* **PROV** first forces a group commit so the proof anchors to a
  committed ``Hstate``, then runs the engine's anchored provenance query.
* **SCAN** snapshots at a committed height: an un-pinned (latest)
  request first forces a group commit so acked-but-buffered writes are
  in the engine (merging the overlay into an ordered stream would
  re-create the ad-hoc read paths the cursor layer replaced), is pinned
  to the resulting committed height, and answers one result page from
  the engine's cursor-based ``scan`` with a continuation key when the
  range has more; pinned requests (explicit ``at_blk``, continuation
  pages) skip the flush — the open batch cannot commit at a height they
  can see.  Scans bypass the
  :class:`~repro.server.cache.VersionedReadCache` entirely: the cache is
  exact-key, and a range result is invalidated by *any* write in the
  range, which the version stamp cannot express per-entry.
* **ROOT / STATS / FLUSH** are control-plane ops.
* **REPL_SUBSCRIBE** (WAL-enabled primaries only) turns the connection
  into a replication stream: catch-up from the on-disk WAL, then live
  batches from the :class:`~repro.replication.ReplicationHub`.

**Replica mode** (``replica_of=(host, port)``): the server runs no write
batcher and no WAL of its own — a :class:`~repro.replication.ReplicaApplier`
task tails the primary's stream and applies each commit through the
engine, while GET / GET_AT / PROV / ROOT / STATS serve as usual and
PUT / FLUSH are rejected with ``NOT_PRIMARY`` carrying the primary's
address.  Applied commits bump the same cache epoch a local group commit
would, so the versioned read cache stays exact.

Each connection's requests are answered strictly in order, so clients
may pipeline.  Engine work runs on a small thread pool; the engine's
:class:`~repro.common.gate.CommitGate` keeps those concurrent reads safe
against commit checkpoints and background merge cascades.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.common.errors import StorageError
from repro.obs import MetricsRegistry
from repro.server import protocol
from repro.server.batcher import MISSING, WriteBatcher
from repro.server.cache import NegativeLookupCache, VersionedReadCache
from repro.server.protocol import Op, RootInfo

#: Opcode -> STATS/metrics label, shared by the op counters and the
#: per-op latency histograms.
OP_NAMES = {
    Op.PUT: "put",
    Op.GET: "get",
    Op.GET_AT: "get_at",
    Op.PROV: "prov",
    Op.ROOT: "root",
    Op.STATS: "stats",
    Op.FLUSH: "flush",
    Op.REPL_SUBSCRIBE: "repl",
    Op.SCAN: "scan",
    Op.MULTI_GET: "multi_get",
    Op.MULTI_PUT: "multi_put",
    Op.METRICS: "metrics",
    Op.CLUSTER: "cluster",
    Op.ADMIN: "admin",
}


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of the serving layer.

    Attributes:
        batch_max_puts: group-commit size threshold.
        batch_max_delay: group-commit time threshold (seconds).
        cache_capacity: entries in the versioned read cache.
        negative_cache_capacity: addresses in the negative-lookup cache
            (0 disables it).
        executor_workers: threads running engine work (reads + commits).
    """

    batch_max_puts: int = 512
    batch_max_delay: float = 0.01
    cache_capacity: int = 8192
    negative_cache_capacity: int = 4096
    executor_workers: int = 8
    #: Hard cap on triples per SCAN result page (bounds frame sizes and
    #: per-request engine work; longer scans ride the continuation key).
    scan_page_max: int = 1024
    #: Page size used when a SCAN request asks for 0 (no explicit limit).
    scan_page_default: int = 256

    def __post_init__(self) -> None:
        if self.batch_max_puts < 1:
            raise ValueError("batch_max_puts must be >= 1")
        if self.batch_max_delay <= 0:
            raise ValueError("batch_max_delay must be positive")
        if self.executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")
        if self.scan_page_max < 1 or self.scan_page_default < 1:
            raise ValueError("scan page sizes must be >= 1")
        if self.negative_cache_capacity < 0:
            raise ValueError("negative_cache_capacity cannot be negative")


class _WalSyncer:
    """Group-commit fsync: one fsync acks every put appended before it.

    PUT handlers park on :meth:`durable` with the LSN their record got;
    at most one WAL sync runs at a time (on the thread pool), and each
    completed sync resolves every waiter it covered — the more clients
    pile on, the more acks each fsync amortizes.
    """

    def __init__(self, wal, run_in_executor, metrics=None) -> None:
        self.wal = wal
        self._run = run_in_executor
        self._waiters: List[tuple] = []  # heap of (lsn, seq, future)
        self._seq = 0
        self._task: Optional[asyncio.Task] = None
        self._fsync_hist = None
        if metrics is not None:
            self._fsync_hist = metrics.histogram(
                "repro_wal_fsync_seconds", help="WAL sync() latency"
            )

    async def _sync(self) -> int:
        started = time.perf_counter()
        synced = await self._run(self.wal.sync)
        if self._fsync_hist is not None:
            self._fsync_hist.observe(time.perf_counter() - started)
        return synced

    async def durable(self, lsn: int) -> None:
        """Return once the WAL record at ``lsn`` is durable (per policy)."""
        policy = self.wal.sync_policy
        if policy == "none":
            return  # ack on reaching the OS page cache
        if policy == "always":
            await self._sync()  # strict: an fsync per ack
            return
        if lsn <= self.wal.synced_lsn:
            return
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        heapq.heappush(self._waiters, (lsn, self._seq, future))
        self._seq += 1
        if self._task is None:
            self._task = loop.create_task(self._drain())
        await future

    async def _drain(self) -> None:
        try:
            while self._waiters:
                try:
                    synced = await self._sync()
                except Exception as exc:  # fail every parked ack loudly
                    error = StorageError(f"WAL sync failed: {exc}")
                    while self._waiters:
                        _, _, future = heapq.heappop(self._waiters)
                        if not future.done():
                            future.set_exception(error)
                    return
                while self._waiters and self._waiters[0][0] <= synced:
                    _, _, future = heapq.heappop(self._waiters)
                    if not future.done():
                        future.set_result(None)
        finally:
            self._task = None


class ColeServer:
    """Serve one engine over TCP."""

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServerConfig] = None,
        wal=None,
        replica_of: Optional[Tuple[str, int]] = None,
        cluster=None,
        replica_wal=None,
    ) -> None:
        """Wrap ``engine`` (a ``Cole`` or ``ShardedCole``); ``port=0``
        binds an ephemeral port (reported by :meth:`start`).

        ``wal`` (a :class:`~repro.wal.WriteAheadLog`, caller-owned like
        the engine) makes the server durable: its unreplayed tail is
        replayed into the engine before the port binds, and every PUT is
        acknowledged only once its record is durable under the WAL's
        sync policy.  A WAL-enabled server is also a replication
        *primary*: replicas may subscribe to its record stream.

        ``replica_of`` makes this server a read-only *replica* of the
        primary at ``(host, port)``; replicas keep no WAL of their own
        (their recovery source is the primary's stream), so the two
        options are mutually exclusive.  ``replica_wal`` is the cluster
        migration exception: a *local* WAL the applier mirrors every
        applied batch into, so a catch-up replica that is about to be
        promoted to primary can recover from its own disk — the promoted
        server then reuses the same WAL through the ordinary ``wal=``
        recovery path.

        ``cluster`` (a :class:`~repro.cluster.node.ShardRole`, duck-
        typed) makes this server one shard of a cluster: its
        ``referral_for`` hook is consulted before every dispatch and may
        answer ``MOVED`` instead (mid-migration cutover, or a key the
        shard does not own), and ``Op.CLUSTER`` serves its manifest.
        """
        if replica_of is not None and wal is not None:
            raise ValueError(
                "a replica keeps no WAL of its own; recovery re-streams "
                "from the primary"
            )
        if replica_wal is not None and replica_of is None:
            raise ValueError("replica_wal only applies to a replica server")
        self.engine = engine
        self.host = host
        self.port = port
        self.config = config if config is not None else ServerConfig()
        self.wal = wal
        self.wal_syncer: Optional[_WalSyncer] = None
        self.replay_stats = None  # ReplayStats once start() recovered
        self.replica_of = replica_of
        self.replica_wal = replica_wal
        self.cluster = cluster
        self.replica = None  # ReplicaApplier in replica mode
        self.hub = None  # ReplicationHub on a WAL-enabled primary
        self._replica_task: Optional[asyncio.Task] = None
        self.cache = VersionedReadCache(self.config.cache_capacity)
        self.negative = NegativeLookupCache(self.config.negative_cache_capacity)
        #: Commit version: the read-cache epoch, bumped per group commit.
        self.version = 0
        self.batcher: Optional[WriteBatcher] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._conn_writers: Set[asyncio.StreamWriter] = set()
        # Op counters (STATS).
        self.op_counts = {name: 0 for name in OP_NAMES.values()}
        self.overlay_hits = 0
        self.connections_total = 0
        #: The process-wide metrics registry: per-op latency histograms
        #: land here, the batcher / WAL syncer / merge schedulers /
        #: replica applier record into it, and ``Op.METRICS`` exposes it.
        self.metrics = MetricsRegistry()
        self._op_hists: dict = {}  # opcode -> cached latency histogram

    # =========================================================================
    # lifecycle
    # =========================================================================

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        With a WAL attached, the unacked tail is replayed into the
        engine first — no request can observe pre-recovery state.
        """
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="cole-serve",
        )
        if self.wal is not None:
            from repro.replication import ReplicationHub
            from repro.wal import replay_wal

            self.replay_stats = await self._run(replay_wal, self.engine, self.wal)
            # Recovery re-commits blocks without writing COMMIT markers;
            # re-mark them so a replica's catch-up scan can ship those
            # heights (the roots are deterministic, so re-marking after
            # every recovery is idempotent in content).
            def _remark(replayed: dict) -> None:
                for height, root in sorted(replayed.items()):
                    self.wal.append_commit(height, root)

            await self._run(_remark, self.replay_stats.replayed_roots)
            if self.replay_stats.replayed_roots and self.wal.sync_policy != "none":
                await self._run(self.wal.sync)
            self.wal_syncer = _WalSyncer(self.wal, self._run, self.metrics)
            self.hub = ReplicationHub(self.engine, self.wal)
        if self.replica_of is not None:
            from repro.replication import ReplicaApplier

            self.replica = ReplicaApplier(
                self, *self.replica_of, wal=self.replica_wal
            )
            self._replica_task = asyncio.get_running_loop().create_task(
                self.replica.run()
            )
        else:
            self.batcher = WriteBatcher(
                self.engine,
                max_batch=self.config.batch_max_puts,
                max_delay=self.config.batch_max_delay,
                run_in_executor=self._run,
                on_commit=self._committed,
                wal=self.wal,
                hub=self.hub,
                metrics=self.metrics,
            )
        # Merge durations / bytes rewritten: every shard's scheduler
        # reports into this server's registry.
        for shard in getattr(self.engine, "shards", None) or [self.engine]:
            scheduler = getattr(shard, "scheduler", None)
            if scheduler is not None:
                scheduler.metrics = self.metrics
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled or :meth:`stop`."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting, drain the batcher, release the thread pool.

        The engine is *not* closed — the caller owns it.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._replica_task is not None:
            self._replica_task.cancel()
            try:
                await self._replica_task
            # The applier records its own terminal error (last_error /
            # diverged); stop() only needs the task to be finished.
            except (asyncio.CancelledError, Exception):  # repro-lint: disable=error-taxonomy
                pass
            self._replica_task = None
        if self.hub is not None:
            # Wake every replication stream with the end-of-stream
            # sentinel — their handlers park on queue.get(), which a
            # closed transport alone cannot interrupt.
            self.hub.close()
        # Closing the transports ends each handler's read loop at its
        # next frame boundary — no task cancellation, no half-written
        # responses.
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self.batcher is not None:
            await self.batcher.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _run(self, fn, *args):
        """Run engine work on the thread pool; awaitable."""
        return asyncio.get_running_loop().run_in_executor(self._executor, fn, *args)

    def _committed(self, height: int, root, batch_size: int) -> None:
        """Group-commit hook: a new epoch begins, the cache's old answers
        expire wholesale (they are only stale for written addresses, but
        those are covered by the overlay until this very instant)."""
        self.version += 1
        self.cache.advance(self.version)
        self.negative.advance(self.version)

    def _replica_committed(self, height: int, root) -> None:
        """Replica-apply hook: an applied primary commit is this server's
        group commit — same epoch bump, same cache invalidation."""
        self._committed(height, root, 0)

    # =========================================================================
    # connection handling
    # =========================================================================

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_total += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._conn_writers.add(writer)
        try:
            while True:
                body = await protocol.read_frame(reader)
                if body is None:
                    break
                started = time.perf_counter()
                try:
                    op, args = protocol.decode_request(body)
                    if op == Op.REPL_SUBSCRIBE:
                        # The connection becomes a one-way stream; when
                        # the stream ends, so does the connection.
                        await self._stream_replication(writer, args[0])
                        break
                    response = await self._dispatch(op, args)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    response = protocol.encode_error(f"{type(exc).__name__}: {exc}")
                else:
                    # Successful requests only: an errored op's timing
                    # measures the failure path, not the service.
                    self._observe_op(op, time.perf_counter() - started)
                writer.write(response)
                await writer.drain()
        except StorageError:
            # Broken framing (oversized length prefix, mid-frame close):
            # no way to answer reliably — drop the connection.
            pass
        except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                pass

    def _observe_op(self, op: int, elapsed: float) -> None:
        """Record one served request's wall time (histogram cached per
        opcode so the hot path never hits the registry dict)."""
        hist = self._op_hists.get(op)
        if hist is None:
            hist = self.metrics.histogram(
                "repro_op_latency_seconds",
                help="Server-side request latency by opcode",
                op=OP_NAMES.get(op, str(op)),
            )
            self._op_hists[op] = hist
        hist.observe(elapsed)

    async def _dispatch(self, op: int, args: tuple) -> bytes:
        if self.cluster is not None:
            # The cluster role may refer this request elsewhere (MOVED):
            # this check and the batcher insert below share one
            # synchronous dispatch, which is what makes the migration
            # cutover lossless — once the role flips to moved, no write
            # can slip in and ack here.
            referral = self.cluster.referral_for(op, args)
            if referral is not None:
                self.op_counts[OP_NAMES.get(op, "cluster")] += 1
                return referral
        if op in (Op.PUT, Op.MULTI_PUT, Op.FLUSH) and self.replica is not None:
            self.op_counts[
                {Op.PUT: "put", Op.MULTI_PUT: "multi_put", Op.FLUSH: "flush"}[op]
            ] += 1
            return protocol.encode_not_primary(self.replica.primary_addr)
        if op == Op.PUT:
            self.op_counts["put"] += 1
            addr, value = args
            height = self.batcher.put(addr, value)
            if self.wal_syncer is not None:
                # The write is buffered and WAL-appended; the ack waits
                # for its record to be durable (group fsync).
                await self.wal_syncer.durable(self.batcher.last_put_lsn)
            return protocol.encode_height_response(height)
        if op == Op.MULTI_PUT:
            self.op_counts["multi_put"] += 1
            height = self.batcher.put_batch(args[0])
            if self.wal_syncer is not None:
                # One durability wait for the whole batch: its records
                # share the batch LSN the group fsync must cover.
                await self.wal_syncer.durable(self.batcher.last_put_lsn)
            return protocol.encode_height_response(height)
        if op == Op.GET:
            self.op_counts["get"] += 1
            return protocol.encode_value_response(await self._get(args[0]))
        if op == Op.MULTI_GET:
            self.op_counts["multi_get"] += 1
            return protocol.encode_multi_get_response(await self._multi_get(args[0]))
        if op == Op.GET_AT:
            self.op_counts["get_at"] += 1
            addr, blk = args
            return protocol.encode_value_response(await self._get_at(addr, blk))
        if op == Op.PROV:
            self.op_counts["prov"] += 1
            return await self._prov(*args)
        if op == Op.SCAN:
            self.op_counts["scan"] += 1
            return await self._scan(*args)
        if op == Op.ROOT:
            self.op_counts["root"] += 1
            return protocol.encode_root_response(await self._root_info())
        if op == Op.STATS:
            self.op_counts["stats"] += 1
            blob = json.dumps(await self._stats()).encode()
            return protocol.encode_blob_response(blob)
        if op == Op.METRICS:
            self.op_counts["metrics"] += 1
            text = await self._metrics_text()
            return protocol.encode_blob_response(text.encode("utf-8"))
        if op == Op.FLUSH:
            self.op_counts["flush"] += 1
            self.batcher.forced_flushes += 1
            root, height = await self.batcher.flush()
            return protocol.encode_root_response(
                RootInfo(digest=root, version=self.version, height=height)
            )
        if op == Op.CLUSTER:
            self.op_counts["cluster"] += 1
            if self.cluster is None:
                return protocol.encode_error(
                    "this server is not a cluster member"
                )
            return protocol.encode_blob_response(self.cluster.manifest_json())
        if op == Op.ADMIN:
            self.op_counts["admin"] += 1
            return protocol.encode_error(
                "ADMIN is answered by the node control port, not a shard server"
            )
        return protocol.encode_error(f"unknown opcode {op}")

    # =========================================================================
    # replication streaming (primary side)
    # =========================================================================

    async def _stream_replication(
        self, writer: asyncio.StreamWriter, start_height: int
    ) -> None:
        """Serve one REPL_SUBSCRIBE connection until it drops.

        Order of operations is load-bearing: the queue registers
        *before* the catch-up scan, so a commit landing in between is
        seen by the scan (its marker is already on disk) or the queue or
        both — and duplicates are collapsed by the ``last`` watermark,
        which is sound because a height carries exactly one batch.
        """
        self.op_counts["repl"] += 1
        if self.hub is None:
            if self.replica is not None:
                writer.write(protocol.encode_not_primary(self.replica.primary_addr))
            else:
                writer.write(
                    protocol.encode_error(
                        "replication requires a WAL-enabled primary "
                        "(serve with --wal)"
                    )
                )
            await writer.drain()
            return
        try:
            self.hub.check_start(start_height)
        except StorageError as exc:
            writer.write(protocol.encode_error(str(exc)))
            await writer.drain()
            return
        queue = self.hub.register()
        # No await may separate the floor check, the registration, the
        # committed-height capture, and this flag: together they pin
        # every height above start_height — heights <= committed are
        # fully on disk and truncation defers while the flag is up;
        # later commits land in the queue.
        committed = self.batcher.last_height
        self.hub.catchups_active += 1
        try:
            try:
                writer.write(protocol.encode_repl_handshake(committed))
                await writer.drain()
                batches = await self._run(self.hub.catchup, start_height, committed)
            finally:
                self.hub.catchups_active -= 1
            last = start_height
            for height, records in batches:
                if height <= last:
                    continue
                for record in records:
                    writer.write(protocol.encode_repl_record(record))
                    self.hub.records_shipped += 1
                await writer.drain()
                last = height
            while True:
                batch = await queue.get()
                if batch is None:  # server stopping
                    return
                height, records = batch
                if height <= last:
                    continue
                for record in records:
                    writer.write(protocol.encode_repl_record(record))
                    self.hub.records_shipped += 1
                await writer.drain()
                last = height
        finally:
            self.hub.unregister(queue)

    # =========================================================================
    # reads
    # =========================================================================

    async def _get(self, addr: bytes) -> Optional[bytes]:
        buffered = self.batcher.lookup(addr) if self.batcher is not None else MISSING
        if buffered is not MISSING:
            self.overlay_hits += 1
            return buffered
        version = self.version
        # Misses live in the dedicated negative cache — a miss-heavy
        # workload must not evict the hot positive working set.
        if self.negative.contains(addr, version):
            return None
        hit, value = self.cache.get((0, addr), version)
        if hit:
            return value
        value = await self._run(self.engine.get, addr)
        if value is None:
            self.negative.add(addr, version)
        else:
            self.cache.put((0, addr), version, value)
        return value

    async def _multi_get(self, addrs: List[bytes]) -> List[Optional[bytes]]:
        """Answer one MULTI_GET batch: caches on-loop, one engine trip.

        Every key first runs the same overlay -> negative-cache -> read-
        cache ladder as :meth:`_get`; only the leftovers pay the thread-
        pool hop, as a single ``engine.get_many`` (one gate hold, one
        source walk) instead of an engine lookup per key.
        """
        version = self.version
        results: List[Optional[bytes]] = [None] * len(addrs)
        pending: List[int] = []
        for index, addr in enumerate(addrs):
            buffered = (
                self.batcher.lookup(addr) if self.batcher is not None else MISSING
            )
            if buffered is not MISSING:
                self.overlay_hits += 1
                results[index] = buffered
                continue
            if self.negative.contains(addr, version):
                continue
            hit, value = self.cache.get((0, addr), version)
            if hit:
                results[index] = value
                continue
            pending.append(index)
        if pending:
            values = await self._run(
                self.engine.get_many, [addrs[index] for index in pending]
            )
            for index, value in zip(pending, values):
                results[index] = value
                if value is None:
                    self.negative.add(addrs[index], version)
                else:
                    self.cache.put((0, addrs[index]), version, value)
        return results

    async def _get_at(self, addr: bytes, blk: int) -> Optional[bytes]:
        buffered = (
            self.batcher.lookup_at(addr, blk) if self.batcher is not None else MISSING
        )
        if buffered is not MISSING:
            self.overlay_hits += 1
            return buffered
        version = self.version
        hit, value = self.cache.get((1, addr, blk), version)
        if hit:
            return value
        value = await self._run(self.engine.get_at, addr, blk)
        self.cache.put((1, addr, blk), version, value)
        return value

    async def _prov(self, addr: bytes, blk_low: int, blk_high: int) -> bytes:
        # Anchor at a committed Hstate: buffered writes must be in the
        # engine before the proof is cut, or a range covering the open
        # block would silently miss them.  A replica buffers nothing —
        # its engine state *is* its committed state.
        if self.batcher is not None:
            await self.batcher.flush()
        result, root = await self._run(
            self.engine.prov_query_anchored, addr, blk_low, blk_high
        )
        blob = pickle.dumps((result, root), protocol=pickle.HIGHEST_PROTOCOL)
        return protocol.encode_blob_response(blob)

    async def _scan(
        self, addr_low: bytes, addr_high: bytes, at_blk: int, limit: int
    ) -> bytes:
        # Snapshot at the current commit version: buffered writes commit
        # first (cheap no-op when the batch is empty), so the scan sees
        # every acked write without merging the overlay into the ordered
        # stream.  A replica buffers nothing — its engine state *is* its
        # committed state.
        # Only an un-pinned (latest) request forces the group commit —
        # that is what makes acked-but-buffered writes visible to the
        # scan (read-your-writes at scan initiation).  Pinned requests
        # (explicit at_blk, every continuation page) read a height the
        # open batch cannot commit at, so flushing would buy nothing:
        # a paged scan pays the batching tax once, not per page.  Under
        # a scan-heavy write mix (YCSB-E) first pages still shrink
        # group-commit batches; that is the accepted trade for exact
        # scans — see DESIGN.md "Cursors & Scans".
        if self.batcher is not None and at_blk == protocol.LATEST_BLK:
            await self.batcher.flush()
        page = limit if limit else self.config.scan_page_default
        page = min(page, self.config.scan_page_max)
        # Pin the page to the committed height at serve time: a commit
        # landing while the engine scan runs must not leak into it, and
        # the client re-pins continuation pages to the first page's
        # height so a multi-page scan describes one committed state.
        snapshot = (
            self.replica.applied_height
            if self.replica is not None
            else self.batcher.last_height
        )
        resolved_at = snapshot if at_blk == protocol.LATEST_BLK else at_blk
        # Ask for one extra triple: its presence proves the range has
        # more, and its address *is* the continuation key — no address
        # arithmetic, no false has_more on an exactly-full final page.
        rows = await self._run(
            lambda: self.engine.scan(
                addr_low, addr_high, at_blk=resolved_at, limit=page + 1
            )
        )
        continuation = None
        if len(rows) > page:
            continuation = rows[page][0]
            rows = rows[:page]
        return protocol.encode_scan_response(rows, continuation, resolved_at)

    # =========================================================================
    # control plane
    # =========================================================================

    async def _root_info(self) -> RootInfo:
        if self.replica is not None:
            root = self.replica.last_root
            if root is None:
                root = await self._run(self.engine.root_digest)
            return RootInfo(
                digest=root,
                version=self.version,
                height=self.replica.applied_height,
            )
        if self.batcher.last_root is None:
            self.batcher.last_root = await self._run(self.engine.root_digest)
        return RootInfo(
            digest=self.batcher.last_root,
            version=self.version,
            height=self.batcher.last_height,
        )

    async def _stats(self) -> dict:
        batcher = self.batcher
        engine = self.engine
        storage = await self._run(engine.storage_bytes)
        compaction = await self._run(engine.compaction_stats)
        num_shards = len(engine.shards) if hasattr(engine, "shards") else 1
        committed = (
            batcher.last_height
            if batcher is not None
            else self.replica.applied_height
        )
        stats = {
            "ops": dict(self.op_counts),
            "connections_total": self.connections_total,
            "version": self.version,
            "committed_height": committed,
            "open_height": batcher.next_height if batcher is not None else committed,
            "buffered_puts": batcher.buffered if batcher is not None else 0,
            "overlay_hits": self.overlay_hits,
            # One locked snapshot: hits / misses / hit_rate are mutated by
            # executor threads, so reading them field-by-field here could
            # tear (a hit_rate computed from a hits/misses pair no single
            # instant ever held).
            "cache": self.cache.stats(),
            "negative_cache": self.negative.stats(),
            "engine": {
                "puts_total": engine.puts_total,
                "storage_bytes": storage,
                "disk_levels": engine.num_disk_levels(),
                "shards": num_shards,
                # Compaction-policy accounting (repro.core.compaction):
                # cumulative flush/merge bytes and the per-level run
                # layout behind `repro query compaction`.
                "compaction": compaction,
                # Where the engine lives on disk: repro query resolves a
                # live server back to its workspace through this.
                "workspace": getattr(engine, "directory", None)
                or getattr(getattr(engine, "workspace", None), "root", None),
            },
            "latency": self._latency_summaries(),
        }
        if batcher is not None:
            stats["batcher"] = {
                "commits": batcher.commits,
                "batched_puts": batcher.batched_puts,
                "avg_batch": (
                    batcher.batched_puts / batcher.commits if batcher.commits else 0.0
                ),
                "size_flushes": batcher.size_flushes,
                "timer_flushes": batcher.timer_flushes,
                "forced_flushes": batcher.forced_flushes,
                "multi_put_batches": batcher.multi_put_batches,
            }
        engine_stats = getattr(engine, "stats", None)
        if engine_stats is not None:
            stats["io"] = {
                "page_reads": engine_stats.total_reads,
                "page_writes": engine_stats.total_writes,
                "page_cache": engine_stats.cache_summary(),
            }
        if self.wal is not None:
            stats["wal"] = self.wal.stats()
            if self.replay_stats is not None:
                stats["wal"]["replayed_blocks"] = self.replay_stats.blocks_replayed
                stats["wal"]["replayed_puts"] = self.replay_stats.puts_replayed
        if self.cluster is not None:
            stats["cluster"] = self.cluster.stats()
        if self.replica is not None:
            stats["replication"] = self.replica.stats()
        elif self.hub is not None:
            stats["replication"] = {
                "role": "primary",
                "subscribers": self.hub.subscribers,
                "subscribers_total": self.hub.subscribers_total,
                "subscribers_evicted": self.hub.subscribers_evicted,
                "batches_published": self.hub.batches_published,
                "records_shipped": self.hub.records_shipped,
                "applied_height": committed,
                "availability_floor": self.hub.availability_floor(),
            }
        return stats

    def _latency_summaries(self) -> dict:
        """The ``latency`` STATS section: histogram digests by family.

        ``op`` and ``merge`` are always present (label -> summary, empty
        until something was recorded); the single-series families appear
        once they have samples.
        """
        registry = self.metrics
        section: dict = {
            "op": {
                labels.get("op", ""): hist.summary()
                for labels, hist in registry.histograms("repro_op_latency_seconds")
            },
            "merge": {
                labels.get("kind", ""): hist.summary()
                for labels, hist in registry.histograms("repro_merge_seconds")
            },
        }
        for name, key in (
            ("repro_commit_flush_seconds", "commit_flush"),
            ("repro_commit_batch_size", "commit_batch_size"),
            ("repro_wal_fsync_seconds", "wal_fsync"),
            ("repro_replica_apply_seconds", "replica_apply"),
        ):
            series = registry.histograms(name)
            if series:
                section[key] = series[0][1].summary()
        return section

    async def _metrics_text(self) -> str:
        """The ``Op.METRICS`` payload: Prometheus text exposition.

        Histograms are already live in the registry; counters and gauges
        whose source of truth is elsewhere (op counts, cache stats, IO
        stats, heights, replication lag) are mirrored in at scrape time
        — the hot paths never pay for them.
        """
        registry = self.metrics
        for name, count in self.op_counts.items():
            registry.counter(
                "repro_ops_total", help="Requests served by opcode", op=name
            ).set(count)
        registry.counter(
            "repro_connections_total", help="Connections accepted"
        ).set(self.connections_total)
        registry.counter(
            "repro_overlay_hits_total", help="Reads answered by the write overlay"
        ).set(self.overlay_hits)
        registry.gauge("repro_commit_version", help="Read-cache epoch").set(
            self.version
        )
        batcher = self.batcher
        committed = (
            batcher.last_height if batcher is not None else self.replica.applied_height
        )
        registry.gauge(
            "repro_committed_height", help="Last committed block height"
        ).set(committed)
        registry.gauge("repro_open_height", help="Height of the open batch").set(
            batcher.next_height if batcher is not None else committed
        )
        registry.gauge(
            "repro_buffered_puts", help="Puts buffered in the open batch"
        ).set(batcher.buffered if batcher is not None else 0)
        if batcher is not None:
            registry.counter(
                "repro_commits_total", help="Group commits"
            ).set(batcher.commits)
            registry.counter(
                "repro_batched_puts_total", help="Puts committed through the batcher"
            ).set(batcher.batched_puts)
        for label, cache in (("read", self.cache), ("negative", self.negative)):
            snapshot = cache.stats()
            registry.counter(
                "repro_cache_lookups_total", help="Cache lookups", cache=label
            ).set(snapshot["lookups"])
            registry.counter(
                "repro_cache_hits_total", help="Cache hits", cache=label
            ).set(snapshot["hits"])
            registry.gauge(
                "repro_cache_hit_rate", help="Cache hit rate", cache=label
            ).set(snapshot["hit_rate"])
            registry.gauge(
                "repro_cache_entries", help="Cache occupancy", cache=label
            ).set(snapshot["entries"])
        engine = self.engine
        registry.counter(
            "repro_engine_puts_total", help="Puts applied by the engine"
        ).set(engine.puts_total)
        registry.gauge(
            "repro_engine_storage_bytes", help="Engine on-disk footprint"
        ).set(await self._run(engine.storage_bytes))
        registry.gauge(
            "repro_engine_disk_levels", help="Populated disk levels"
        ).set(engine.num_disk_levels())
        registry.gauge("repro_engine_shards", help="Engine shards").set(
            len(engine.shards) if hasattr(engine, "shards") else 1
        )
        iostats = getattr(engine, "stats", None)
        if iostats is not None:
            for category, reads, writes in iostats.per_category():
                registry.counter(
                    "repro_page_reads_total",
                    help="Pages read by file category",
                    category=category,
                ).set(reads)
                registry.counter(
                    "repro_page_writes_total",
                    help="Pages written by file category",
                    category=category,
                ).set(writes)
            page_cache = iostats.cache_summary()
            registry.counter(
                "repro_cache_lookups_total", cache="page"
            ).set(page_cache["hits"] + page_cache["misses"])
            registry.counter(
                "repro_cache_hits_total", cache="page"
            ).set(page_cache["hits"])
            registry.gauge(
                "repro_cache_hit_rate", cache="page"
            ).set(page_cache["hit_rate"])
        if self.wal is not None:
            wal_stats = self.wal.stats()
            registry.counter(
                "repro_wal_syncs_total", help="WAL sync() calls"
            ).set(wal_stats["syncs"])
            registry.counter(
                "repro_wal_records_appended_total", help="WAL records appended"
            ).set(wal_stats["records_appended"])
            registry.counter(
                "repro_wal_bytes_appended_total", help="WAL bytes appended"
            ).set(wal_stats["bytes_appended"])
            registry.gauge(
                "repro_wal_segments", help="Live WAL segments"
            ).set(wal_stats["segments"])
            registry.gauge(
                "repro_wal_synced_lsn", help="Last durable LSN"
            ).set(wal_stats["synced_lsn"])
            registry.gauge(
                "repro_wal_appended_lsn", help="Last appended LSN"
            ).set(wal_stats["appended_lsn"])
        if self.replica is not None:
            replica_stats = self.replica.stats()
            registry.gauge(
                "repro_replication_lag_blocks",
                help="Blocks behind the primary",
            ).set(replica_stats["lag_blocks"])
            registry.counter(
                "repro_replication_batches_applied_total",
                help="Primary batches applied",
            ).set(replica_stats["batches_applied"])
        elif self.hub is not None:
            registry.gauge(
                "repro_replication_subscribers", help="Live replica streams"
            ).set(self.hub.subscribers)
            registry.counter(
                "repro_replication_batches_published_total",
                help="Batches published to replicas",
            ).set(self.hub.batches_published)
            registry.counter(
                "repro_replication_records_shipped_total",
                help="WAL records shipped to replicas",
            ).set(self.hub.records_shipped)
        if self.cluster is not None:
            self.cluster.record_metrics(registry)
        return registry.expose()


class ServerThread:
    """A :class:`ColeServer` on its own event-loop thread.

    The in-process deployment shape used by the benchmarks, the tests,
    and the demo: the caller's thread stays free to run clients (or an
    entire load generator) against real sockets while the server loop
    runs here.  ``start`` blocks until the port is bound; ``stop`` is
    idempotent and joins the thread.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServerConfig] = None,
        wal=None,
        replica_of: Optional[Tuple[str, int]] = None,
        cluster=None,
        replica_wal=None,
    ) -> None:
        self.server = ColeServer(
            engine,
            host,
            port,
            config,
            wal=wal,
            replica_of=replica_of,
            cluster=cluster,
            replica_wal=replica_wal,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        """Spawn the loop thread; returns the bound ``(host, port)``.

        Idempotent: calling again while running just reports the address.
        """
        if self._thread is not None and self._thread.is_alive():
            return self.server.host, self.server.port
        self._thread = threading.Thread(
            target=self._run, name="cole-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.server.host, self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()  # until stop() calls loop.stop()
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()

    def stop(self) -> None:
        """Stop serving and join the loop thread (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
        thread.join()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
