"""Open/closed-loop load generation against a running :class:`ColeServer`.

The generator speaks the real wire protocol through real sockets — it is
the serving layer's counterpart of the YCSB running phase (Section
8.1.3): every logical client issues a deterministic mixed read/write
stream with zipfian key popularity.

Two driving disciplines:

* **closed loop** — each client issues its next op when the previous one
  completes; latency is pure service time.  Throughput scales with the
  client count until the server saturates.
* **open loop** — ops arrive on a fixed schedule (``rate`` ops/s split
  across clients) regardless of completions; latency is measured from
  the *scheduled* arrival, so queueing delay under overload is visible
  (the coordinated-omission-free discipline).

Determinism: the op stream of client ``i`` depends only on the
parameters and ``i``.  Writes are partitioned — client ``i`` only writes
keys whose rank is ``i (mod clients)`` — so the final value of every key
is fixed by the parameters alone, no matter how the server interleaves
clients.  :func:`replay_writes` applies the same streams directly to an
in-process engine, which is how the service is checked to be
byte-identical with the library (``tests/test_server.py``,
``benchmarks/bench_fig17_service.py``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.hashing import hash_bytes
from repro.obs import LatencyHistogram
from repro.server.client import KVClient, connect
from repro.server.protocol import Referral
from repro.workloads.ycsb import YCSBGenerator, ZipfGenerator

#: One op: ("get", addr, None), ("put", addr, value),
#: ("scan", start_addr, max_results), or ("mget", (addr, ...), None) —
#: one MULTI_GET batch issued as a single request.
ClientOp = Tuple[str, object, Optional[object]]


@dataclass(frozen=True)
class LoadgenParams:
    """Shape of one load-generation run."""

    clients: int = 32
    ops_per_client: int = 200
    read_fraction: float = 0.5
    scan_fraction: float = 0.0
    scan_length: int = 16
    num_keys: int = 1024
    addr_size: int = 32
    value_size: int = 40
    theta: float = 0.99
    seed: int = 7
    mode: str = "closed"  # "closed" or "open"
    rate: float = 2000.0  # total target ops/s (open loop only)
    #: reads per MULTI_GET batch; 1 keeps plain GETs (and a stream
    #: bit-identical to the pre-batching generator).
    multi_get_size: int = 1

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.scan_fraction <= 1.0:
            raise ValueError("scan_fraction must be in [0, 1]")
        if self.read_fraction + self.scan_fraction > 1.0:
            raise ValueError("read_fraction + scan_fraction exceed 1")
        if self.scan_length < 1:
            raise ValueError("scan_length must be >= 1")
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.mode == "open" and self.rate <= 0:
            raise ValueError("open loop needs a positive rate")
        if self.multi_get_size < 1:
            raise ValueError("multi_get_size must be >= 1")

    @classmethod
    def for_workload(cls, workload: str, **overrides) -> "LoadgenParams":
        """Params preset for a standard YCSB workload letter.

        ``for_workload("E")`` is the scan-heavy mix (95% range scans,
        5% writes) of :class:`repro.workloads.YCSBGenerator`.
        """
        mix = YCSBGenerator.MIXES[workload.upper()]
        overrides.setdefault("read_fraction", mix.read_fraction)
        overrides.setdefault("scan_fraction", mix.scan_fraction)
        return cls(**overrides)


def key_addr(rank: int, addr_size: int) -> bytes:
    """Address of YCSB key ``user<rank>`` — identical to
    ``KVStoreContract.key_addr`` so served state and chain state agree."""
    return hash_bytes(f"kv:user{rank}".encode())[:addr_size]


def _value(client_id: int, index: int, value_size: int) -> bytes:
    """Deterministic fixed-width payload for client ``client_id``'s
    ``index``-th write."""
    payload = hash_bytes(f"v:{client_id}:{index}".encode())
    while len(payload) < value_size:
        payload += hash_bytes(payload)
    return payload[:value_size]


def client_ops(params: LoadgenParams, client_id: int) -> List[ClientOp]:
    """The deterministic op stream of one logical client.

    Reads draw zipfian ranks over the whole key space; writes draw over
    the client's own partition (rank ≡ client_id mod clients), so every
    key has exactly one writer and the final state is order-independent.
    A client whose partition is empty (more clients than keys) issues
    reads only — any write fallback would give some key two writers and
    make the final state interleaving-dependent.

    Scans (``scan_fraction`` of ops, the YCSB-E shape) start at a
    zipfian-popular key's address and read up to ``scan_length``
    key-ordered results from there — with hashed addresses the range is
    over the *address* space, the standard scan shape for hash-ordered
    stores.  With ``scan_fraction == 0`` the stream is bit-identical to
    the pre-scan generator (one RNG draw per op decides the kind).

    With ``multi_get_size > 1`` each read op instead draws that many
    zipfian ranks and becomes one ``("mget", ...)`` batch — the same
    popularity distribution, issued as a single MULTI_GET request.
    """
    import random

    rng = random.Random(params.seed * 10_007 + client_id)
    zipf_reads = ZipfGenerator(
        params.num_keys, theta=params.theta, seed=params.seed + client_id
    )
    owned = list(range(client_id, params.num_keys, params.clients))
    zipf_writes = ZipfGenerator(
        max(1, len(owned)), theta=params.theta, seed=params.seed + 100_000 + client_id
    )
    zipf_scans = ZipfGenerator(
        params.num_keys, theta=params.theta, seed=params.seed + 200_000 + client_id
    )
    ops: List[ClientOp] = []
    writes = 0
    for _ in range(params.ops_per_client):
        roll = rng.random()
        if roll < params.scan_fraction:
            rank = zipf_scans.next_rank()
            length = rng.randint(1, params.scan_length)
            ops.append(("scan", key_addr(rank, params.addr_size), length))
        elif roll < params.scan_fraction + params.read_fraction or not owned:
            if params.multi_get_size > 1:
                batch = tuple(
                    key_addr(zipf_reads.next_rank(), params.addr_size)
                    for _ in range(params.multi_get_size)
                )
                ops.append(("mget", batch, None))
            else:
                rank = zipf_reads.next_rank()
                ops.append(("get", key_addr(rank, params.addr_size), None))
        else:
            rank = owned[zipf_writes.next_rank()]
            ops.append(
                (
                    "put",
                    key_addr(rank, params.addr_size),
                    _value(client_id, writes, params.value_size),
                )
            )
            writes += 1
    return ops


def replay_writes(engine, params: LoadgenParams, puts_per_block: int = 256) -> None:
    """Apply every client's write stream directly to ``engine``.

    Clients are replayed in id order; within a client, op order is
    preserved.  Because each address has a single writer, the resulting
    per-address latest values are exactly what any interleaved service
    run converges to.
    """
    pending: List[Tuple[bytes, bytes]] = []
    height = max(engine.current_blk, engine.checkpoint_blk)

    def commit_pending() -> None:
        nonlocal height, pending
        if not pending:
            return
        height += 1
        engine.begin_block(height)
        engine.put_many(pending)
        engine.commit_block()
        pending = []

    for client_id in range(params.clients):
        for kind, addr, value in client_ops(params, client_id):
            if kind != "put":
                continue
            pending.append((addr, value))
            if len(pending) >= puts_per_block:
                commit_pending()
    commit_pending()


# =============================================================================
# running the load
# =============================================================================

#: How many distinct error messages a report keeps verbatim.
MAX_ERROR_SAMPLES = 5


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    mode: str
    clients: int
    ops: int = 0
    reads: int = 0
    writes: int = 0
    scans: int = 0
    #: MULTI_GET batches issued (each counts 1 op; its keys count as reads).
    mgets: int = 0
    #: key-value triples returned across all scans (scan "depth" served).
    scanned_entries: int = 0
    errors: int = 0
    #: error count per exception type name — a run that failed must say how.
    errors_by_type: dict = field(default_factory=dict)
    #: first few distinct error messages, verbatim.
    error_samples: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    # Latency distributions: the shared histogram type instead of raw
    # sample lists — O(1) per record, no per-report re-sorting, and the
    # same buckets the server's own metrics use.  ``len()`` / truthiness
    # still behave like the lists they replaced.
    latencies: LatencyHistogram = field(default_factory=LatencyHistogram)
    scan_latencies: LatencyHistogram = field(default_factory=LatencyHistogram)
    mget_latencies: LatencyHistogram = field(default_factory=LatencyHistogram)
    server_stats: dict = field(default_factory=dict)

    def record_ok(self, op: ClientOp, latency: float, result=None) -> None:
        """Count one completed op with its latency, by kind."""
        self.latencies.observe(latency)
        self.ops += 1
        kind = op[0]
        if kind == "get":
            self.reads += 1
        elif kind == "mget":
            self.mgets += 1
            self.reads += len(op[1])  # every key in the batch is a read
            self.mget_latencies.observe(latency)
        elif kind == "scan":
            self.scans += 1
            self.scan_latencies.observe(latency)
            if result is not None:
                self.scanned_entries += len(result)
        else:
            self.writes += 1

    def record_error(self, exc: BaseException) -> None:
        """Count one failed op, keeping its kind and a message sample."""
        self.errors += 1
        kind = type(exc).__name__
        self.errors_by_type[kind] = self.errors_by_type.get(kind, 0) + 1
        if len(self.error_samples) < MAX_ERROR_SAMPLES:
            message = f"{kind}: {exc}"
            if message not in self.error_samples:
                self.error_samples.append(message)

    @property
    def throughput(self) -> float:
        """Completed ops per second of wall clock."""
        return self.ops / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Read-cache hit rate reported by the server after the run."""
        return self.server_stats.get("cache", {}).get("hit_rate", 0.0)

    def to_dict(self) -> dict:
        """JSON-serializable summary (``repro loadgen --json``)."""
        return {
            "mode": self.mode,
            "clients": self.clients,
            "ops": self.ops,
            "reads": self.reads,
            "writes": self.writes,
            "scans": self.scans,
            "mgets": self.mgets,
            "scanned_entries": self.scanned_entries,
            "errors": self.errors,
            "errors_by_type": dict(self.errors_by_type),
            "error_samples": list(self.error_samples),
            "elapsed_s": self.elapsed_s,
            "ops_per_s": self.throughput,
            "p50_s": self.latencies.percentile(0.5),
            "p99_s": self.latencies.percentile(0.99),
            "scan_p50_s": self.scan_latencies.percentile(0.5),
            "scan_p99_s": self.scan_latencies.percentile(0.99),
            "mget_p50_s": self.mget_latencies.percentile(0.5),
            "mget_p99_s": self.mget_latencies.percentile(0.99),
            # Full bucketed distributions, not just two percentiles:
            # downstream tooling can merge or re-quantile them.
            "latency_buckets": self.latencies.to_dict(),
            "scan_latency_buckets": self.scan_latencies.to_dict(),
            "mget_latency_buckets": self.mget_latencies.to_dict(),
            "cache_hit_rate": self.cache_hit_rate,
            "server_stats": self.server_stats,
        }


async def _issue(client: KVClient, op: ClientOp):
    kind, addr, extra = op
    if kind == "get":
        return await client.get(addr)
    if kind == "mget":
        return await client.multi_get(list(addr))
    if kind == "scan":
        # Open-ended upward from the zipfian start address: with hashed
        # addresses any contiguous address window is an unbiased sample.
        return await client.scan(addr, b"\xff" * len(addr), limit=extra)
    return await client.put(addr, extra)


async def _closed_worker(
    client_factory, ops: List[ClientOp], report: LoadReport
) -> None:
    async with client_factory() as client:
        for op in ops:
            started = time.perf_counter()
            try:
                result = await _issue(client, op)
            except Exception as exc:  # count it, keep the evidence
                report.record_error(exc)
                continue
            report.record_ok(op, time.perf_counter() - started, result)


async def _open_worker(
    client_factory,
    ops: List[ClientOp],
    interval: float,
    report: LoadReport,
) -> None:
    async with client_factory() as client:
        loop = asyncio.get_running_loop()
        started = loop.time()
        inflight: List[asyncio.Task] = []

        async def timed(op: ClientOp, scheduled: float) -> None:
            try:
                result = await _issue(client, op)
            except Exception as exc:  # count it, keep the evidence
                report.record_error(exc)
                return
            # Latency from the scheduled arrival: queueing counts.
            report.record_ok(op, loop.time() - scheduled, result)

        for index, op in enumerate(ops):
            scheduled = started + index * interval
            delay = scheduled - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            inflight.append(loop.create_task(timed(op, scheduled)))
        if inflight:
            await asyncio.gather(*inflight)


async def run_loadgen(
    host: Optional[str],
    port: Optional[int],
    params: LoadgenParams,
    client_factory=None,
) -> LoadReport:
    """Drive the target with ``params.clients`` concurrent clients.

    ``client_factory`` (a zero-arg callable returning an *unconnected*
    :class:`~repro.server.client.KVClient`) decides the topology: the
    default connects to ``(host, port)``, and passing a factory built
    over :func:`~repro.server.client.connect` drives a replica set or a
    whole cluster through the exact same op streams — the generator
    never special-cases the client class.

    Finishes with a forced group commit (so the run's writes are
    committed) and a STATS snapshot attached to the report.
    """
    if client_factory is None:
        if host is None or port is None:
            raise ValueError("run_loadgen needs (host, port) or a client_factory")
        client_factory = lambda: connect((host, port))  # noqa: E731
    report = LoadReport(mode=params.mode, clients=params.clients)
    streams = [client_ops(params, cid) for cid in range(params.clients)]
    started = time.perf_counter()
    if params.mode == "closed":
        workers = [
            _closed_worker(client_factory, stream, report) for stream in streams
        ]
    else:
        interval = params.clients / params.rate  # per-client inter-arrival
        workers = [
            _open_worker(client_factory, stream, interval, report)
            for stream in streams
        ]
    await asyncio.gather(*workers)
    report.elapsed_s = time.perf_counter() - started
    async with client_factory() as control:
        try:
            await control.flush()
        except Referral:
            pass  # a replica target: its commits arrive via the stream
        report.server_stats = await control.stats()
    return report


def run_loadgen_sync(
    host: Optional[str],
    port: Optional[int],
    params: LoadgenParams,
    client_factory=None,
) -> LoadReport:
    """Blocking wrapper around :func:`run_loadgen` (CLI entry point)."""
    return asyncio.run(run_loadgen(host, port, params, client_factory))


def format_report(report: LoadReport) -> str:
    """Multi-line human-readable summary of one run."""
    from repro.bench.report import (
        format_rate,
        format_seconds,
        latency_columns,
    )

    ops_line = f"ops:             {report.ops} ({report.reads} reads, "
    if report.mgets:
        ops_line += f"{report.mgets} mget batches, "
    if report.scans:
        ops_line += f"{report.scans} scans, "
    ops_line += f"{report.writes} writes, {report.errors} errors)"
    lines = [
        f"mode:            {report.mode} ({report.clients} clients)",
        ops_line,
        f"elapsed:         {format_seconds(report.elapsed_s)}",
        f"throughput:      {format_rate(report.ops, report.elapsed_s)}",
    ]
    if report.errors:
        kinds = ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(report.errors_by_type.items())
        )
        lines.append(f"errors:          {report.errors} ({kinds})")
        for sample in report.error_samples:
            lines.append(f"  e.g. {sample}")

    def latency_line(label: str, hist: LatencyHistogram) -> str:
        # The shared percentile-column path of the figure benchmarks.
        p50, p99 = latency_columns(
            {
                "p50": hist.percentile(0.5),
                "p99": hist.percentile(0.99),
            },
            ["p50", "p99"],
        )
        return (
            f"{label}p50 {p50}  p99 {p99}  max {format_seconds(hist.max)}"
        )

    if report.latencies:
        lines.append(latency_line("latency:         ", report.latencies))
    if report.mget_latencies:
        lines.append(latency_line("mget latency:    ", report.mget_latencies))
    if report.scan_latencies:
        lines.append(latency_line("scan latency:    ", report.scan_latencies))
        lines.append(
            f"scanned entries: {report.scanned_entries} "
            f"({report.scanned_entries / report.scans:.1f} per scan)"
        )
    cache = report.server_stats.get("cache")
    if cache:
        lines.append(
            f"read cache:      {cache['hits']} hits / "
            f"{cache['hits'] + cache['misses']} lookups "
            f"({cache['hit_rate']:.1%})"
        )
    negative = report.server_stats.get("negative_cache")
    if negative and (negative["hits"] or negative["misses"]):
        lines.append(
            f"negative cache:  {negative['hits']} hits / "
            f"{negative['hits'] + negative['misses']} lookups "
            f"({negative['hit_rate']:.1%})"
        )
    batcher = report.server_stats.get("batcher")
    if batcher:
        lines.append(
            f"group commit:    {batcher['commits']} commits, "
            f"avg batch {batcher['avg_batch']:.1f} puts"
        )
    return "\n".join(lines)
