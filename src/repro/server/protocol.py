"""Wire protocol of the serving layer: length-prefixed binary frames.

Every message — request or response — is one frame::

    u32 body_length | body

A request body is ``u8 opcode`` followed by the op's payload; a response
body is ``u8 status`` followed by the status's payload.  All integers are
big-endian.  Variable-length byte strings are encoded as ``u16 length``
(addresses) or ``u32 length`` (values, blobs) plus the raw bytes.

Ops
---

==============  ===================================  =========================
op              request payload                      OK response payload
==============  ===================================  =========================
PUT             addr16, value32                      u64 block height assigned
GET             addr16                               value32 (or NOT_FOUND)
GET_AT          addr16, u64 blk                      value32 (or NOT_FOUND)
MULTI_GET       u16 count, count x addr16            u16 count, count x
                                                     (u8 present, [value32])
MULTI_PUT       u16 count, count x (addr16,          u64 block height assigned
                value32)                             to the whole batch
PROV            addr16, u64 blk_low, u64 blk_high    blob32 (pickled result)
SCAN            lo16, hi16, u64 at_blk, u32 limit    one result page: u8 more,
                                                     [cont16,] u64 snapshot
                                                     height, u32 count, then
                                                     count x (addr16, u64 blk,
                                                     value32)
ROOT            —                                    digest16, u64 ver, u64 blk
STATS           —                                    blob32 (JSON, utf-8)
FLUSH           —                                    digest16, u64 ver, u64 blk
METRICS         —                                    blob32 (Prometheus text
                                                     exposition, utf-8)
REPL_SUBSCRIBE  u64 start_height                     u64 primary height, then
                                                     a stream of record frames
==============  ===================================  =========================

``MULTI_GET`` / ``MULTI_PUT`` are the vectorized point ops: N keys cost
one round trip, one frame parse, and (for puts) one batcher handoff and
one WAL append instead of N.  The MULTI_GET response carries per-key
results *positionally* — entry ``i`` answers address ``i`` — with a
``present`` flag standing in for the per-key NOT_FOUND status.  A
MULTI_PUT batch buffers as one unit, so every key commits at the same
block height and the response carries that single height.  Batches are
bounded by :data:`MAX_MULTI_BATCH` keys; empty and oversize batches are
rejected at decode time with a clean ERROR status, as are frames whose
``count`` disagrees with the payload actually attached (truncation and
trailing garbage both).

``SCAN`` is the key-ordered range read: the live version of every
address in ``[lo, hi]`` as of block ``at_blk`` (``LATEST_BLK`` = the
newest committed state), ascending.  One request returns one
length-prefixed **result page** of at most ``limit`` triples; when the
``more`` flag is set the page ends with a *continuation key* — the next
unreturned address — and the client issues the next request from it, so
a single logical scan streams past any one frame's size cap without the
server holding per-connection scan state.  Every page also carries the
**snapshot height** it was served at: a latest scan is pinned to the
committed height at serve time, and the client re-pins continuation
pages to the first page's height (``at_blk``), so a multi-page scan
describes one consistent committed state even while writers commit
between pages.

``REPL_SUBSCRIBE`` turns its connection into a one-way replication
stream: after the handshake response the server sends an unbounded
sequence of OK frames, each carrying exactly one raw WAL record
(:mod:`repro.wal.record` framing, crc32 and all) for block heights above
``start_height`` — PUTS batches followed by the COMMIT marker that seals
them.  A server that cannot serve the stream answers the subscribe with
an ERROR frame instead (replicas answer ``NOT_PRIMARY``).

``NOT_PRIMARY`` and ``MOVED`` are the two **referral** statuses: the
server cannot answer, but it knows who can.  ``NOT_PRIMARY`` is the
write rejection of replica servers (payload: the primary's
``host:port``); ``MOVED`` is the cluster rejection of a server that no
longer owns the requested shard (payload: ``u64 manifest_epoch``,
``u16 shard_id``, then the new owner's ``host:port``).  Both decode in
one place — :func:`check_status` — into subclasses of one
:class:`Referral` error carrying ``(reason, address, manifest_epoch,
shard_id)``, so every client handles redirection through a single type
instead of per-call-site status checks.

``CLUSTER`` asks any cluster member for its current manifest (JSON,
utf-8) — the same document the static manifest file holds — so clients
can bootstrap from one seed address and refresh after a ``MOVED``.
``ADMIN`` carries a JSON command blob to a cluster node's control
server (snapshot / adopt / cutover / promote / status...); keeping the
admin surface inside one opcode means migrations evolve without
touching the wire format again.

``PROV`` responses carry the engine's full provenance result (values,
boundary version, and the authentication proof) as a pickle blob so the
client can run the verifier locally.  Pickle is only safe between
mutually trusting endpoints; the serving layer targets a trusted network
segment, exactly like the paper's single-operator deployment.

The framing is deliberately request-id free: the server answers each
connection's requests strictly in order, so a pipelining client matches
responses to requests by position (see ``repro.server.client``).
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import StorageError

MAX_FRAME = 64 * 1024 * 1024  # hard cap against corrupt / hostile lengths

#: Hard cap on keys per MULTI_GET / MULTI_PUT batch.  Large enough for
#: any sane pipelining depth, small enough that one batch cannot pin the
#: event loop or approach MAX_FRAME with ordinary value sizes.
MAX_MULTI_BATCH = 4096

#: ``at_blk`` sentinel meaning "the latest committed state" (u64 max —
#: the same value :data:`repro.core.compound.MAX_BLK` gives the floor
#: search, so encoding latest scans needs no special casing anywhere).
LATEST_BLK = 2**64 - 1

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


class Op:
    """Request opcodes."""

    PUT = 1
    GET = 2
    GET_AT = 3
    PROV = 4
    ROOT = 5
    STATS = 6
    FLUSH = 7
    REPL_SUBSCRIBE = 8
    SCAN = 9
    MULTI_GET = 10
    MULTI_PUT = 11
    METRICS = 12
    CLUSTER = 13
    ADMIN = 14


class Status:
    """Response status codes."""

    OK = 0
    NOT_FOUND = 1
    ERROR = 2
    NOT_PRIMARY = 3
    MOVED = 4


class Referral(StorageError):
    """The server cannot answer, but named who can.

    One error type covers every redirection the protocol knows:
    ``NOT_PRIMARY`` (a replica naming its primary) and ``MOVED`` (a
    cluster server naming a shard's new owner).  ``address`` is always
    the ``host:port`` to retry against; ``manifest_epoch`` / ``shard_id``
    are only meaningful for MOVED (0 / ``None`` otherwise).
    """

    def __init__(
        self,
        reason: str,
        address: str,
        manifest_epoch: int = 0,
        shard_id: Optional[int] = None,
    ) -> None:
        super().__init__(f"{reason}; retry at {address}")
        self.reason = reason
        self.address = address
        self.manifest_epoch = manifest_epoch
        self.shard_id = shard_id


class NotPrimaryError(Referral):
    """A write (or subscribe) hit a replica; redirect to ``primary``."""

    def __init__(self, primary: str) -> None:
        super().__init__("not the primary; writes go to the primary", primary)

    @property
    def primary(self) -> str:
        """``host:port`` of the primary the replica follows (legacy name)."""
        return self.address


class MovedError(Referral):
    """The shard moved to a new owner; refresh the manifest and retry."""

    def __init__(self, address: str, manifest_epoch: int, shard_id: int) -> None:
        super().__init__(
            f"shard {shard_id} moved (manifest epoch {manifest_epoch})",
            address,
            manifest_epoch,
            shard_id,
        )


@dataclass(frozen=True)
class RootInfo:
    """State anchor returned by ROOT and FLUSH."""

    digest: bytes
    version: int  # commit-version counter (read-cache epoch)
    height: int   # last committed block height


# =============================================================================
# primitive encoders
# =============================================================================

def encode_frame(body: bytes) -> bytes:
    """Prefix ``body`` with its u32 length."""
    return _U32.pack(len(body)) + body


def pack_bytes16(data: bytes) -> bytes:
    """u16-length-prefixed bytes (addresses, digests)."""
    if len(data) > 0xFFFF:
        raise StorageError("bytes16 field exceeds 64 KiB")
    return _U16.pack(len(data)) + data


def pack_bytes32(data: bytes) -> bytes:
    """u32-length-prefixed bytes (values, blobs)."""
    return _U32.pack(len(data)) + data


class Cursor:
    """Sequential decoder over one frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise StorageError("truncated frame")
        piece = self.data[self.pos:end]
        self.pos = end
        return piece

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def bytes16(self) -> bytes:
        return self._take(self.u16())

    def bytes32(self) -> bytes:
        return self._take(self.u32())

    def done(self) -> bool:
        return self.pos == len(self.data)


# =============================================================================
# request encoding / decoding
# =============================================================================

def encode_put(addr: bytes, value: bytes) -> bytes:
    return encode_frame(bytes([Op.PUT]) + pack_bytes16(addr) + pack_bytes32(value))


def encode_get(addr: bytes) -> bytes:
    return encode_frame(bytes([Op.GET]) + pack_bytes16(addr))


def encode_get_at(addr: bytes, blk: int) -> bytes:
    return encode_frame(bytes([Op.GET_AT]) + pack_bytes16(addr) + _U64.pack(blk))


def encode_prov(addr: bytes, blk_low: int, blk_high: int) -> bytes:
    return encode_frame(
        bytes([Op.PROV]) + pack_bytes16(addr) + _U64.pack(blk_low) + _U64.pack(blk_high)
    )


def encode_scan(
    addr_low: bytes, addr_high: bytes, at_blk: Optional[int], limit: int
) -> bytes:
    """One scan page request; ``at_blk=None`` scans the latest state."""
    return encode_frame(
        bytes([Op.SCAN])
        + pack_bytes16(addr_low)
        + pack_bytes16(addr_high)
        + _U64.pack(LATEST_BLK if at_blk is None else at_blk)
        + _U32.pack(limit)
    )


def _check_batch_count(count: int) -> int:
    """Validate a MULTI_* batch size (client and server share the rule)."""
    if count == 0:
        raise StorageError("empty MULTI batch")
    if count > MAX_MULTI_BATCH:
        raise StorageError(
            f"MULTI batch of {count} keys exceeds the {MAX_MULTI_BATCH}-key cap"
        )
    return count


def encode_multi_get(addrs: List[bytes]) -> bytes:
    """One MULTI_GET request: ``count`` addresses, one frame."""
    _check_batch_count(len(addrs))
    parts = [bytes([Op.MULTI_GET]), _U16.pack(len(addrs))]
    parts.extend(pack_bytes16(addr) for addr in addrs)
    return encode_frame(b"".join(parts))


def encode_multi_put(items: List[Tuple[bytes, bytes]]) -> bytes:
    """One MULTI_PUT request: ``count`` (addr, value) pairs, one frame."""
    _check_batch_count(len(items))
    parts = [bytes([Op.MULTI_PUT]), _U16.pack(len(items))]
    parts.extend(pack_bytes16(addr) + pack_bytes32(value) for addr, value in items)
    return encode_frame(b"".join(parts))


def encode_simple(op: int) -> bytes:
    """ROOT / STATS / FLUSH / METRICS / CLUSTER — opcode-only requests."""
    return encode_frame(bytes([op]))


def encode_admin(payload: dict) -> bytes:
    """One ADMIN request: a JSON command blob for a cluster control server."""
    import json

    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return encode_frame(bytes([Op.ADMIN]) + pack_bytes32(blob))


def encode_repl_subscribe(start_height: int) -> bytes:
    """Subscribe to the primary's stream for heights > ``start_height``."""
    return encode_frame(bytes([Op.REPL_SUBSCRIBE]) + _U64.pack(start_height))


def decode_request(body: bytes) -> Tuple[int, tuple]:
    """Decode a request body into ``(opcode, args)``."""
    cursor = Cursor(body)
    op = cursor.u8()
    if op == Op.PUT:
        return op, (cursor.bytes16(), cursor.bytes32())
    if op == Op.GET:
        return op, (cursor.bytes16(),)
    if op == Op.GET_AT:
        return op, (cursor.bytes16(), cursor.u64())
    if op == Op.PROV:
        return op, (cursor.bytes16(), cursor.u64(), cursor.u64())
    if op == Op.SCAN:
        return op, (cursor.bytes16(), cursor.bytes16(), cursor.u64(), cursor.u32())
    if op == Op.MULTI_GET:
        count = _check_batch_count(cursor.u16())
        addrs = [cursor.bytes16() for _ in range(count)]
        if not cursor.done():
            raise StorageError("trailing bytes after MULTI_GET batch")
        return op, (addrs,)
    if op == Op.MULTI_PUT:
        count = _check_batch_count(cursor.u16())
        items = [(cursor.bytes16(), cursor.bytes32()) for _ in range(count)]
        if not cursor.done():
            raise StorageError("trailing bytes after MULTI_PUT batch")
        return op, (items,)
    if op == Op.REPL_SUBSCRIBE:
        return op, (cursor.u64(),)
    if op == Op.ADMIN:
        return op, (cursor.bytes32(),)
    if op in (Op.ROOT, Op.STATS, Op.FLUSH, Op.METRICS, Op.CLUSTER):
        return op, ()
    raise StorageError(f"unknown opcode {op}")


# =============================================================================
# response encoding / decoding
# =============================================================================

def encode_ok(payload: bytes = b"") -> bytes:
    return encode_frame(bytes([Status.OK]) + payload)


def encode_not_found() -> bytes:
    return encode_frame(bytes([Status.NOT_FOUND]))


def encode_error(message: str) -> bytes:
    return encode_frame(bytes([Status.ERROR]) + message.encode("utf-8", "replace"))


def encode_not_primary(primary: str) -> bytes:
    """Replica write rejection; payload is the primary's ``host:port``."""
    return encode_frame(bytes([Status.NOT_PRIMARY]) + primary.encode("utf-8"))


def encode_moved(address: str, manifest_epoch: int, shard_id: int) -> bytes:
    """Cluster referral: the shard now lives at ``address``.

    The epoch lets clients discard stale manifests monotonically; the
    shard id lets them patch a single routing entry without a full
    manifest refresh.
    """
    return encode_frame(
        bytes([Status.MOVED])
        + _U64.pack(manifest_epoch)
        + _U16.pack(shard_id)
        + address.encode("utf-8")
    )


def encode_value_response(value: Optional[bytes]) -> bytes:
    """GET / GET_AT response."""
    if value is None:
        return encode_not_found()
    return encode_ok(pack_bytes32(value))


def encode_height_response(height: int) -> bytes:
    """PUT response: the block the write is assigned to."""
    return encode_ok(_U64.pack(height))


def encode_root_response(info: RootInfo) -> bytes:
    """ROOT / FLUSH response."""
    return encode_ok(
        pack_bytes16(info.digest) + _U64.pack(info.version) + _U64.pack(info.height)
    )


def encode_blob_response(blob: bytes) -> bytes:
    """PROV / STATS / METRICS response."""
    return encode_ok(pack_bytes32(blob))


def check_status(cursor: Cursor) -> int:
    """Consume the status byte; raises on ERROR and referral frames.

    This is the *single* decode point for referrals: every response
    decoder funnels through here, so NOT_PRIMARY and MOVED surface as
    :class:`Referral` subclasses uniformly across all ops.
    """
    status = cursor.u8()
    if status == Status.ERROR:
        raise StorageError(
            f"server error: {cursor.data[cursor.pos:].decode('utf-8', 'replace')}"
        )
    if status == Status.NOT_PRIMARY:
        raise NotPrimaryError(cursor.data[cursor.pos:].decode("utf-8", "replace"))
    if status == Status.MOVED:
        epoch = cursor.u64()
        shard_id = cursor.u16()
        raise MovedError(
            cursor.data[cursor.pos:].decode("utf-8", "replace"), epoch, shard_id
        )
    return status


def decode_value_response(body: bytes) -> Optional[bytes]:
    cursor = Cursor(body)
    if check_status(cursor) == Status.NOT_FOUND:
        return None
    return cursor.bytes32()


def decode_height_response(body: bytes) -> int:
    cursor = Cursor(body)
    check_status(cursor)
    return cursor.u64()


def decode_root_response(body: bytes) -> RootInfo:
    cursor = Cursor(body)
    check_status(cursor)
    return RootInfo(digest=cursor.bytes16(), version=cursor.u64(), height=cursor.u64())


def decode_blob_response(body: bytes) -> bytes:
    cursor = Cursor(body)
    check_status(cursor)
    return cursor.bytes32()


def decode_prov_response(body: bytes) -> object:
    return pickle.loads(decode_blob_response(body))


def decode_json_response(body: bytes) -> dict:
    """STATS / CLUSTER / ADMIN responses: a JSON blob."""
    import json

    return json.loads(decode_blob_response(body).decode("utf-8"))


def encode_multi_get_response(values: List[Optional[bytes]]) -> bytes:
    """MULTI_GET response: per-key results, positionally matched.

    A per-key miss is a ``present=0`` flag rather than a frame-level
    NOT_FOUND — one frame answers every key in the batch.
    """
    parts = [_U16.pack(len(values))]
    for value in values:
        if value is None:
            parts.append(bytes([0]))
        else:
            parts.append(bytes([1]) + pack_bytes32(value))
    return encode_ok(b"".join(parts))


def decode_multi_get_response(body: bytes) -> List[Optional[bytes]]:
    cursor = Cursor(body)
    check_status(cursor)
    count = cursor.u16()
    values: List[Optional[bytes]] = [
        cursor.bytes32() if cursor.u8() else None for _ in range(count)
    ]
    if not cursor.done():
        raise StorageError("trailing bytes after MULTI_GET response")
    return values


#: One scan result triple: (address, written-at height, value).
ScanRow = Tuple[bytes, int, bytes]


def encode_scan_response(
    rows: List[ScanRow], continuation: Optional[bytes], height: int
) -> bytes:
    """One scan result page; ``continuation`` is the next unreturned
    address when the scan has more (``None`` on the final page), and
    ``height`` is the snapshot height the page was served at."""
    if continuation is not None:
        parts = [bytes([1]), pack_bytes16(continuation)]
    else:
        parts = [bytes([0])]
    parts.append(_U64.pack(height))
    parts.append(_U32.pack(len(rows)))
    for addr, blk, value in rows:
        parts.append(pack_bytes16(addr) + _U64.pack(blk) + pack_bytes32(value))
    return encode_ok(b"".join(parts))


def decode_scan_response(
    body: bytes,
) -> Tuple[List[ScanRow], Optional[bytes], int]:
    cursor = Cursor(body)
    check_status(cursor)
    continuation = cursor.bytes16() if cursor.u8() else None
    height = cursor.u64()
    count = cursor.u32()
    rows = [
        (cursor.bytes16(), cursor.u64(), cursor.bytes32()) for _ in range(count)
    ]
    return rows, continuation, height


def encode_repl_handshake(height: int) -> bytes:
    """REPL_SUBSCRIBE accepted: the primary's committed height."""
    return encode_ok(_U64.pack(height))


def decode_repl_handshake(body: bytes) -> int:
    cursor = Cursor(body)
    check_status(cursor)
    return cursor.u64()


def encode_repl_record(record: bytes) -> bytes:
    """One stream frame: an OK status wrapping one raw WAL record."""
    return encode_ok(record)


def decode_repl_record(body: bytes) -> bytes:
    """Unwrap one stream frame back to the raw WAL record bytes."""
    cursor = Cursor(body)
    check_status(cursor)
    return cursor.data[cursor.pos:]


# =============================================================================
# frame IO (asyncio)
# =============================================================================

async def read_frame(reader) -> Optional[bytes]:
    """Read one frame body from an ``asyncio.StreamReader``.

    Returns ``None`` on clean EOF at a frame boundary.
    """
    import asyncio

    try:
        header = await reader.readexactly(4)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _U32.unpack(header)
    if length > MAX_FRAME:
        raise StorageError(f"frame of {length} bytes exceeds MAX_FRAME")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise StorageError("connection closed mid-frame") from exc
