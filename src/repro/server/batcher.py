"""Group commit: coalescing many clients' puts into one block.

Every network PUT lands in the *active batch* of one :class:`WriteBatcher`.
The batch flushes into a single engine block — ``begin_block`` /
``put_many`` / ``commit_block`` on the engine's existing batched write
path — when either threshold trips:

* **size**: the batch reached ``max_batch`` puts, or
* **time**: ``max_delay`` seconds passed since the batch's first put.

This is classic group commit: the per-block costs (capacity check, L0
flush scheduling, ``Hstate`` recomputation, manifest fsync) are paid once
per batch instead of once per client write, which is what lets one
engine absorb the put streams of hundreds of connections.

Read-your-writes across all clients is preserved by the **overlay**:
buffered puts are visible to the server's read path (consulted before the
read cache and the engine) from the moment their PUT is acknowledged.
The overlay is torn down only *after* the group commit lands and the
cache epoch is bumped, so there is no instant at which a buffered write
is invisible.

The batcher is event-loop confined: ``put`` / ``lookup`` run only on the
server's asyncio thread, while the engine commit itself runs on the
server's thread pool so the loop keeps serving reads during a cascade
(the engine's :class:`~repro.common.gate.CommitGate` makes those reads
safe against the checkpoint).

**Durability** (optional): with a :class:`~repro.wal.WriteAheadLog`
attached, every buffered put is appended to the WAL *before* the server
acknowledges it — the ack additionally waits for the put's record to be
durable under the WAL's sync policy (the server's group-fsync path), so
a crash between ack and group commit loses nothing.  After each commit
the batcher appends a COMMIT marker and, whenever the engine's durable
checkpoint advanced, truncates WAL segments the manifest now covers.

One deliberate read-uncommitted window: the overlay publishes a
buffered write the instant it is logged, while its writer's ack may
still be waiting on the group fsync.  A *concurrent* reader can thus
observe a write that a crash in that window erases (its record is in
the un-synced tail).  The durability contract covers acked writes only;
deferring visibility to ack time would buy little — the observed value
was real, its writer just never learned it survived — at the cost of a
second overlay generation.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.common.errors import StorageError
from repro.common.hashing import Digest

#: Sentinel distinguishing "address not buffered" from a buffered value.
MISSING = object()


class WriteBatcher:
    """Buffers puts and commits them as one block per flush."""

    def __init__(
        self,
        engine,
        *,
        max_batch: int = 512,
        max_delay: float = 0.01,
        run_in_executor: Callable[..., Awaitable],
        on_commit: Optional[Callable[[int, Digest, int], None]] = None,
        wal=None,
        hub=None,
        metrics=None,
    ) -> None:
        """``run_in_executor(fn, *args)`` awaits ``fn`` off-loop;
        ``on_commit(height, root, batch_size)`` fires after each commit
        (the server bumps its cache epoch there); ``wal`` is an optional
        :class:`~repro.wal.WriteAheadLog` every put is appended to;
        ``hub`` is an optional :class:`~repro.replication.ReplicationHub`
        each committed batch is published to once its WAL records are
        durable (requires ``wal``); ``metrics`` is an optional
        :class:`~repro.obs.MetricsRegistry` recording flush latency and
        the batch-size distribution."""
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._run = run_in_executor
        self._on_commit = on_commit
        self.wal = wal
        self._hub = hub
        #: LSN of the most recent put's WAL record (ack durability mark).
        self.last_put_lsn = 0
        self._wal_truncated_at = min(engine.shard_checkpoints()) if wal else -1
        # The open block: puts buffered here commit at _next_height.
        self._next_height = max(engine.current_blk, engine.checkpoint_blk) + 1
        self._active_items: List[Tuple[bytes, bytes]] = []
        self._active_overlay: Dict[bytes, bytes] = {}
        # The in-flight flush (at most one; _flush_lock serializes).
        self._flushing_overlay: Dict[bytes, bytes] = {}
        self._flushing_height = -1
        self._flush_lock = asyncio.Lock()
        self._timer: Optional[asyncio.TimerHandle] = None
        self._closed = False
        # Accounting (exposed via the STATS op).
        self.commits = 0
        self.batched_puts = 0
        self.multi_put_batches = 0
        self.size_flushes = 0
        self.timer_flushes = 0
        self.forced_flushes = 0
        self.last_root: Optional[Digest] = None
        self.last_height = max(engine.current_blk, engine.checkpoint_blk)
        # Latency/size distributions (metric objects cached here so the
        # flush path never touches the registry dict).
        self._flush_hist = None
        self._batch_size_hist = None
        if metrics is not None:
            self._flush_hist = metrics.histogram(
                "repro_commit_flush_seconds",
                help="Group-commit flush latency (engine block commit)",
            )
            self._batch_size_hist = metrics.histogram(
                "repro_commit_batch_size",
                help="Puts per group-commit batch",
                lo=1.0,
                growth=2.0,
                buckets=24,
            )

    @property
    def next_height(self) -> int:
        """Height the open (active) batch will commit at."""
        return self._next_height

    # -- write side (event loop only) -----------------------------------------

    def put(self, addr: bytes, value: bytes) -> int:
        """Buffer one put; returns the block height it will commit at.

        With a WAL attached, the put's record is appended here — before
        the caller can ack — and :attr:`last_put_lsn` is the LSN whose
        durability the ack must wait for (policy-dependent; the server's
        group syncer handles that).
        """
        if self._closed:
            raise StorageError("server is shutting down")
        height = self._next_height
        # WAL first, buffer second: a failed append must leave nothing
        # behind — a buffered-but-unlogged put would commit, be served,
        # and then vanish on recovery.  The reverse ambiguity (logged
        # but errored to the client) is the standard one: recovery may
        # resurface a write whose response was lost.
        if self.wal is not None:
            self.last_put_lsn = self.wal.append_put(addr, value, height)
        self._active_items.append((addr, value))
        self._active_overlay[addr] = value
        if len(self._active_items) >= self.max_batch:
            self.size_flushes += 1
            self._spawn_flush()
        elif self._timer is None:
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(self.max_delay, self._on_timer)
        return height

    def put_batch(self, items: List[Tuple[bytes, bytes]]) -> int:
        """Buffer one MULTI_PUT batch as a unit; returns its commit height.

        The whole batch joins the active block atomically — every key
        commits at the same height, which is what the MULTI_PUT response
        promises — and with a WAL attached the batch is one
        ``append_puts`` call (one record per touched shard chain)
        instead of a record per key.  Same WAL-first ordering as
        :meth:`put`: a failed append leaves nothing buffered.
        """
        if self._closed:
            raise StorageError("server is shutting down")
        height = self._next_height
        if self.wal is not None:
            self.last_put_lsn = self.wal.append_puts(items, height)
        self._active_items.extend(items)
        for addr, value in items:
            self._active_overlay[addr] = value
        self.multi_put_batches += 1
        if len(self._active_items) >= self.max_batch:
            self.size_flushes += 1
            self._spawn_flush()
        elif self._timer is None:
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(self.max_delay, self._on_timer)
        return height

    def _on_timer(self) -> None:
        self._timer = None
        if self._active_items and not self._closed:
            self.timer_flushes += 1
            self._spawn_flush()

    def _spawn_flush(self) -> None:
        asyncio.get_running_loop().create_task(self.flush())

    # -- read side (event loop only) ------------------------------------------

    def lookup(self, addr: bytes):
        """Buffered value of ``addr``, or :data:`MISSING`.

        Checks the active batch before the in-flight one: the active
        batch holds the newer write when an address appears in both.
        """
        value = self._active_overlay.get(addr, MISSING)
        if value is not MISSING:
            return value
        return self._flushing_overlay.get(addr, MISSING)

    def lookup_at(self, addr: bytes, blk: int):
        """Buffered answer for ``get_at(addr, blk)``, or :data:`MISSING`.

        A buffered write is the floor answer only when the queried height
        reaches the block the write will commit at.
        """
        if blk >= self._next_height:
            value = self._active_overlay.get(addr, MISSING)
            if value is not MISSING:
                return value
        if self._flushing_height >= 0 and blk >= self._flushing_height:
            value = self._flushing_overlay.get(addr, MISSING)
            if value is not MISSING:
                return value
        return MISSING

    @property
    def buffered(self) -> int:
        """Puts currently buffered (active batch only)."""
        return len(self._active_items)

    # -- flushing -------------------------------------------------------------

    async def flush(self) -> Tuple[Digest, int]:
        """Group-commit the active batch; returns ``(root, height)``.

        With nothing buffered this is a read: the last committed root is
        returned (computed once from the engine if nothing was committed
        through this batcher yet).  Safe to call concurrently — flushes
        serialize and each batch commits exactly once.
        """
        async with self._flush_lock:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            if not self._active_items:
                if self.last_root is None:
                    self.last_root = await self._run(self.engine.root_digest)
                return self.last_root, self.last_height
            items = self._active_items
            overlay = self._active_overlay
            self._active_items = []
            self._active_overlay = {}
            self._flushing_overlay = overlay
            height = self._next_height
            self._flushing_height = height
            self._next_height = height + 1
            flush_started = time.perf_counter()
            try:
                root = await self._run(self._commit, height, items)
            except BaseException:
                # The engine rejected the block (e.g. a malformed write
                # slipped through): the batch is lost, but the overlay
                # must not keep answering for it.
                self._flushing_overlay = {}
                self._flushing_height = -1
                raise
            if self._flush_hist is not None:
                self._flush_hist.observe(time.perf_counter() - flush_started)
                self._batch_size_hist.observe(len(items))
            self.commits += 1
            self.batched_puts += len(items)
            self.last_root = root
            self.last_height = height
            if self._on_commit is not None:
                # The epoch bump happens here — before the overlay is
                # dropped — so no read can combine a stale cache entry
                # with a missing overlay.
                self._on_commit(height, root, len(items))
            self._flushing_overlay = {}
            self._flushing_height = -1
            if self.wal is not None:
                await self._run(self.wal.append_commit, height, root)
                self._maybe_truncate_wal()
                if self._hub is not None and self._hub.subscribers:
                    # Ship only sealed-and-fsynced batches: a replica must
                    # never hold a write a crashed primary would fail to
                    # recover, or the two would silently diverge when the
                    # primary re-assigns the lost heights.  (Under the
                    # "none" policy no durability is promised anyway, so
                    # the batch ships as-is.)  A subscriber registering
                    # after this check reads the batch from the WAL in its
                    # catch-up scan — the COMMIT marker is already on disk.
                    if self.wal.sync_policy != "none":
                        await self._run(self.wal.sync)
                    self._hub.publish(height, items, root)
            return root, height

    def _maybe_truncate_wal(self) -> None:
        """Drop WAL segments the engine checkpoint now covers.

        Runs only when the *earliest* shard checkpoint advanced (a
        cascade landed); the deletes happen off-loop.  Deferred while a
        replication catch-up scan is reading segments — a delete landing
        mid-scan could remove heights that scan was promised (retried at
        the next commit; segments only cost disk meanwhile).
        """
        if self._hub is not None and self._hub.catchups_active:
            return
        checkpoints = self.engine.shard_checkpoints()
        floor = min(checkpoints)
        if floor <= self._wal_truncated_at:
            return
        previous, self._wal_truncated_at = self._wal_truncated_at, floor

        async def truncate() -> None:
            try:
                await self._run(self.wal.truncate, list(checkpoints))
            except Exception:
                # Best-effort: surviving segments only cost disk; rearm
                # so the next checkpoint advance retries the delete.
                self._wal_truncated_at = previous

        asyncio.get_running_loop().create_task(truncate())

    def _commit(self, height: int, items: List[Tuple[bytes, bytes]]) -> Digest:
        self.engine.begin_block(height)
        self.engine.put_many(items)
        return self.engine.commit_block()

    async def close(self) -> None:
        """Flush what is buffered and refuse further puts."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        await self.flush()
