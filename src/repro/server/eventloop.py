"""Optional uvloop event-loop policy, behind an import guard.

uvloop is not a dependency — when the package is importable its policy
is installed (new event loops become uvloop loops); otherwise the
stdlib selector loop serves.  Callers get back the name of the loop
that will run so it can be logged and recorded in the smoke-bench
service section, keeping benchmark rows comparable across machines
with and without uvloop installed.
"""

from __future__ import annotations

import asyncio


def install_event_loop_policy() -> str:
    """Install uvloop's policy when available; return the loop name."""
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return "asyncio"
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return "uvloop"


def event_loop_name() -> str:
    """The loop flavor new event loops will use, without installing."""
    try:
        import uvloop  # noqa: F401  # type: ignore[import-not-found]
    except ImportError:
        return "asyncio"
    policy = asyncio.get_event_loop_policy()
    return "uvloop" if type(policy).__module__.startswith("uvloop") else "asyncio"
