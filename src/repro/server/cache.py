"""Versioned read-path caches: hot-key answers and known-absent keys,
both invalidated by commit version.

Cached answers must be *exact* — a stale value served after a group
commit would break the byte-identical guarantee the serving layer makes
against a direct in-process engine run.  Instead of tracking which
addresses each commit touched, every entry is stamped with the server's
**commit version** (the group-commit counter, i.e. the ``Hstate``
checkpoint epoch) at fill time, and a lookup only hits when the entry's
stamp equals the current version.  A commit bumps the version, which
atomically invalidates the whole cache without touching a single entry.

Exactness argument: between two commits the engine's committed state is
immutable (puts buffered by the write batcher are served from its
overlay, which is consulted *before* this cache), so any entry stamped
with the current version was computed against exactly the state a fresh
engine lookup would see.  Entries filled from a read that raced a commit
are stamped with the pre-commit version and can never be served after
the bump.

Eviction is LRU with a fixed capacity; stale entries are additionally
dropped lazily when a lookup trips over them.

:class:`NegativeLookupCache` is the same epoch scheme specialized to
*absence*: an address proven missing by a full source walk is remembered
until the next commit, so repeated misses (zipfian reads over a sparse
keyspace) short-circuit before any bloom probe or index descent.  It
lives beside the read cache rather than inside it so a miss-heavy
workload cannot evict the hot positive working set — the two caches
compete for nothing but share the ``advance()`` invalidation rule.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple


class VersionedReadCache:
    """An LRU cache of ``key -> (version, value)`` with epoch invalidation.

    ``value`` may be ``None`` — negative answers ("no such address") are
    as cacheable as positive ones.  Thread-safe: the server fills it from
    executor threads while the event loop reads counters.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Tuple[int, Optional[bytes]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        #: Current epoch floor: puts stamped below it are dead on arrival
        #: (advanced by the server on every group commit).
        self._floor = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, version: int) -> Tuple[bool, Optional[bytes]]:
        """Return ``(hit, value)``; only entries stamped ``version`` hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return False, None
            stamp, value = entry
            if stamp != version:
                del self._entries[key]  # stale epoch: lazily evict
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, version: int, value: Optional[bytes]) -> None:
        """Store an answer computed while ``version`` was current.

        A fill that raced a commit arrives stamped with the pre-commit
        version: it could never hit (lookups compare against the current
        epoch) but it *could* evict a live entry.  Such dead-on-arrival
        puts are dropped against the epoch floor instead.
        """
        with self._lock:
            if version < self._floor:
                return
            self._entries[key] = (version, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def advance(self, version: int) -> None:
        """Raise the epoch floor (called at every group commit)."""
        with self._lock:
            if version > self._floor:
                self._floor = version

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """One consistent snapshot of the counters, under the lock.

        Reading ``hits`` / ``misses`` / ``hit_rate`` field-by-field from
        another thread can tear — the rate would mix a ``hits`` from one
        instant with a ``misses`` from another.  Every derived number
        here comes from a single locked read.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
            entries = len(self._entries)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "lookups": total,
            "hit_rate": hits / total if total else 0.0,
            "entries": entries,
            "capacity": self.capacity,
        }

    def clear(self) -> None:
        """Drop all entries and counters (the epoch floor stays)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


class NegativeLookupCache:
    """An LRU set of ``addr -> version`` recording proven absence.

    ``contains(addr, version)`` answers "was ``addr`` proven absent at
    exactly this commit version?" — the only version a hit is sound at,
    by the same exactness argument as :class:`VersionedReadCache`: the
    committed state is immutable between commits, and the batcher
    overlay (consulted first) covers everything newer.  Thread-safe.
    Capacity 0 disables the cache (every add is immediately evicted) —
    the cold-miss baseline of the negative-lookup benchmark.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError("cache capacity cannot be negative")
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, int]" = OrderedDict()
        self._lock = threading.Lock()
        self._floor = 0
        self.hits = 0
        self.misses = 0

    def contains(self, addr: bytes, version: int) -> bool:
        """True when ``addr`` is known absent at commit ``version``."""
        with self._lock:
            stamp = self._entries.get(addr)
            if stamp is None:
                self.misses += 1
                return False
            if stamp != version:
                del self._entries[addr]  # stale epoch: lazily evict
                self.misses += 1
                return False
            self._entries.move_to_end(addr)
            self.hits += 1
            return True

    def add(self, addr: bytes, version: int) -> None:
        """Record that a full walk at ``version`` found nothing.

        Fills that raced a commit (stamped below the epoch floor) are
        dropped — they could never hit but could evict a live entry.
        """
        with self._lock:
            if version < self._floor:
                return
            self._entries[addr] = version
            self._entries.move_to_end(addr)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def advance(self, version: int) -> None:
        """Raise the epoch floor (called at every group commit)."""
        with self._lock:
            if version > self._floor:
                self._floor = version

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """One consistent snapshot of the counters, under the lock."""
        with self._lock:
            hits, misses = self.hits, self.misses
            entries = len(self._entries)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "lookups": total,
            "hit_rate": hits / total if total else 0.0,
            "entries": entries,
            "capacity": self.capacity,
        }

    def clear(self) -> None:
        """Drop all entries and counters (the epoch floor stays)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
