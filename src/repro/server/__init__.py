"""The serving layer: COLE behind a concurrent TCP front end.

Turns the in-process engine into a service (see DESIGN.md):

* :class:`ColeServer` — asyncio TCP server speaking a length-prefixed
  binary protocol (PUT / GET / GET_AT / PROV / ROOT / STATS / FLUSH)
  over one ``Cole`` or ``ShardedCole``;
* :class:`WriteBatcher` — group commit: many clients' puts coalesce into
  one block through the engine's batched write path;
* :class:`VersionedReadCache` — hot-key read cache, invalidated by
  commit version so cached answers are always exact;
* :class:`ServerClient` — pooled, pipelined asyncio client;
* :mod:`repro.server.loadgen` — open/closed-loop load generation
  (``repro loadgen`` on the CLI; Figure 17 in the benchmarks).

Attach a :class:`~repro.wal.WriteAheadLog` (``repro serve --wal``) and
the server becomes durable: PUTs ack only after a group fsync, and the
WAL tail replays on startup (Figure 18; ``tests/test_durability.py``).
A WAL-enabled server is also a replication primary — live replicas
(``repro serve --replica-of``) tail its record stream and serve reads,
with :class:`ReplicatedClient` fanning reads across them (Figure 19;
``tests/test_replication.py``; see :mod:`repro.replication`).

Client code holds one interface regardless of topology: :func:`connect`
returns a :class:`KVClient` — a :class:`ServerClient` for one server, a
:class:`ReplicatedClient` for a replica set, or the manifest-routed
``ClusterClient`` (see :mod:`repro.cluster`) when given cluster
arguments.  Servers that must not answer a request refer the client with
a :class:`Referral` (``NOT_PRIMARY`` to the primary, ``MOVED`` to a
migrated shard's new owner), and every client follows them
transparently.
"""

from repro.server.batcher import WriteBatcher
from repro.server.cache import VersionedReadCache
from repro.server.client import KVClient, ReplicatedClient, ServerClient, connect
from repro.server.loadgen import (
    LoadgenParams,
    LoadReport,
    client_ops,
    format_report,
    replay_writes,
    run_loadgen,
    run_loadgen_sync,
)
from repro.server.protocol import (
    MovedError,
    NotPrimaryError,
    Op,
    Referral,
    RootInfo,
    Status,
)
from repro.server.server import ColeServer, ServerConfig, ServerThread

__all__ = [
    "ColeServer",
    "ServerConfig",
    "ServerThread",
    "ServerClient",
    "ReplicatedClient",
    "KVClient",
    "connect",
    "WriteBatcher",
    "VersionedReadCache",
    "Op",
    "Status",
    "RootInfo",
    "Referral",
    "NotPrimaryError",
    "MovedError",
    "LoadgenParams",
    "LoadReport",
    "client_ops",
    "format_report",
    "replay_writes",
    "run_loadgen",
    "run_loadgen_sync",
]
