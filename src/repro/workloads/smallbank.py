"""SmallBank transaction generator (Blockbench [17]).

Customers are drawn uniformly; operations are drawn uniformly over the
six SmallBank procedures, matching Blockbench's default mix.  The stream
is deterministic for a given seed, so every engine (and every "node" in a
determinism test) sees the same transactions.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.chain.transaction import Transaction

_OPS = (
    "get_balance",
    "update_balance",
    "update_saving",
    "send_payment",
    "write_check",
    "amalgamate",
)


class SmallBankWorkload:
    """Deterministic SmallBank transaction stream."""

    def __init__(self, num_accounts: int = 100, seed: int = 1) -> None:
        if num_accounts < 2:
            raise ValueError("SmallBank needs at least two accounts")
        self.num_accounts = num_accounts
        self.seed = seed

    def _customer(self, rng: random.Random) -> str:
        return f"acct{rng.randrange(self.num_accounts)}"

    def setup_transactions(self) -> Iterator[Transaction]:
        """Create every account with an initial balance."""
        for index in range(self.num_accounts):
            yield Transaction(
                contract="smallbank",
                op="create_account",
                args=(f"acct{index}", 1000, 1000),
            )

    def transactions(self, count: int) -> Iterator[Transaction]:
        """Yield ``count`` random SmallBank transactions."""
        rng = random.Random(self.seed)
        for _ in range(count):
            op = _OPS[rng.randrange(len(_OPS))]
            if op == "get_balance":
                yield Transaction("smallbank", op, (self._customer(rng),))
            elif op in ("update_balance", "update_saving", "write_check"):
                yield Transaction(
                    "smallbank", op, (self._customer(rng), rng.randrange(1, 100))
                )
            elif op == "send_payment":
                sender = self._customer(rng)
                receiver = self._customer(rng)
                while receiver == sender:
                    receiver = self._customer(rng)
                yield Transaction(
                    "smallbank", op, (sender, receiver, rng.randrange(1, 100))
                )
            else:  # amalgamate
                customer = self._customer(rng)
                target = self._customer(rng)
                while target == customer:
                    target = self._customer(rng)
                yield Transaction("smallbank", op, (customer, target))
