"""YCSB-style KVStore workload (Section 8.1.3).

A loading phase writes the base data; a running phase issues reads and
updates over the base keys with zipfian popularity, in one of three
mixes: Read-Only, Read-Write (50/50) and Write-Only — the axes of
Figure 11.
"""

from __future__ import annotations

import enum
import random
from typing import Iterator, List

from repro.chain.transaction import Transaction


class Mix(enum.Enum):
    """Read/write transaction mixes of Figure 11."""

    READ_ONLY = "RO"
    READ_WRITE = "RW"
    WRITE_ONLY = "WO"


class ZipfGenerator:
    """Zipfian key-rank sampler (YCSB's default request distribution)."""

    def __init__(self, num_items: int, theta: float = 0.99, seed: int = 1) -> None:
        if num_items < 1:
            raise ValueError("need at least one item")
        self.num_items = num_items
        self.rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** theta for rank in range(num_items)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def next_rank(self) -> int:
        """Sample a key rank (0 = most popular)."""
        import bisect

        return bisect.bisect_left(self._cumulative, self.rng.random())


class YCSBWorkload:
    """Deterministic KVStore transaction stream."""

    def __init__(
        self,
        num_keys: int = 1000,
        payload_size: int = 32,
        theta: float = 0.99,
        seed: int = 1,
    ) -> None:
        self.num_keys = num_keys
        self.payload_size = payload_size
        self.theta = theta
        self.seed = seed

    def _key(self, rank: int) -> str:
        return f"user{rank}"

    def _payload(self, rng: random.Random) -> str:
        return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(self.payload_size))

    def load_transactions(self) -> Iterator[Transaction]:
        """The loading phase: write every base key once."""
        rng = random.Random(self.seed)
        for rank in range(self.num_keys):
            yield Transaction("kvstore", "write", (self._key(rank), self._payload(rng)))

    def run_transactions(self, count: int, mix: Mix = Mix.READ_WRITE) -> Iterator[Transaction]:
        """The running phase: ``count`` transactions in the given mix."""
        rng = random.Random(self.seed + 1)
        zipf = ZipfGenerator(self.num_keys, theta=self.theta, seed=self.seed + 2)
        for _ in range(count):
            key = self._key(zipf.next_rank())
            if mix is Mix.READ_ONLY:
                is_read = True
            elif mix is Mix.WRITE_ONLY:
                is_read = False
            else:
                is_read = rng.random() < 0.5
            if is_read:
                yield Transaction("kvstore", "read", (key,))
            else:
                yield Transaction("kvstore", "write", (key, self._payload(rng)))
