"""YCSB-style KVStore workload (Section 8.1.3).

A loading phase writes the base data; a running phase issues reads and
updates over the base keys with zipfian popularity, in one of three
mixes: Read-Only, Read-Write (50/50) and Write-Only — the axes of
Figure 11.

:class:`YCSBGenerator` is the op-level counterpart for the standard
YCSB workload letters, including the scan-heavy **workload E** that the
cursor-based range-scan path serves: it yields abstract
``(kind, rank, scan_length)`` ops that the serving layer's load
generator and the fig20 scan benchmark translate into real requests.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.chain.transaction import Transaction


class Mix(enum.Enum):
    """Read/write transaction mixes of Figure 11."""

    READ_ONLY = "RO"
    READ_WRITE = "RW"
    WRITE_ONLY = "WO"


class ZipfGenerator:
    """Zipfian key-rank sampler (YCSB's default request distribution)."""

    def __init__(self, num_items: int, theta: float = 0.99, seed: int = 1) -> None:
        if num_items < 1:
            raise ValueError("need at least one item")
        self.num_items = num_items
        self.rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** theta for rank in range(num_items)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def next_rank(self) -> int:
        """Sample a key rank (0 = most popular)."""
        import bisect

        return bisect.bisect_left(self._cumulative, self.rng.random())


@dataclass(frozen=True)
class WorkloadMix:
    """Op-kind proportions of one YCSB workload letter.

    Whatever ``read_fraction`` and ``scan_fraction`` leave over is the
    update (write) share.
    """

    read_fraction: float
    scan_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.scan_fraction <= 1.0:
            raise ValueError("scan_fraction must be in [0, 1]")
        if self.read_fraction + self.scan_fraction > 1.0:
            raise ValueError("read + scan fractions exceed 1")

    @property
    def update_fraction(self) -> float:
        return 1.0 - self.read_fraction - self.scan_fraction


#: One generated op: (kind, key rank, scan length).  ``kind`` is
#: "read" / "update" / "scan"; the length is 0 except for scans.
YCSBOp = Tuple[str, int, int]


class YCSBGenerator:
    """Op-level generator for the standard YCSB workload letters.

    The core YCSB running-phase mixes, including the ones the
    transaction-level :class:`YCSBWorkload` cannot express:

    * **A** — update heavy (50/50 read/update);
    * **B** — read mostly (95/5);
    * **C** — read only;
    * **E** — **scan heavy** (95% short range scans, 5% updates), the
      workload class the cursor subsystem's key-ordered range scans
      unlock.

    Scans start at a zipfian-popular rank and take a uniformly drawn
    length in ``[1, max_scan_length]`` (the YCSB default distribution).
    The stream is deterministic in the constructor arguments.
    """

    MIXES = {
        "A": WorkloadMix(read_fraction=0.5),
        "B": WorkloadMix(read_fraction=0.95),
        "C": WorkloadMix(read_fraction=1.0),
        "E": WorkloadMix(read_fraction=0.0, scan_fraction=0.95),
    }

    def __init__(
        self,
        workload: str = "E",
        num_keys: int = 1000,
        theta: float = 0.99,
        seed: int = 1,
        max_scan_length: int = 100,
    ) -> None:
        letter = workload.upper()
        if letter not in self.MIXES:
            raise ValueError(
                f"unknown YCSB workload {workload!r}; choose from "
                f"{sorted(self.MIXES)}"
            )
        if max_scan_length < 1:
            raise ValueError("max_scan_length must be >= 1")
        self.workload = letter
        self.mix = self.MIXES[letter]
        self.num_keys = num_keys
        self.max_scan_length = max_scan_length
        self._rng = random.Random(seed)
        self._zipf = ZipfGenerator(num_keys, theta=theta, seed=seed + 1)

    def ops(self, count: int) -> Iterator[YCSBOp]:
        """Yield ``count`` deterministic ops in the workload's mix."""
        mix = self._rng
        for _ in range(count):
            roll = mix.random()
            rank = self._zipf.next_rank()
            if roll < self.mix.scan_fraction:
                yield "scan", rank, mix.randint(1, self.max_scan_length)
            elif roll < self.mix.scan_fraction + self.mix.read_fraction:
                yield "read", rank, 0
            else:
                yield "update", rank, 0


class YCSBWorkload:
    """Deterministic KVStore transaction stream."""

    def __init__(
        self,
        num_keys: int = 1000,
        payload_size: int = 32,
        theta: float = 0.99,
        seed: int = 1,
    ) -> None:
        self.num_keys = num_keys
        self.payload_size = payload_size
        self.theta = theta
        self.seed = seed

    def _key(self, rank: int) -> str:
        return f"user{rank}"

    def _payload(self, rng: random.Random) -> str:
        return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(self.payload_size))

    def load_transactions(self) -> Iterator[Transaction]:
        """The loading phase: write every base key once."""
        rng = random.Random(self.seed)
        for rank in range(self.num_keys):
            yield Transaction("kvstore", "write", (self._key(rank), self._payload(rng)))

    def run_transactions(self, count: int, mix: Mix = Mix.READ_WRITE) -> Iterator[Transaction]:
        """The running phase: ``count`` transactions in the given mix."""
        rng = random.Random(self.seed + 1)
        zipf = ZipfGenerator(self.num_keys, theta=self.theta, seed=self.seed + 2)
        for _ in range(count):
            key = self._key(zipf.next_rank())
            if mix is Mix.READ_ONLY:
                is_read = True
            elif mix is Mix.WRITE_ONLY:
                is_read = False
            else:
                is_read = rng.random() < 0.5
            if is_read:
                yield Transaction("kvstore", "read", (key,))
            else:
                yield Transaction("kvstore", "write", (key, self._payload(rng)))
