"""Workload generators for the evaluation (Section 8.1.3).

* :mod:`repro.workloads.smallbank` — Blockbench SmallBank account mix;
* :mod:`repro.workloads.ycsb` — YCSB-style KVStore load/run phases with
  zipfian key choice and Read-Only / Read-Write / Write-Only mixes;
* :mod:`repro.workloads.provenance` — the provenance benchmark: a small
  base set updated continuously, queried over varying block ranges.
"""

from repro.workloads.smallbank import SmallBankWorkload
from repro.workloads.ycsb import Mix, WorkloadMix, YCSBGenerator, YCSBWorkload
from repro.workloads.provenance import ProvenanceWorkload

__all__ = [
    "SmallBankWorkload",
    "YCSBWorkload",
    "YCSBGenerator",
    "WorkloadMix",
    "Mix",
    "ProvenanceWorkload",
]
