"""Provenance-query workload (Section 8.1.3, following [44]).

100 base states are written, then continuously updated by write
transactions; queries pick a random base key and ask for its history over
the last ``q`` blocks — ``q`` is the x-axis of Figure 14.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.chain.transaction import Transaction


class ProvenanceWorkload:
    """Frequently-updated base data plus range queries over it."""

    def __init__(self, num_base_keys: int = 100, payload_size: int = 32, seed: int = 1) -> None:
        self.num_base_keys = num_base_keys
        self.payload_size = payload_size
        self.seed = seed

    def _key(self, index: int) -> str:
        return f"prov{index}"

    def base_keys(self) -> List[str]:
        """The base key population queries draw from."""
        return [self._key(index) for index in range(self.num_base_keys)]

    def _payload(self, rng: random.Random) -> str:
        return "".join(rng.choice("0123456789abcdef") for _ in range(self.payload_size))

    def load_transactions(self) -> Iterator[Transaction]:
        """Write the 100 base states (the paper's base data)."""
        rng = random.Random(self.seed)
        for index in range(self.num_base_keys):
            yield Transaction("kvstore", "write", (self._key(index), self._payload(rng)))

    def update_transactions(self, count: int) -> Iterator[Transaction]:
        """Continuous updates of random base states."""
        rng = random.Random(self.seed + 1)
        for _ in range(count):
            key = self._key(rng.randrange(self.num_base_keys))
            yield Transaction("kvstore", "write", (key, self._payload(rng)))

    def queries(
        self, count: int, current_block: int, query_range: int
    ) -> Iterator[Tuple[str, int, int]]:
        """Yield (key, blk_low, blk_high) covering the last ``query_range``
        blocks, as in Figure 14's setup."""
        rng = random.Random(self.seed + 2)
        blk_high = current_block
        blk_low = max(1, current_block - query_range + 1)
        for _ in range(count):
            yield self._key(rng.randrange(self.num_base_keys)), blk_low, blk_high
