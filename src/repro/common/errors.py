"""Exception hierarchy for the reproduction.

A single root (:class:`ReproError`) lets callers catch everything the
library raises on purpose, while the subclasses distinguish storage-layer
faults from authentication failures.
"""


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class StorageError(ReproError):
    """A disk-level operation failed (bad page id, truncated file, ...)."""


class IntegrityError(ReproError):
    """Stored data failed an internal consistency check."""


class VerificationError(ReproError):
    """A Merkle proof failed to verify against the published root digest."""


class RecoveryError(ReproError):
    """Crash recovery could not restore a consistent state."""
