"""Parameter objects mirroring the paper's Table 2 and Section 8.1.2.

The paper's defaults: 4 KB pages, 88-byte compound key-value pairs
(hence epsilon = 23), size ratio T = 4, MHT fanout m = 4, and an in-memory
capacity B sized from a memory budget.  Both parameter objects are frozen
dataclasses so experiment sweeps cannot accidentally mutate shared
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SystemParams:
    """Physical-layout parameters shared by every storage engine.

    Attributes:
        page_size: bytes per disk page (paper: 4096).
        addr_size: bytes per state address.  The paper stores Ethereum-style
            fixed-size address strings; with 40-byte keys and 32-byte values
            a key-value pair is 88 bytes, reproducing the paper's epsilon=23.
        value_size: bytes per state value.
        blk_size: bytes used to encode a block height inside a compound key
            (the paper fixes this to a 64-bit value).
    """

    page_size: int = 4096
    addr_size: int = 32
    value_size: int = 40
    blk_size: int = 8

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if min(self.addr_size, self.value_size, self.blk_size) <= 0:
            raise ValueError("addr/value/blk sizes must be positive")

    @property
    def key_size(self) -> int:
        """Bytes per compound key ``<addr, blk>``."""
        return self.addr_size + self.blk_size

    @property
    def pair_size(self) -> int:
        """Bytes per compound key-value pair in a value file."""
        return self.key_size + self.value_size

    @property
    def pairs_per_page(self) -> int:
        """Key-value pairs that fit in one value-file page (``2 * epsilon``)."""
        return max(2, self.page_size // self.pair_size)

    @property
    def epsilon(self) -> int:
        """Learned-model error bound, half a value-file page (Section 4.1)."""
        return self.pairs_per_page // 2


@dataclass(frozen=True)
class ColeParams:
    """COLE-specific tuning knobs (Table 2 defaults in bold in the paper).

    Attributes:
        system: physical layout shared with the other engines.
        size_ratio: LSM level size ratio ``T`` (default 4).
        mht_fanout: fanout ``m`` of the m-ary Merkle files (default 4).
        mem_capacity: in-memory level capacity ``B`` in key-value pairs.
            The paper derives B from a 64 MB budget; at reproduction scale
            we default to 512 pairs so multi-level behaviour appears quickly.
        async_merge: ``True`` runs Algorithm 5 (COLE*), ``False`` Algorithm 1.
        bloom_bits_per_key: bloom-filter budget per distinct address.
        bloom_hashes: number of bloom hash functions.
        value_cache_pages: per-run value-file page-cache capacity (the
            segmented LRU of ``repro.diskio.pagefile``).  0 — the default —
            disables caching so the IO-cost accounting of Table 1 counts
            every raw page access; the serving layer and the cache
            benchmarks opt in.
        compaction: cascade trigger policy (``repro.core.compaction``).
            ``"leveling"`` (the default, the paper's behaviour) merges a
            level as soon as it holds ``size_ratio`` runs; ``"tiering"``
            lets under-full sibling runs accumulate until the group
            actually overflows ``level_capacity``, trading bounded read
            fanout for less merge write amplification (the Dostoevsky
            trade-off).  Persisted in the manifest and validated on
            reopen.
    """

    system: SystemParams = SystemParams()
    size_ratio: int = 4
    mht_fanout: int = 4
    mem_capacity: int = 512
    async_merge: bool = False
    bloom_bits_per_key: int = 10
    bloom_hashes: int = 7
    value_cache_pages: int = 0
    compaction: str = "leveling"

    def __post_init__(self) -> None:
        if self.value_cache_pages < 0:
            raise ValueError("value_cache_pages cannot be negative")
        if self.compaction not in ("leveling", "tiering"):
            raise ValueError(
                f"compaction must be 'leveling' or 'tiering', got {self.compaction!r}"
            )
        if self.size_ratio < 2:
            raise ValueError("size_ratio must be >= 2")
        if self.mht_fanout < 2:
            raise ValueError("mht_fanout must be >= 2")
        if self.mem_capacity < 1:
            raise ValueError("mem_capacity must be >= 1")
        if self.bloom_bits_per_key < 1 or self.bloom_hashes < 1:
            raise ValueError("bloom parameters must be >= 1")

    def level_capacity(self, level: int) -> int:
        """Maximum number of pairs a single group of on-disk level holds.

        Level ``i >= 1`` holds up to ``B * T**i`` pairs per group
        (Section 4; with async merge each level has two such groups).
        """
        if level < 1:
            raise ValueError("on-disk levels start at 1")
        return self.mem_capacity * self.size_ratio**level

    def run_size(self, level: int) -> int:
        """Number of pairs in one full run at on-disk level ``level``."""
        return self.mem_capacity * self.size_ratio ** (level - 1)

    def with_async(self, async_merge: bool = True) -> "ColeParams":
        """Return a copy with the asynchronous-merge flag set."""
        return replace(self, async_merge=async_merge)

    def with_compaction(self, compaction: str) -> "ColeParams":
        """Return a copy with a different compaction policy."""
        return replace(self, compaction=compaction)


@dataclass(frozen=True)
class ShardParams:
    """Configuration of the sharded engine (``repro.sharding``).

    A sharded deployment runs ``num_shards`` fully independent COLE
    instances, each sized like a single node (scale-out adds resources the
    way adding machines would), with the address space hash-partitioned
    across them.

    Attributes:
        cole: per-shard COLE parameters.  ``async_merge`` defaults to True
            here: background merges are what the parallel commit fan-out
            overlaps across shards.
        num_shards: number of independent COLE shards (>= 1).
        commit_workers: size of the commit thread pool; 0 (the default)
            means one worker per shard.
    """

    cole: ColeParams = ColeParams(async_merge=True)
    num_shards: int = 4
    commit_workers: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.commit_workers < 0:
            raise ValueError("commit_workers cannot be negative")

    def with_shards(self, num_shards: int) -> "ShardParams":
        """Return a copy with a different shard count."""
        return replace(self, num_shards=num_shards)
