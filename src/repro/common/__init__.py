"""Shared low-level utilities: hashing, codecs, parameters, errors.

Everything in this package is dependency-free and used by every other
subsystem in the reproduction.
"""

from repro.common.errors import (
    ReproError,
    StorageError,
    IntegrityError,
    VerificationError,
    RecoveryError,
)
from repro.common.hashing import (
    DIGEST_SIZE,
    EMPTY_DIGEST,
    Digest,
    hash_bytes,
    hash_concat,
    hash_pair,
)
from repro.common.gate import CommitGate
from repro.common.params import ColeParams, SystemParams
from repro.common.codec import (
    decode_u32,
    decode_u64,
    encode_u32,
    encode_u64,
    int_from_bytes,
    int_to_bytes,
    pack_float,
    unpack_float,
)

__all__ = [
    "ReproError",
    "StorageError",
    "IntegrityError",
    "VerificationError",
    "RecoveryError",
    "DIGEST_SIZE",
    "EMPTY_DIGEST",
    "Digest",
    "hash_bytes",
    "hash_concat",
    "hash_pair",
    "ColeParams",
    "CommitGate",
    "SystemParams",
    "encode_u32",
    "decode_u32",
    "encode_u64",
    "decode_u64",
    "int_to_bytes",
    "int_from_bytes",
    "pack_float",
    "unpack_float",
]
