"""Fixed-width binary codecs.

Every on-disk structure in the reproduction is built from a handful of
primitives: unsigned 32/64-bit integers, big-endian arbitrary-width
integers (addresses, compound keys) and IEEE-754 doubles (learned-model
slopes and intercepts).  Centralizing them keeps file formats consistent
and makes the byte-level tests easy to write.
"""

from __future__ import annotations

import struct

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")

U64_MAX = 2**64 - 1


def encode_u32(value: int) -> bytes:
    """Encode ``value`` as a big-endian unsigned 32-bit integer."""
    return _U32.pack(value)


def decode_u32(data: bytes, offset: int = 0) -> int:
    """Decode a big-endian unsigned 32-bit integer at ``offset``."""
    return _U32.unpack_from(data, offset)[0]


def encode_u64(value: int) -> bytes:
    """Encode ``value`` as a big-endian unsigned 64-bit integer."""
    return _U64.pack(value)


def decode_u64(data: bytes, offset: int = 0) -> int:
    """Decode a big-endian unsigned 64-bit integer at ``offset``."""
    return _U64.unpack_from(data, offset)[0]


def pack_float(value: float) -> bytes:
    """Encode ``value`` as a big-endian IEEE-754 double."""
    return _F64.pack(value)


def unpack_float(data: bytes, offset: int = 0) -> float:
    """Decode a big-endian IEEE-754 double at ``offset``."""
    return _F64.unpack_from(data, offset)[0]


def int_to_bytes(value: int, width: int) -> bytes:
    """Encode a non-negative integer as ``width`` big-endian bytes."""
    return value.to_bytes(width, "big")


def int_from_bytes(data: bytes) -> int:
    """Decode a big-endian unsigned integer of any width."""
    return int.from_bytes(data, "big")
