"""Dynamic lock-order race detection for tests (``REPRO_DEBUG_LOCKS=1``).

The static ``repro lint`` checkers (see :mod:`repro.analysis`) catch
lexically visible gate misuse, but lock-order inversions are a *runtime*
property: thread A takes the WAL append lock then the page-cache lock,
thread B the reverse, and the deadlock only fires under the right
interleaving.  This module turns every named lock in the process into an
order probe:

* each acquisition records ``held -> acquired`` edges into one
  process-global directed graph keyed by **lock name** (a lock class,
  e.g. ``"wal-append"`` — every WAL instance shares the name);
* before an edge is added, a reachability check runs in the opposite
  direction; if the new edge closes a cycle, :class:`LockOrderError`
  is raised immediately with the full cycle path — the hammer test that
  merely *risked* a deadlock now fails loudly instead of hanging once
  in a thousand runs.

Enable it by setting ``REPRO_DEBUG_LOCKS=1`` before process start; the
CI integration job runs one tier-1 concurrency hammer this way.  When
the variable is unset, :func:`maybe_debug_lock` hands back a plain
``threading.Lock`` and :class:`~repro.common.gate.CommitGate` skips
tracking entirely, so the production path pays one attribute check.

Known granularity limit: edges are keyed by name, so two *instances* of
the same class (two shard gates) never form an edge — a cross-instance
inversion within one class is invisible here.  The codebase avoids
holding two same-class locks at once by construction (shards are
committed by independent pool threads), and the gate-discipline static
rule covers the lexical side.
"""

from __future__ import annotations

import os
import threading
from types import TracebackType
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Type, Union

from repro.common.errors import ReproError

if TYPE_CHECKING:
    from _thread import LockType

ENV_VAR = "REPRO_DEBUG_LOCKS"


class LockOrderError(ReproError):
    """Two lock classes were observed in contradictory acquisition order."""


def debug_locks_enabled() -> bool:
    """True when ``REPRO_DEBUG_LOCKS`` is set (and not ``"0"``)."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


class LockOrderGraph:
    """Process-global directed graph of observed lock-name orderings."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: Dict[str, Set[str]] = {}
        self._held = threading.local()

    def _stack(self) -> List[str]:
        stack: Optional[List[str]] = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def note_acquired(self, name: str) -> None:
        """Record that the current thread acquired ``name``.

        Raises :class:`LockOrderError` if any ``held -> name`` edge
        closes a cycle with previously observed orderings.
        """
        stack = self._stack()
        with self._mutex:
            for held in stack:
                # Same-name pairs carry no direction at name granularity
                # (two shard gates); skip rather than self-cycle.
                if held != name:
                    self._add_edge_locked(held, name)
        stack.append(name)

    def note_released(self, name: str) -> None:
        """Record that the current thread released ``name``."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def _add_edge_locked(self, src: str, dst: str) -> None:
        peers = self._edges.setdefault(src, set())
        if dst in peers:
            return
        path = self._path_locked(dst, src)
        if path is not None:
            # path runs dst .. src, so prefixing src closes the loop.
            cycle = " -> ".join([src] + path)
            raise LockOrderError(
                f"lock-order cycle: acquiring {dst!r} while holding {src!r} "
                f"contradicts the observed order {cycle}"
            )
        peers.add(dst)

    def _path_locked(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS path ``start -> ... -> goal`` over existing edges, or None."""
        seen: Set[str] = set()
        trail: List[str] = [start]

        def visit(node: str) -> bool:
            if node == goal:
                return True
            seen.add(node)
            for nxt in self._edges.get(node, ()):
                if nxt in seen:
                    continue
                trail.append(nxt)
                if visit(nxt):
                    return True
                trail.pop()
            return False

        return trail if visit(start) else None

    def edges(self) -> Dict[str, Set[str]]:
        """Snapshot of the observed ordering edges (for tests)."""
        with self._mutex:
            return {src: set(dst) for src, dst in self._edges.items()}

    def reset(self) -> None:
        """Drop all recorded edges (this thread's held stack too)."""
        with self._mutex:
            self._edges.clear()
        self._stack().clear()


#: The process-global graph every DebugLock / tracked CommitGate feeds.
GRAPH = LockOrderGraph()


def track_acquire(name: str) -> None:
    GRAPH.note_acquired(name)


def track_release(name: str) -> None:
    GRAPH.note_released(name)


def reset_lock_order() -> None:
    GRAPH.reset()


class DebugLock:
    """A named ``threading.Lock`` wrapper feeding the order graph."""

    def __init__(self, name: str, graph: Optional[LockOrderGraph] = None) -> None:
        self.name = name
        self._graph = GRAPH if graph is None else graph
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            try:
                self._graph.note_acquired(self.name)
            except BaseException:
                self._inner.release()
                raise
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._graph.note_released(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()


def maybe_debug_lock(name: str) -> Union[DebugLock, "LockType"]:
    """A plain lock normally; a tracked :class:`DebugLock` under the env var."""
    if debug_locks_enabled():
        return DebugLock(name)
    return threading.Lock()
