"""A reader/writer gate for concurrent queries against one engine.

The serving layer (``repro.server``) and the concurrent-reader tests run
``get`` / ``get_at`` / provenance queries from many threads while blocks
commit and background merges cascade.  Page-level IO is already atomic
(``PagedFile`` holds a per-file lock), but the *structural* state of an
engine is not: commit checkpoints swap L0 groups, switch level group
roles, attach merge outputs, and delete merged-away run files.  A reader
walking those structures mid-checkpoint could follow a freed run or a
half-swapped group.

:class:`CommitGate` closes that window with the classic shared/exclusive
discipline:

* queries hold the gate **shared** — any number run concurrently;
* structural mutation (puts into L0, commit checkpoints, rewind) holds
  it **exclusive**.

Writers are preferred: a waiting writer blocks new readers, so a steady
query stream cannot starve the commit path.  The gate is not reentrant —
internal engine helpers stay ungated and only the public entry points
acquire it (exactly once per call).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.common.debuglock import debug_locks_enabled, track_acquire, track_release


class CommitGate:
    """Shared/exclusive gate between queries and commit checkpoints.

    ``name`` labels the gate's lock *class* in the ``REPRO_DEBUG_LOCKS``
    order graph (see :mod:`repro.common.debuglock`); shared and
    exclusive holds both count as "holding" for ordering purposes.
    Tracking is resolved once at construction — unset env var means a
    ``None`` check per acquisition and nothing else.
    """

    def __init__(self, name: str = "commit-gate") -> None:
        self._cond = threading.Condition(threading.Lock())
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._debug_name: Optional[str] = name if debug_locks_enabled() else None

    # -- shared (queries) -----------------------------------------------------

    def acquire_shared(self) -> None:
        """Enter as a reader; blocks while a writer is active or waiting."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1
        if self._debug_name is not None:
            track_acquire(self._debug_name)

    def release_shared(self) -> None:
        """Leave the reader side; wakes a waiting writer when last out."""
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()
        if self._debug_name is not None:
            track_release(self._debug_name)

    @contextmanager
    def shared(self) -> Iterator[None]:
        """``with gate.shared():`` — hold the gate as a reader."""
        self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    # -- exclusive (structural mutation) --------------------------------------

    def acquire_exclusive(self) -> None:
        """Enter as the sole writer; blocks until all readers drain."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        if self._debug_name is not None:
            track_acquire(self._debug_name)

    def release_exclusive(self) -> None:
        """Leave the writer side; wakes every waiter."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()
        if self._debug_name is not None:
            track_release(self._debug_name)

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """``with gate.exclusive():`` — hold the gate as the writer."""
        self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()
