"""Cryptographic hashing used by every authenticated structure.

The paper uses SHA-256 (Definition 2).  All digests in the reproduction are
raw 32-byte strings; helpers here centralize concatenation conventions so
that the Merkle structures in different subsystems hash identically when
they should.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

#: Size in bytes of every digest in the system.
DIGEST_SIZE = 32

#: Alias used in type hints throughout the code base.
Digest = bytes

#: Digest of the empty string; used as the root of empty structures.
EMPTY_DIGEST = hashlib.sha256(b"").digest()


def hash_bytes(data: bytes) -> Digest:
    """Return the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hash_pair(left: Digest, right: Digest) -> Digest:
    """Return ``h(left || right)`` — the binary Merkle internal-node rule."""
    return hashlib.sha256(left + right).digest()


def hash_concat(parts: Iterable[bytes]) -> Digest:
    """Return the digest of the concatenation of ``parts``.

    Used for m-ary Merkle nodes (``h(h1 || h2 || ... || hm)``) and for the
    ``root_hash_list`` digest that becomes ``Hstate`` in the block header.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part)
    return hasher.digest()
