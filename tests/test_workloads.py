"""Tests for the workload generators."""

import pytest

from repro.workloads import Mix, ProvenanceWorkload, SmallBankWorkload, YCSBWorkload
from repro.workloads.ycsb import ZipfGenerator


def test_smallbank_setup_creates_all_accounts():
    workload = SmallBankWorkload(num_accounts=10)
    setup = list(workload.setup_transactions())
    assert len(setup) == 10
    assert all(tx.op == "create_account" for tx in setup)


def test_smallbank_stream_is_deterministic():
    a = list(SmallBankWorkload(num_accounts=20, seed=5).transactions(100))
    b = list(SmallBankWorkload(num_accounts=20, seed=5).transactions(100))
    assert a == b


def test_smallbank_different_seeds_differ():
    a = list(SmallBankWorkload(num_accounts=20, seed=5).transactions(50))
    b = list(SmallBankWorkload(num_accounts=20, seed=6).transactions(50))
    assert a != b


def test_smallbank_uses_all_ops():
    txs = SmallBankWorkload(num_accounts=20, seed=1).transactions(500)
    ops = {tx.op for tx in txs}
    assert ops == {
        "get_balance", "update_balance", "update_saving",
        "send_payment", "write_check", "amalgamate",
    }


def test_smallbank_payment_parties_differ():
    for tx in SmallBankWorkload(num_accounts=5, seed=2).transactions(300):
        if tx.op == "send_payment":
            assert tx.args[0] != tx.args[1]


def test_smallbank_needs_two_accounts():
    with pytest.raises(ValueError):
        SmallBankWorkload(num_accounts=1)


def test_ycsb_load_phase_covers_all_keys():
    workload = YCSBWorkload(num_keys=25)
    load = list(workload.load_transactions())
    assert len(load) == 25
    assert {tx.args[0] for tx in load} == {f"user{i}" for i in range(25)}


def test_ycsb_mixes():
    workload = YCSBWorkload(num_keys=50, seed=3)
    ro = list(workload.run_transactions(200, Mix.READ_ONLY))
    assert all(tx.op == "read" for tx in ro)
    wo = list(workload.run_transactions(200, Mix.WRITE_ONLY))
    assert all(tx.op == "write" for tx in wo)
    rw = list(workload.run_transactions(400, Mix.READ_WRITE))
    reads = sum(1 for tx in rw if tx.op == "read")
    assert 100 < reads < 300  # roughly half


def test_ycsb_generator_workload_e_is_scan_heavy_and_deterministic():
    from repro.workloads import YCSBGenerator

    ops = list(YCSBGenerator("E", num_keys=100, seed=4, max_scan_length=20).ops(1000))
    again = list(YCSBGenerator("E", num_keys=100, seed=4, max_scan_length=20).ops(1000))
    assert ops == again
    kinds = [kind for kind, _rank, _len in ops]
    assert 900 < kinds.count("scan") <= 1000  # ~95% scans
    assert kinds.count("read") == 0
    assert kinds.count("update") > 0  # the 5% insert/update share
    for kind, rank, length in ops:
        assert 0 <= rank < 100
        if kind == "scan":
            assert 1 <= length <= 20
        else:
            assert length == 0


def test_ycsb_generator_letter_mixes():
    from repro.workloads import YCSBGenerator

    cases = {"A": (0.5, 0.0), "B": (0.95, 0.0), "C": (1.0, 0.0), "E": (0.0, 0.95)}
    for letter, (read, scan) in cases.items():
        mix = YCSBGenerator.MIXES[letter]
        assert (mix.read_fraction, mix.scan_fraction) == (read, scan)
        assert abs(mix.update_fraction - (1.0 - read - scan)) < 1e-9
    kinds = {
        kind
        for kind, _r, _l in YCSBGenerator("C", num_keys=10, seed=1).ops(200)
    }
    assert kinds == {"read"}


def test_ycsb_generator_rejects_bad_arguments():
    import pytest

    from repro.workloads import WorkloadMix, YCSBGenerator

    with pytest.raises(ValueError):
        YCSBGenerator("Z")
    with pytest.raises(ValueError):
        YCSBGenerator("E", max_scan_length=0)
    with pytest.raises(ValueError):
        WorkloadMix(read_fraction=0.8, scan_fraction=0.4)


def test_zipf_skews_to_popular_keys():
    zipf = ZipfGenerator(100, theta=0.99, seed=4)
    samples = [zipf.next_rank() for _ in range(2000)]
    top_share = sum(1 for rank in samples if rank < 10) / len(samples)
    assert top_share > 0.3
    assert all(0 <= rank < 100 for rank in samples)


def test_provenance_base_then_updates():
    workload = ProvenanceWorkload(num_base_keys=10, seed=2)
    base = list(workload.load_transactions())
    assert len(base) == 10
    updates = list(workload.update_transactions(100))
    assert all(tx.op == "write" for tx in updates)
    assert {tx.args[0] for tx in updates} <= {f"prov{i}" for i in range(10)}


def test_provenance_queries_cover_requested_range():
    workload = ProvenanceWorkload(num_base_keys=10, seed=2)
    for key, low, high in workload.queries(20, current_block=100, query_range=16):
        assert high == 100
        assert low == 85
        assert key.startswith("prov")


def test_provenance_query_range_clamped_at_genesis():
    workload = ProvenanceWorkload(num_base_keys=10)
    for _key, low, _high in workload.queries(5, current_block=4, query_range=100):
        assert low == 1
