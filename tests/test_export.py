"""Streaming export / import of keyspace slices (the REPX format).

The headline contract: a write-once workload, exported over the full
address range at the source's current height and replayed into a fresh
engine, reproduces the source's root digest exactly — on the sync,
async, and sharded engines.  Everything else defends the stream format:
every frame and the trailer are checksummed, so truncation, bit flips,
and lost frames all fail loudly instead of importing silently-wrong
state.
"""

import hashlib
import io
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cli import main
from repro.common.errors import IntegrityError, StorageError
from repro.common.params import ColeParams, ShardParams, SystemParams
from repro.core import Cole, export_slice, import_slice, iter_triples, read_header
from repro.sharding import ShardedCole

SYSTEM = SystemParams(addr_size=20, value_size=24)
PARAMS = ColeParams(system=SYSTEM, mem_capacity=64, size_ratio=4)


def addr_of(i: int) -> bytes:
    return hashlib.sha256(f"exp-{i}".encode()).digest()[:20]


def value_of(i: int, blk: int) -> bytes:
    return hashlib.sha256(f"val-{i}-{blk}".encode()).digest()[:24]


def load_write_once(engine, blocks: int = 20, per_block: int = 15) -> dict:
    """Fresh keys every block, applied in canonical sorted order — the
    round-trip equality contract's preconditions."""
    model = {}
    n = 0
    for blk in range(1, blocks + 1):
        batch = {}
        for _ in range(per_block):
            batch[addr_of(n)] = value_of(n, blk)
            n += 1
        engine.begin_block(blk)
        engine.put_many(sorted(batch.items()))
        engine.commit_block()
        model.update(batch)
    engine.wait_for_merges()
    return model


def make_engine(directory: str, shape: str):
    if shape == "sync":
        return Cole(directory, PARAMS)
    if shape == "async":
        return Cole(directory, PARAMS.with_async())
    return ShardedCole(
        directory, ShardParams(cole=PARAMS.with_async(), num_shards=2)
    )


# =============================================================================
# round-trip root equality — the export/import oracle
# =============================================================================

@pytest.mark.parametrize("shape", ["sync", "async", "sharded"])
def test_round_trip_reproduces_source_root(tmp_path, shape):
    source = make_engine(str(tmp_path / "src"), shape)
    model = load_write_once(source)
    source_root = source.root_digest()

    stream = io.BytesIO()
    stats = export_slice(source, stream)
    source.close()
    assert stats["triples"] == len(model)

    stream.seek(0)
    target = make_engine(str(tmp_path / "dst"), shape)
    result = import_slice(target, stream)
    target.wait_for_merges()
    assert result["triples"] == len(model)
    assert target.root_digest() == source_root
    for a, expected in sorted(model.items())[:32]:
        assert target.get(a) == expected
    target.close()


def test_header_records_the_slice(tmp_path):
    engine = Cole(str(tmp_path), PARAMS)
    load_write_once(engine, blocks=6)
    stream = io.BytesIO()
    export_slice(engine, stream)
    stream.seek(0)
    header = read_header(stream)
    assert header["version"] == 1
    assert header["addr_size"] == 20
    assert header["at_blk"] == 6
    assert header["source_root"] == engine.root_digest().hex()
    assert header["addr_low"] == "00" * 20
    assert header["addr_high"] == "ff" * 20
    engine.close()


# =============================================================================
# slicing: by height and by address range
# =============================================================================

def test_at_blk_exports_historical_versions(tmp_path):
    engine = Cole(str(tmp_path), PARAMS)
    target = addr_of(0)
    for blk in (1, 2, 3):
        engine.begin_block(blk)
        engine.put(target, value_of(0, blk))
        engine.commit_block()
    stream = io.BytesIO()
    export_slice(engine, stream, at_blk=2)
    stream.seek(0)
    triples = list(iter_triples(stream, read_header(stream)))
    engine.close()
    assert triples == [(target, 2, value_of(0, 2))]


def test_addr_bounds_restrict_the_slice(tmp_path):
    engine = Cole(str(tmp_path), PARAMS)
    model = load_write_once(engine, blocks=8)
    addresses = sorted(model)
    low, high = addresses[10], addresses[40]
    stream = io.BytesIO()
    export_slice(engine, stream, addr_low=low, addr_high=high)
    stream.seek(0)
    triples = list(iter_triples(stream, read_header(stream)))
    engine.close()
    expected = [a for a in addresses if low <= a <= high]
    assert [t[0] for t in triples] == expected
    assert all(model[a] == v for a, _, v in triples)


def test_small_scan_pages_change_nothing(tmp_path):
    # Page size shapes the frame boundaries, never the decoded slice.
    engine = Cole(str(tmp_path), PARAMS)
    load_write_once(engine, blocks=8)
    whole, paged = io.BytesIO(), io.BytesIO()
    export_slice(engine, whole)
    export_slice(engine, paged, page=7)
    engine.close()
    whole.seek(0)
    paged.seek(0)
    assert list(iter_triples(whole, read_header(whole))) == list(
        iter_triples(paged, read_header(paged))
    )


# =============================================================================
# corruption: every byte of the stream is accounted for
# =============================================================================

def exported_stream(tmp_path) -> bytes:
    engine = Cole(str(tmp_path / "src"), PARAMS)
    load_write_once(engine, blocks=6)
    stream = io.BytesIO()
    export_slice(engine, stream)
    engine.close()
    return stream.getvalue()


def consume(data: bytes) -> int:
    stream = io.BytesIO(data)
    return sum(1 for _ in iter_triples(stream, read_header(stream)))


def test_truncation_detected(tmp_path):
    data = exported_stream(tmp_path)
    for cut in (len(data) - 1, len(data) // 2, 10):
        with pytest.raises(IntegrityError):
            consume(data[:cut])


def test_bit_flip_detected(tmp_path):
    data = exported_stream(tmp_path)
    # Flip one byte in the middle of the frame region (past the header).
    victim = len(data) // 2
    corrupted = bytearray(data)
    corrupted[victim] ^= 0x40
    with pytest.raises(IntegrityError):
        consume(bytes(corrupted))


def test_bad_magic_rejected(tmp_path):
    data = exported_stream(tmp_path)
    with pytest.raises(IntegrityError, match="magic"):
        consume(b"NOPE" + data[4:])


def test_import_rejects_addr_size_mismatch(tmp_path):
    data = exported_stream(tmp_path)
    other = Cole(
        str(tmp_path / "other"),
        ColeParams(system=SystemParams(addr_size=32, value_size=24)),
    )
    with pytest.raises(StorageError, match="addr_size"):
        import_slice(other, io.BytesIO(data))
    other.close()


# =============================================================================
# property: the round trip holds across value sizes and export heights
# =============================================================================

@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    value_size=st.integers(min_value=8, max_value=48),
    blocks=st.integers(min_value=1, max_value=12),
    at_frac=st.floats(min_value=0.2, max_value=1.0),
)
def test_export_frames_round_trip_property(tmp_path_factory, value_size, blocks, at_frac):
    """Whatever the value geometry and export height, the stream decodes
    to exactly the surviving versions at that height."""
    root = tmp_path_factory.mktemp("prop")
    params = ColeParams(
        system=SystemParams(addr_size=20, value_size=value_size),
        mem_capacity=16,
        size_ratio=2,
    )
    engine = Cole(str(root / "ws"), params)
    model_at = {}
    at_blk = max(1, int(blocks * at_frac))
    n = 0
    for blk in range(1, blocks + 1):
        batch = {}
        for _ in range(5):
            key = n % 9  # overwrites across heights on purpose
            a = addr_of(key)
            batch[a] = hashlib.sha256(
                f"pv-{key}-{blk}".encode()
            ).digest()[:value_size].ljust(value_size, b"\0")
            n += 1
        engine.begin_block(blk)
        engine.put_many(sorted(batch.items()))
        engine.commit_block()
        if blk <= at_blk:
            for a, v in batch.items():
                model_at[a] = (blk, v)
    stream = io.BytesIO()
    export_slice(engine, stream, at_blk=at_blk, page=4)
    engine.close()
    stream.seek(0)
    triples = list(iter_triples(stream, read_header(stream)))
    assert [t[0] for t in triples] == sorted(model_at)
    for a, blk, v in triples:
        assert model_at[a] == (blk, v)


# =============================================================================
# the CLI surface
# =============================================================================

def build_durable_workspace(directory: str):
    """A WAL-backed workspace: a cold reopen replays every write, so the
    CLI round trip can reproduce the exported root."""
    from repro.wal import WriteAheadLog

    params = ColeParams(async_merge=True, mem_capacity=512)
    engine = Cole(directory, params)
    wal = WriteAheadLog(os.path.join(directory, "wal"))
    n = 0
    for blk in range(1, 13):
        batch = []
        for _ in range(24):
            a = hashlib.sha256(f"cli-{n}".encode()).digest()[
                : params.system.addr_size
            ]
            v = hashlib.sha256(f"cval-{n}".encode()).digest()[
                : params.system.value_size
            ].ljust(params.system.value_size, b"\0")
            batch.append((a, v))
            n += 1
        batch.sort()
        engine.begin_block(blk)
        wal.append_puts(batch, blk)
        engine.put_many(batch)
        wal.append_commit(blk, bytes(engine.commit_block()))
    engine.wait_for_merges()
    root = engine.root_digest()
    wal.close()
    engine.close()
    return root


def test_cli_export_import_round_trip(tmp_path, capsys):
    workspace = str(tmp_path / "ws")
    live_root = build_durable_workspace(workspace)
    out_file = str(tmp_path / "slice.repx")
    assert main(["export", "-w", workspace, "-o", out_file]) == 0
    out = capsys.readouterr().out
    assert live_root.hex() in out
    assert os.path.getsize(out_file) > 0

    dest = str(tmp_path / "imported")
    assert main(["import", out_file, "-w", dest]) == 0
    out = capsys.readouterr().out
    assert "root digest matches the export header" in out


def test_cli_import_refuses_nonempty_destination(tmp_path):
    workspace = str(tmp_path / "ws")
    build_durable_workspace(workspace)
    out_file = str(tmp_path / "slice.repx")
    assert main(["export", "-w", workspace, "-o", out_file]) == 0
    with pytest.raises(SystemExit, match="not empty"):
        main(["import", out_file, "-w", workspace])


def test_cli_export_bad_bound_rejected(tmp_path):
    workspace = str(tmp_path / "ws")
    build_durable_workspace(workspace)
    with pytest.raises(SystemExit, match="hex"):
        main(
            [
                "export",
                "-w",
                workspace,
                "-o",
                str(tmp_path / "x.repx"),
                "--low",
                "zz",
            ]
        )
