"""Unit tests for the hashing helpers."""

import hashlib

from repro.common.hashing import (
    DIGEST_SIZE,
    EMPTY_DIGEST,
    hash_bytes,
    hash_concat,
    hash_pair,
)


def test_hash_bytes_is_sha256():
    assert hash_bytes(b"abc") == hashlib.sha256(b"abc").digest()


def test_digest_size():
    assert len(hash_bytes(b"")) == DIGEST_SIZE == 32


def test_empty_digest_matches_empty_hash():
    assert EMPTY_DIGEST == hash_bytes(b"")


def test_hash_pair_is_concatenation():
    left, right = hash_bytes(b"l"), hash_bytes(b"r")
    assert hash_pair(left, right) == hash_bytes(left + right)


def test_hash_pair_order_matters():
    left, right = hash_bytes(b"l"), hash_bytes(b"r")
    assert hash_pair(left, right) != hash_pair(right, left)


def test_hash_concat_equals_manual():
    parts = [b"a", b"bb", b"ccc"]
    assert hash_concat(parts) == hash_bytes(b"abbccc")


def test_hash_concat_accepts_generator():
    assert hash_concat(p for p in [b"x", b"y"]) == hash_bytes(b"xy")
