"""Tests for MB-tree authenticated range proofs."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import VerificationError
from repro.mbtree import MBTree, verify_range_proof
from repro.mbtree.proof import ProofHash, ProofLeaf


def build(entries, order=4, key_width=8):
    tree = MBTree(order=order, key_width=key_width)
    for key, value in entries:
        tree.insert(key, value)
    return tree


def test_range_proof_round_trip():
    tree = build([(i * 10, bytes([i])) for i in range(1, 30)])
    results, proof = tree.range_proof(95, 155)
    disclosed = verify_range_proof(proof, tree.root_hash(), key_width=8)
    # The floor entry (90) plus everything in [95, 155].
    keys = [k for k, _ in disclosed]
    assert 90 in keys  # floor extension
    assert all(k in keys for k in (100, 110, 120, 130, 140, 150))
    assert results == [(k, v) for k, v in disclosed]


def test_range_proof_empty_tree_region():
    tree = build([(100, b"a"), (200, b"b")])
    _results, proof = tree.range_proof(300, 400)
    disclosed = verify_range_proof(proof, tree.root_hash(), key_width=8)
    assert (200, b"b") in disclosed  # floor proves nothing exists in range


def test_range_proof_before_first_key():
    tree = build([(100, b"a"), (200, b"b")])
    results, proof = tree.range_proof(10, 50)
    disclosed = verify_range_proof(proof, tree.root_hash(), key_width=8)
    assert results == []
    assert all(k > 50 or k < 10 for k, _ in disclosed) or disclosed == []


def test_tampered_value_fails():
    tree = build([(i, bytes([i])) for i in range(1, 60)])
    _results, proof = tree.range_proof(10, 20)

    def tamper(node):
        if isinstance(node, ProofLeaf) and node.values:
            node.values[0] = b"\xff" + node.values[0][1:]
            return True
        if hasattr(node, "children"):
            return any(tamper(child) for child in node.children)
        return False

    assert tamper(proof.root)
    with pytest.raises(VerificationError):
        verify_range_proof(proof, tree.root_hash(), key_width=8)


def test_wrong_root_fails():
    tree = build([(i, bytes([i])) for i in range(1, 20)])
    _results, proof = tree.range_proof(5, 10)
    other = build([(1, b"z")])
    with pytest.raises(VerificationError):
        verify_range_proof(proof, other.root_hash(), key_width=8)


def test_proof_prunes_off_path_subtrees():
    tree = build([(i, bytes([i % 250])) for i in range(1, 200)], order=4)
    _results, proof = tree.range_proof(50, 55)

    def count(node, kind):
        total = isinstance(node, kind)
        for child in getattr(node, "children", []):
            total += count(child, kind)
        return total

    assert count(proof.root, ProofHash) > 0  # something was pruned
    assert proof.size_bytes() > 0


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=5000),
        st.binary(min_size=1, max_size=4),
        min_size=1,
        max_size=150,
    ),
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=0, max_value=500),
)
def test_range_proof_completeness_property(mapping, low, span):
    high = low + span
    tree = build(mapping.items(), order=5)
    results, proof = tree.range_proof(low, high)
    disclosed = verify_range_proof(proof, tree.root_hash(), key_width=8)
    in_range = sorted((k, v) for k, v in mapping.items() if low <= k <= high)
    disclosed_in_range = [(k, v) for k, v in disclosed if low <= k <= high]
    assert disclosed_in_range == in_range
    result_in_range = [(k, v) for k, v in results if low <= k <= high]
    assert result_in_range == in_range
