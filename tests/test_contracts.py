"""Unit tests for the smart contracts and execution context."""

import pytest

from repro.chain.contracts import ExecutionContext, KVStoreContract, SmallBankContract
from repro.common.errors import StorageError


class DictBackend:
    """Minimal backend: a dict with Put/Get."""

    def __init__(self):
        self.state = {}

    def put(self, addr, value):
        self.state[addr] = value

    def get(self, addr):
        return self.state.get(addr)


@pytest.fixture
def context():
    return ExecutionContext(addr_size=20, value_size=32)


@pytest.fixture
def backend():
    return DictBackend()


def test_address_is_deterministic_and_sized(context):
    a1 = context.address("label")
    a2 = context.address("label")
    assert a1 == a2
    assert len(a1) == 20
    assert context.address("other") != a1


def test_int_encoding_round_trip(context):
    for number in (0, 1, -1, 10**9, -(10**9)):
        assert context.decode_int(context.encode_int(number)) == number


def test_missing_value_decodes_to_zero(context):
    assert context.decode_int(None) == 0


def test_blob_padding(context):
    assert len(context.encode_blob(b"short")) == 32
    assert context.encode_blob(b"x" * 100) == b"x" * 32


def test_create_account_and_balance(context, backend):
    sb = SmallBankContract(context)
    sb.execute(backend, "create_account", ("alice", 100, 50))
    assert sb.execute(backend, "get_balance", ("alice",)) == 150


def test_update_balance(context, backend):
    sb = SmallBankContract(context)
    sb.execute(backend, "create_account", ("alice", 0, 10))
    assert sb.execute(backend, "update_balance", ("alice", 5)) == 15


def test_update_saving(context, backend):
    sb = SmallBankContract(context)
    sb.execute(backend, "create_account", ("alice", 10, 0))
    assert sb.execute(backend, "update_saving", ("alice", 7)) == 17


def test_send_payment_conserves_money(context, backend):
    sb = SmallBankContract(context)
    sb.execute(backend, "create_account", ("alice", 0, 100))
    sb.execute(backend, "create_account", ("bob", 0, 100))
    sb.execute(backend, "send_payment", ("alice", "bob", 30))
    assert sb.execute(backend, "get_balance", ("alice",)) == 70
    assert sb.execute(backend, "get_balance", ("bob",)) == 130


def test_write_check(context, backend):
    sb = SmallBankContract(context)
    sb.execute(backend, "create_account", ("alice", 0, 100))
    assert sb.execute(backend, "write_check", ("alice", 25)) == 75


def test_amalgamate_moves_everything(context, backend):
    sb = SmallBankContract(context)
    sb.execute(backend, "create_account", ("alice", 40, 60))
    sb.execute(backend, "create_account", ("bob", 0, 10))
    sb.execute(backend, "amalgamate", ("alice", "bob"))
    assert sb.execute(backend, "get_balance", ("alice",)) == 0
    assert sb.execute(backend, "get_balance", ("bob",)) == 110


def test_smallbank_unknown_op(context, backend):
    with pytest.raises(StorageError):
        SmallBankContract(context).execute(backend, "mint", ())


def test_kvstore_read_write(context, backend):
    kv = KVStoreContract(context)
    kv.execute(backend, "write", ("user1", "payload"))
    value = kv.execute(backend, "read", ("user1",))
    assert value.startswith(b"payload")
    assert kv.execute(backend, "read", ("missing",)) is None


def test_kvstore_unknown_op(context, backend):
    with pytest.raises(StorageError):
        KVStoreContract(context).execute(backend, "scan", ())
