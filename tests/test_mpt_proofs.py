"""Tests for MPT Merkle-path proofs."""

import random

import pytest

from repro.common.errors import VerificationError
from repro.kvstore import LSMStore
from repro.mpt import MPTrie, verify_mpt_proof
from repro.mpt.proof import MPTProof


@pytest.fixture
def trie_with_data(tmp_path):
    store = LSMStore(str(tmp_path / "kv"), memtable_capacity=1024)
    trie = MPTrie(store)
    rng = random.Random(12)
    model = {}
    root = None
    for _ in range(200):
        key = rng.randbytes(20)
        value = rng.randbytes(16)
        root = trie.put(root, key, value)
        model[key] = value
    yield trie, root, model, rng
    store.close()


def test_existence_proofs_verify(trie_with_data):
    trie, root, model, rng = trie_with_data
    for key in rng.sample(list(model), 30):
        value, proof = trie.get_with_proof(root, key)
        assert value == model[key]
        assert verify_mpt_proof(proof, root) == value


def test_non_existence_proofs_verify(trie_with_data):
    trie, root, _model, rng = trie_with_data
    for _ in range(10):
        ghost = rng.randbytes(20)
        value, proof = trie.get_with_proof(root, ghost)
        assert value is None
        assert verify_mpt_proof(proof, root) is None


def test_tampered_node_fails(trie_with_data):
    trie, root, model, rng = trie_with_data
    key = next(iter(model))
    _value, proof = trie.get_with_proof(root, key)
    nodes = list(proof.nodes)
    nodes[-1] = nodes[-1][:-1] + bytes([nodes[-1][-1] ^ 0xFF])
    with pytest.raises(VerificationError):
        verify_mpt_proof(MPTProof(key=key, nodes=nodes), root)


def test_truncated_proof_fails(trie_with_data):
    trie, root, model, _rng = trie_with_data
    key = next(iter(model))
    _value, proof = trie.get_with_proof(root, key)
    if len(proof.nodes) < 2:
        pytest.skip("proof too short to truncate")
    truncated = MPTProof(key=key, nodes=proof.nodes[:-1])
    with pytest.raises(VerificationError):
        verify_mpt_proof(truncated, root)


def test_wrong_root_fails(trie_with_data):
    trie, root, model, _rng = trie_with_data
    key = next(iter(model))
    _value, proof = trie.get_with_proof(root, key)
    with pytest.raises(VerificationError):
        verify_mpt_proof(proof, b"\x00" * 32)


def test_empty_trie_proof():
    proof = MPTProof(key=b"\x01" * 20, nodes=[])
    assert verify_mpt_proof(proof, None) is None


def test_proof_size_positive(trie_with_data):
    trie, root, model, _rng = trie_with_data
    key = next(iter(model))
    _value, proof = trie.get_with_proof(root, key)
    assert proof.size_bytes() > 32
