"""Crash-recovery tests (Section 4.3): manifest, replay, aborted merges."""

import os
import random

import pytest

from repro.common.params import ColeParams, SystemParams
from repro.core import Cole
from repro.core.manifest import load_manifest


def make_params(async_merge=False):
    system = SystemParams(addr_size=20, value_size=32)
    return ColeParams(
        system=system, mem_capacity=16, size_ratio=3, mht_fanout=4,
        async_merge=async_merge,
    )


def generate_log(seed=17, blocks=80, pool_size=24, puts_per_block=5):
    rng = random.Random(seed)
    pool = [rng.randbytes(20) for _ in range(pool_size)]
    log = []
    for blk in range(1, blocks + 1):
        ops = [(rng.choice(pool), rng.randbytes(32)) for _ in range(puts_per_block)]
        log.append((blk, ops))
    return log


def apply_log(cole, log, from_blk=0):
    for blk, ops in log:
        if blk <= from_blk:
            continue
        cole.begin_block(blk)
        for addr, value in ops:
            cole.put(addr, value)
        cole.commit_block()


@pytest.mark.parametrize("async_merge", [False, True], ids=["sync", "async"])
def test_replay_restores_root_digest(tmp_path, async_merge):
    params = make_params(async_merge)
    log = generate_log()

    reference = Cole(str(tmp_path / "ref"), params)
    apply_log(reference, log)
    expected = reference.root_digest()

    crashed = Cole(str(tmp_path / "crash"), params)
    apply_log(crashed, log)
    checkpoint = crashed._checkpoint_blk
    crashed.wait_for_merges()
    crashed.workspace.close()  # "crash": no clean shutdown bookkeeping

    recovered = Cole(str(tmp_path / "crash"), params)
    assert recovered._checkpoint_blk == checkpoint
    apply_log(recovered, log, from_blk=checkpoint)
    assert recovered.root_digest() == expected
    reference.close()
    recovered.close()


def test_recovery_discards_unknown_files(tmp_path):
    params = make_params()
    directory = str(tmp_path / "d")
    cole = Cole(directory, params)
    apply_log(cole, generate_log(blocks=40))
    cole.close()
    # Simulate a torn merge: stray files not named by the manifest.
    for name in ("L9_99999999.val", "L9_99999999.idx", "junk.tmp"):
        with open(os.path.join(directory, name), "wb") as handle:
            handle.write(b"garbage")
    recovered = Cole(directory, params)
    files = set(recovered.workspace.list_files())
    assert "L9_99999999.val" not in files
    assert "junk.tmp" not in files
    recovered.close()


def test_manifest_round_trip(tmp_path):
    params = make_params()
    directory = str(tmp_path / "m")
    cole = Cole(directory, params)
    apply_log(cole, generate_log(blocks=60))
    runs_before = sorted(
        run.name for level in cole.levels for run in level.all_runs()
    )
    cole.close()
    manifest = load_manifest(directory)
    named = sorted(
        record.name
        for groups in manifest.levels.values()
        for records in groups.values()
        for record in records
    )
    assert named == runs_before


def test_recovered_instance_serves_reads(tmp_path):
    params = make_params()
    directory = str(tmp_path / "r")
    log = generate_log(blocks=60)
    cole = Cole(directory, params)
    apply_log(cole, log)
    checkpoint = cole._checkpoint_blk
    cole.close()

    recovered = Cole(directory, params)
    apply_log(recovered, log, from_blk=checkpoint)
    model = {}
    for blk, ops in log:
        for addr, value in ops:
            model[addr] = value
    for addr, value in model.items():
        assert recovered.get(addr) == value
    recovered.close()


def test_async_recovery_restarts_aborted_merges(tmp_path):
    params = make_params(async_merge=True)
    directory = str(tmp_path / "a")
    log = generate_log(blocks=120, pool_size=48)
    cole = Cole(directory, params)
    apply_log(cole, log)
    has_merging = any(level.merging.runs for level in cole.levels)
    cole.wait_for_merges()
    cole.workspace.close()

    recovered = Cole(directory, params)
    if has_merging:
        assert any(
            level.pending is not None or not level.merging.runs
            for level in recovered.levels
        )
    recovered.wait_for_merges()
    recovered.close()


def test_empty_directory_recovers_to_empty_state(tmp_path):
    params = make_params()
    cole = Cole(str(tmp_path / "fresh"), params)
    assert cole.num_disk_levels() == 0
    assert cole.get(b"\x00" * 20) is None
    cole.close()
