"""Unit and property tests for the Merkle Patricia Trie."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.kvstore import LSMStore
from repro.mpt import MPTrie


@pytest.fixture
def store(tmp_path):
    instance = LSMStore(str(tmp_path / "kv"), memtable_capacity=512)
    yield instance
    instance.close()


def test_insert_and_get(store):
    trie = MPTrie(store)
    root = trie.put(None, b"\x01" * 20, b"one")
    root = trie.put(root, b"\x02" * 20, b"two")
    assert trie.get(root, b"\x01" * 20) == b"one"
    assert trie.get(root, b"\x02" * 20) == b"two"
    assert trie.get(root, b"\x03" * 20) is None


def test_empty_root_get(store):
    trie = MPTrie(store)
    assert trie.get(None, b"\x01" * 20) is None


def test_overwrite_value(store):
    trie = MPTrie(store)
    key = b"\xaa" * 20
    root = trie.put(None, key, b"v1")
    root = trie.put(root, key, b"v2")
    assert trie.get(root, key) == b"v2"


def test_shared_prefix_split(store):
    trie = MPTrie(store)
    a = b"\x12\x34" + b"\x00" * 18
    b = b"\x12\x35" + b"\x00" * 18
    root = trie.put(None, a, b"A")
    root = trie.put(root, b, b"B")
    assert trie.get(root, a) == b"A"
    assert trie.get(root, b) == b"B"


def test_root_is_deterministic(store, tmp_path):
    keys = [bytes([i]) * 20 for i in range(40)]
    trie1 = MPTrie(store)
    root1 = None
    for key in keys:
        root1 = trie1.put(root1, key, key[:4])
    other_store = LSMStore(str(tmp_path / "kv2"), memtable_capacity=512)
    trie2 = MPTrie(other_store)
    root2 = None
    for key in reversed(keys):
        root2 = trie2.put(root2, key, key[:4])
    assert root1 == root2  # trie roots are insertion-order independent
    other_store.close()


def test_persistent_mode_keeps_history(store):
    trie = MPTrie(store, persistent=True)
    key = b"\x42" * 20
    root1 = trie.put(None, key, b"old")
    root2 = trie.put(root1, key, b"new")
    assert trie.get(root1, key) == b"old"
    assert trie.get(root2, key) == b"new"


def test_transient_mode_discards_history(store):
    trie = MPTrie(store, persistent=False)
    key = b"\x42" * 20
    root1 = trie.put(None, key, b"old")
    root2 = trie.put(root1, key, b"new")
    assert trie.get(root2, key) == b"new"
    # The old leaf was deleted from the store.
    from repro.common.errors import IntegrityError

    with pytest.raises(IntegrityError):
        trie.get(root1, key)


def test_transient_mode_uses_less_storage(tmp_path):
    def run(persistent):
        store = LSMStore(str(tmp_path / f"kv-{persistent}"), memtable_capacity=128)
        trie = MPTrie(store, persistent=persistent)
        rng = random.Random(5)
        keys = [rng.randbytes(20) for _ in range(30)]
        root = None
        for _ in range(15):
            for key in keys:
                root = trie.put(root, key, rng.randbytes(32))
        store.flush()
        size = store.storage_bytes()
        store.close()
        return size

    assert run(False) < run(True)


def test_depth_reported(store):
    trie = MPTrie(store)
    rng = random.Random(6)
    root = None
    keys = [rng.randbytes(20) for _ in range(100)]
    for key in keys:
        root = trie.put(root, key, b"v")
    depths = [trie.depth(root, key) for key in keys[:10]]
    assert all(depth >= 2 for depth in depths)


def test_large_trie_matches_dict(store):
    trie = MPTrie(store)
    rng = random.Random(8)
    model = {}
    root = None
    for _ in range(1500):
        key = rng.randbytes(20)
        value = rng.randbytes(16)
        root = trie.put(root, key, value)
        model[key] = value
    for key in rng.sample(list(model), 150):
        assert trie.get(root, key) == model[key]


@settings(max_examples=25, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=4, max_size=4), st.binary(min_size=1, max_size=8),
        min_size=1, max_size=60,
    )
)
def test_trie_matches_dict_property(tmp_path_factory, mapping):
    store = LSMStore(str(tmp_path_factory.mktemp("mptprop")), memtable_capacity=4096)
    try:
        trie = MPTrie(store)
        root = None
        for key, value in mapping.items():
            root = trie.put(root, key, value)
        for key, value in mapping.items():
            assert trie.get(root, key) == value
    finally:
        store.close()
