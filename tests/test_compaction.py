"""The pluggable compaction policy (leveling vs tiering).

The leveling policy must be *byte-identical* to the engine's historical
behavior — three pinned root digests (sync, async, sharded) regression-pin
it.  Tiering may lay files out differently but must serve identical
content, merge strictly less under under-full flushes, keep read fanout
bounded, and refuse to reopen a workspace committed under the other
policy.
"""

import hashlib
import os

import pytest

from repro.common.errors import StorageError
from repro.common.params import ColeParams, ShardParams, SystemParams
from repro.core import COMPACTION_POLICIES, Cole, make_policy
from repro.core.compaction import TIERING_FANOUT_FACTOR
from repro.core.manifest import MANIFEST_NAME, load_manifest
from repro.sharding import ShardedCole

SYSTEM = SystemParams(addr_size=20, value_size=24)
PARAMS = ColeParams(system=SYSTEM, mem_capacity=64, size_ratio=4)


def addr(i: int) -> bytes:
    return hashlib.sha256(f"pin-{i}".encode()).digest()[:20]


def value(i: int, b: int) -> bytes:
    return hashlib.sha256(f"val-{i}-{b}".encode()).digest()[:24]


# =============================================================================
# leveling is byte-identical to the historical cascade
# =============================================================================

# Root digests captured from the engine *before* the policy extraction:
# 60 blocks x 40 puts over 300 addresses, then an under-full block 61
# force-cascaded (the sharded/coordinated path).  The leveling policy
# must reproduce them bit for bit — these pins are the proof that the
# refactor moved the trigger without changing it.
PINNED_ROOTS = {
    "sync": "7bf7bcebeb7edff0e5fe9b10fbf99d61f643713d85ac86530b51fd19bc6a108c",
    "async": "3d4eabf80480fa4edf111447f52a6520f07a0044eef10d7de884d0f3d40b43e3",
    "sharded": "a6948235ffe6641fa795003204342f59367963d4b5ad3668b0018727e171454c",
}


def drive_pinned(engine) -> str:
    n = 0
    for blk in range(1, 61):
        engine.begin_block(blk)
        for _ in range(40):
            engine.put(addr(n % 300), value(n % 300, blk))
            n += 1
        engine.commit_block()
    engine.begin_block(61)
    for i in range(7):
        engine.put(addr(1000 + i), value(1000 + i, 61))
    if hasattr(engine, "shards"):
        engine.commit_block()  # coordinated commits always force-cascade
    else:
        engine.commit_block(force_cascade=True)
    engine.wait_for_merges()
    final = engine.root_digest()
    engine.close()
    return final.hex()


def test_leveling_pinned_root_sync(tmp_path):
    assert drive_pinned(Cole(str(tmp_path), PARAMS)) == PINNED_ROOTS["sync"]


def test_leveling_pinned_root_async(tmp_path):
    assert (
        drive_pinned(Cole(str(tmp_path), PARAMS.with_async()))
        == PINNED_ROOTS["async"]
    )


def test_leveling_pinned_root_sharded(tmp_path):
    engine = ShardedCole(
        str(tmp_path), ShardParams(cole=PARAMS.with_async(), num_shards=2)
    )
    assert drive_pinned(engine) == PINNED_ROOTS["sharded"]


# =============================================================================
# the policy objects themselves
# =============================================================================

def test_policy_registry():
    assert set(COMPACTION_POLICIES) == {"leveling", "tiering"}
    for name in COMPACTION_POLICIES:
        assert make_policy(name).name == name
    with pytest.raises(StorageError):
        make_policy("lazy")


def test_params_validate_compaction():
    assert ColeParams(compaction="tiering").compaction == "tiering"
    assert PARAMS.with_compaction("tiering").compaction == "tiering"
    with pytest.raises(ValueError):
        ColeParams(compaction="bogus")


# =============================================================================
# tiering: identical content, fewer rewritten bytes, bounded fanout
# =============================================================================

def drive_underfull(engine, blocks: int = 60, per_block: int = 13) -> dict:
    """Force a cascade every block so under-full runs reach the levels —
    the regime where leveling and tiering genuinely diverge."""
    model = {}
    n = 0
    for blk in range(1, blocks + 1):
        writes = {}
        for _ in range(per_block):
            a = addr(n % 200)
            writes[a] = value(n % 200, blk)
            n += 1
        engine.begin_block(blk)
        engine.put_many(sorted(writes.items()))
        engine.commit_block(force_cascade=True)
        model.update(writes)
    engine.wait_for_merges()
    return model


def test_tiering_same_content_fewer_merge_bytes(tmp_path):
    outcomes = {}
    for policy in ("leveling", "tiering"):
        engine = Cole(
            str(tmp_path / policy), PARAMS.with_compaction(policy)
        )
        model = drive_underfull(engine)
        for a, expected in model.items():
            assert engine.get(a) == expected, (policy, a.hex())
        outcomes[policy] = engine.compaction_stats()
        engine.close()
    leveling, tiering = outcomes["leveling"], outcomes["tiering"]
    # Same put stream -> same flush volume; the policies only differ in
    # what they *re*-write.
    assert tiering["bytes_flushed"] == leveling["bytes_flushed"]
    assert tiering["bytes_rewritten"] < leveling["bytes_rewritten"]
    assert tiering["write_amp"] < leveling["write_amp"]
    assert tiering["policy"] == "tiering"
    assert leveling["policy"] == "leveling"


def test_tiering_fanout_stays_bounded(tmp_path):
    # Tiny forced flushes pile runs into L1 far below its entry
    # capacity; the fanout cap must trigger a merge before a group
    # grows past TIERING_FANOUT_FACTOR * T runs.
    params = ColeParams(
        system=SYSTEM, mem_capacity=64, size_ratio=2, compaction="tiering"
    )
    engine = Cole(str(tmp_path), params)
    cap = TIERING_FANOUT_FACTOR * params.size_ratio
    max_runs = 0
    n = 0
    for blk in range(1, 81):
        engine.begin_block(blk)
        for _ in range(4):
            engine.put(addr(n), value(n, blk))
            n += 1
        engine.commit_block(force_cascade=True)
        if engine.levels:
            max_runs = max(max_runs, len(engine.levels[0].writing))
    engine.close()
    assert max_runs <= cap
    # The cap must actually have been the trigger: the workload keeps
    # entries below L1's capacity, so without the cap runs would pile up
    # unboundedly.
    assert max_runs >= cap - 1


# =============================================================================
# the policy is a durable property of the workspace
# =============================================================================

def seed_workspace(directory: str, compaction: str = "leveling") -> str:
    engine = Cole(directory, PARAMS.with_compaction(compaction))
    n = 0
    for blk in range(1, 9):
        engine.begin_block(blk)
        for _ in range(40):
            engine.put(addr(n), value(n, blk))
            n += 1
        engine.commit_block()
    engine.wait_for_merges()
    root = engine.root_digest().hex()
    engine.close()
    return root


def test_reopen_with_other_policy_fails(tmp_path):
    directory = str(tmp_path)
    seed_workspace(directory, "leveling")
    with pytest.raises(StorageError, match="compaction='leveling'"):
        Cole(directory, PARAMS.with_compaction("tiering"))
    # The recorded policy still opens fine.
    Cole(directory, PARAMS).close()


def test_legacy_manifest_defaults_to_leveling(tmp_path):
    import json

    directory = str(tmp_path)
    seed_workspace(directory, "leveling")
    # Strip the policy field, as a manifest written before this release
    # would look: committed runs + no recorded policy == leveling.
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    for key in ("compaction", "bytes_flushed", "bytes_rewritten"):
        payload.pop(key, None)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    with pytest.raises(StorageError):
        Cole(directory, PARAMS.with_compaction("tiering"))
    engine = Cole(directory, PARAMS)
    assert engine.compaction_stats()["policy"] == "leveling"
    engine.close()


def test_counters_persist_across_reopen(tmp_path):
    directory = str(tmp_path)
    engine = Cole(directory, PARAMS)
    drive_underfull(engine, blocks=24)
    before = engine.compaction_stats()
    engine.close()
    assert before["bytes_flushed"] > 0
    assert before["bytes_rewritten"] > 0

    reopened = Cole(directory, PARAMS)
    after = reopened.compaction_stats()
    reopened.close()
    assert after["bytes_flushed"] == before["bytes_flushed"]
    assert after["bytes_rewritten"] == before["bytes_rewritten"]

    manifest = load_manifest(directory)
    assert manifest.compaction == "leveling"
    assert manifest.bytes_flushed == before["bytes_flushed"]
    assert manifest.bytes_rewritten == before["bytes_rewritten"]


def test_sharded_compaction_stats_aggregate(tmp_path):
    engine = ShardedCole(
        str(tmp_path),
        ShardParams(
            cole=PARAMS.with_async().with_compaction("tiering"), num_shards=2
        ),
    )
    n = 0
    for blk in range(1, 25):
        batch = {}
        for _ in range(40):
            batch[addr(n)] = value(n, blk)
            n += 1
        engine.begin_block(blk)
        engine.put_many(sorted(batch.items()))
        engine.commit_block()
    engine.wait_for_merges()
    stats = engine.compaction_stats()
    engine.close()
    assert stats["policy"] == "tiering"
    assert stats["bytes_flushed"] == sum(
        shard.compaction_stats()["bytes_flushed"] for shard in engine.shards
    )
    assert stats["levels"], "a workload this size must reach the disk levels"
