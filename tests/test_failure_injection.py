"""Failure injection: corrupted files, torn manifests, forged proofs.

Exercises the paths a production deployment cares about: every
authenticated structure must *detect* tampering, and recovery must
survive garbage in the workspace.
"""

import json
import os
import random

import pytest

from repro.common.errors import IntegrityError, StorageError, VerificationError
from repro.common.params import ColeParams, SystemParams
from repro.core import Cole, verify_provenance
from repro.core.proofs import RunNegativeItem, RunProofItem, StubItem


def make_params(async_merge=False):
    return ColeParams(
        system=SystemParams(addr_size=20, value_size=32),
        mem_capacity=16,
        size_ratio=3,
        async_merge=async_merge,
    )


def build_chain(directory, seed=13, blocks=70):
    rng = random.Random(seed)
    cole = Cole(directory, make_params())
    pool = [rng.randbytes(20) for _ in range(20)]
    for blk in range(1, blocks + 1):
        cole.begin_block(blk)
        for _ in range(5):
            cole.put(rng.choice(pool), rng.randbytes(32))
        cole.commit_block()
    return cole, pool


def test_corrupt_value_file_changes_read_results(tmp_path):
    directory = str(tmp_path / "c")
    cole, pool = build_chain(directory)
    run = cole.levels[-1].all_runs()[0]
    cole.workspace.close()
    # Flip bytes in the middle of the value file.
    path = os.path.join(directory, run.name + ".val")
    with open(path, "r+b") as handle:
        handle.seek(100)
        handle.write(b"\xff" * 64)
    reopened = Cole(directory, make_params())
    # The corruption must surface: either a read error or a provenance
    # proof that no longer matches the (pre-corruption) manifest root.
    tampered_detected = False
    for addr in pool:
        try:
            result = reopened.prov_query(addr, 1, 70)
            verify_provenance(result, reopened.root_digest(), addr_size=20)
            for item in result.proof.items:
                if isinstance(item, RunProofItem):
                    pass
        except (VerificationError, StorageError, IntegrityError, ValueError):
            tampered_detected = True
            break
    # Verification binds Hstate to current (corrupt) data, so the honest
    # check is against the run's *manifest* Merkle root:
    if not tampered_detected:
        corrupted_run = reopened.levels[-1].all_runs()[0]
        recomputed = corrupted_run.merkle_file.root()
        tampered_detected = recomputed != corrupted_run.merkle_root
    assert tampered_detected
    reopened.close()


def test_torn_manifest_falls_back_to_empty(tmp_path):
    directory = str(tmp_path / "torn")
    cole, _pool = build_chain(directory, blocks=30)
    cole.close()
    path = os.path.join(directory, "MANIFEST.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"checkpoint_blk": 5, "next_run_')  # torn write
    with pytest.raises(json.JSONDecodeError):
        Cole(directory, make_params())


def test_missing_run_file_detected_on_read(tmp_path):
    directory = str(tmp_path / "m")
    cole, pool = build_chain(directory)
    run = cole.levels[-1].all_runs()[0]
    cole.workspace.close()
    os.remove(os.path.join(directory, run.name + ".val"))
    # Reopen: the manifest still names the run; reads that reach it fail
    # loudly instead of returning wrong data.
    reopened = Cole(directory, make_params())
    with pytest.raises((StorageError, FileNotFoundError, IntegrityError)):
        for addr in pool:
            reopened.prov_query(addr, 1, 70)
    reopened.close()


def test_forged_negative_item_rejected(tmp_path):
    directory = str(tmp_path / "f")
    cole, pool = build_chain(directory)
    root = cole.root_digest()
    addr = pool[0]
    result = cole.prov_query(addr, 10, 60)
    # Replace a searched run item with a "bloom says absent" claim.
    for index, item in enumerate(result.proof.items):
        if isinstance(item, RunProofItem):
            from repro.bloomfilter import BloomFilter

            empty_bloom = BloomFilter(64, 3)
            result.proof.items[index] = RunNegativeItem(
                bloom_bytes=empty_bloom.to_bytes(),
                merkle_root=b"\x00" * 32,
            )
            with pytest.raises(VerificationError):
                verify_provenance(result, root, addr_size=20)
            break
    cole.close()


def test_forged_stub_hiding_results_rejected(tmp_path):
    directory = str(tmp_path / "s")
    cole, pool = build_chain(directory)
    root = cole.root_digest()
    addr = pool[1]
    result = cole.prov_query(addr, 10, 60)
    # Replace every searched item with a stub carrying a fake digest: the
    # reconstructed Hstate must not match.
    replaced = False
    for index, item in enumerate(result.proof.items):
        if not isinstance(item, StubItem):
            result.proof.items[index] = StubItem(digest=b"\x42" * 32)
            replaced = True
    assert replaced
    with pytest.raises(VerificationError):
        verify_provenance(result, root, addr_size=20)
    cole.close()


def test_bloom_tamper_changes_commitment(tmp_path):
    directory = str(tmp_path / "b")
    cole, _pool = build_chain(directory)
    run = cole.levels[-1].all_runs()[0]
    before = run.commitment()
    run.bloom.add(b"\x99" * 20)
    assert run.commitment() != before  # blooms are bound into Hstate (§4)
    cole.close()


def test_background_merge_failure_names_run_and_chains_cause(tmp_path, monkeypatch):
    """A crashed merge thread surfaces at the next checkpoint as a
    StorageError naming the run being built, chained to the root cause."""
    from repro.core.run import Run

    directory = str(tmp_path / "bg")
    cole = Cole(directory, make_params(async_merge=True))
    rng = random.Random(19)
    pool = [rng.randbytes(20) for _ in range(20)]

    def run_until(predicate, start_blk, max_blocks=200):
        for blk in range(start_blk, start_blk + max_blocks):
            cole.begin_block(blk)
            for _ in range(5):
                cole.put(rng.choice(pool), rng.randbytes(32))
            cole.commit_block()
            if predicate():
                return blk + 1
        raise AssertionError("workload never reached the wanted state")

    next_blk = run_until(lambda: cole.mem_pending is not None, 1)
    cole.wait_for_merges()

    original_build = Run.build
    monkeypatch.setattr(
        Run, "build", classmethod(lambda cls, *a, **k: (_ for _ in ()).throw(OSError("disk full")))
    )
    # Drive commits until a checkpoint waits on the poisoned background
    # build and surfaces it.
    with pytest.raises(StorageError) as excinfo:
        run_until(lambda: False, next_blk)
    message = str(excinfo.value)
    assert "L" in message and "failed" in message  # names the run
    assert isinstance(excinfo.value.__cause__, OSError)

    # The engine can quiesce once the fault clears.
    monkeypatch.setattr(Run, "build", original_build)
    if cole.mem_pending is not None and cole.mem_pending.error is not None:
        cole.mem_pending = None
    for level in cole.levels:
        if level.pending is not None and level.pending.error is not None:
            level.pending = None
    cole.close()


# =============================================================================
# WAL torn tails: every way a crash can mangle the log's end
# =============================================================================

def build_wal_store(directory, blocks=5, puts_per_block=10):
    """A served-store stand-in: engine + WAL fed the same put stream."""
    from repro.wal import WriteAheadLog

    cole = Cole(directory, make_params(async_merge=True))
    wal = WriteAheadLog(os.path.join(directory, "wal"))
    rng = random.Random(41)
    written = []
    for blk in range(1, blocks + 1):
        cole.begin_block(blk)
        for _ in range(puts_per_block):
            addr, value = rng.randbytes(20), rng.randbytes(32)
            cole.put(addr, value)
            wal.append_put(addr, value, blk)
            written.append((addr, blk, value))
        root = cole.commit_block()
        wal.append_commit(blk, root)
    wal.sync()
    return cole, wal, written


def recover_wal_store(directory):
    from repro.wal import WriteAheadLog, replay_wal

    cole = Cole(directory, make_params(async_merge=True))
    wal = WriteAheadLog(os.path.join(directory, "wal"))
    stats = replay_wal(cole, wal)
    return cole, wal, stats


def wal_segment_paths(directory):
    seg_dir = os.path.join(directory, "wal", "shard-00")
    return [os.path.join(seg_dir, name) for name in sorted(os.listdir(seg_dir))]


def test_wal_truncated_record_recovers_clean_prefix(tmp_path):
    directory = str(tmp_path / "walt")
    cole, wal, written = build_wal_store(directory)
    live_root = cole.root_digest()
    cole.workspace.close()
    wal.close()
    # Tear the last record: keep its header, lose the body's tail.
    [path] = wal_segment_paths(directory)
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 11)
    reopened, wal2, stats = recover_wal_store(directory)
    # The torn record was the last COMMIT marker; every put survived.
    for addr, blk, value in written:
        assert reopened.get_at(addr, blk) == value
    assert reopened.root_digest() == live_root
    wal2.close()
    reopened.close()


def test_wal_corrupted_checksum_recovers_clean_prefix(tmp_path):
    directory = str(tmp_path / "walc")
    cole, wal, written = build_wal_store(directory)
    cole.workspace.close()
    wal.close()
    # Flip a byte near the tail: the scan must stop at the corrupt
    # record and recovery must still restore the clean prefix before it.
    from repro.wal import scan_records

    [path] = wal_segment_paths(directory)
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    data[len(data) - 20] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    clean_prefix = scan_records(bytes(data))
    assert clean_prefix.anomaly == "bad checksum"
    reopened, wal2, stats = recover_wal_store(directory)
    # Every block before the corrupted tail record survives in full.
    last_blk = max(blk for _addr, blk, _value in written)
    for addr, blk, value in written:
        if blk < last_blk:
            assert reopened.get_at(addr, blk) == value
    wal2.close()
    reopened.close()


def test_wal_empty_segment_recovers_clean(tmp_path):
    directory = str(tmp_path / "wale")
    cole, wal, written = build_wal_store(directory)
    live_root = cole.root_digest()
    cole.workspace.close()
    wal.close()
    # A crash right after rotation leaves a zero-byte segment behind.
    seg_dir = os.path.join(directory, "wal", "shard-00")
    open(os.path.join(seg_dir, "seg-00000099.wal"), "wb").close()
    reopened, wal2, stats = recover_wal_store(directory)
    for addr, blk, value in written:
        assert reopened.get_at(addr, blk) == value
    assert reopened.root_digest() == live_root
    wal2.close()
    reopened.close()


def test_recovery_after_partial_run_files(tmp_path):
    directory = str(tmp_path / "p")
    cole, pool = build_chain(directory, blocks=40)
    cole.close()
    # A torn merge left one orphan file of a three-file run.
    with open(os.path.join(directory, "L2_77777777.idx"), "wb") as handle:
        handle.write(b"\x00" * 100)
    reopened = Cole(directory, make_params())
    assert "L2_77777777.idx" not in set(reopened.workspace.list_files())
    # And the store still serves reads.
    assert any(reopened.get(addr) is not None for addr in pool)
    reopened.close()
