"""Tests for the benchmark harness and (tiny) experiment drivers."""

import pytest

from repro.bench import ENGINES, fresh_dir, make_engine, run_chain
from repro.bench.harness import cleanup
from repro.bench.report import format_bytes, format_seconds, format_table
from repro.core import Cole
from repro.workloads import SmallBankWorkload


def test_engine_registry_complete():
    assert set(ENGINES) == {"mpt", "cole", "cole*", "cole-shard", "lipp", "cmi"}


@pytest.mark.parametrize("name", ["mpt", "cole", "cole*", "cole-shard", "lipp", "cmi"])
def test_make_engine(name):
    directory = fresh_dir()
    engine = make_engine(name, directory)
    try:
        engine.begin_block(1)
        engine.put(b"\x01" * 32, b"\x02" * 40)
        engine.commit_block()
        assert engine.get(b"\x01" * 32) == b"\x02" * 40
    finally:
        cleanup(engine, directory)


def test_cole_overrides_apply():
    directory = fresh_dir()
    engine = make_engine("cole*", directory, cole_overrides={"size_ratio": 7})
    try:
        assert isinstance(engine, Cole)
        assert engine.params.size_ratio == 7
        assert engine.params.async_merge
    finally:
        cleanup(engine, directory)


def test_sharded_overrides_apply():
    from repro.sharding import ShardedCole

    directory = fresh_dir()
    engine = make_engine(
        "cole-shard", directory, cole_overrides={"num_shards": 2, "size_ratio": 7}
    )
    try:
        assert isinstance(engine, ShardedCole)
        assert len(engine.shards) == 2
        assert engine.params.cole.size_ratio == 7
        assert engine.params.cole.async_merge
    finally:
        cleanup(engine, directory)


def test_run_chain_phases_share_height():
    directory = fresh_dir()
    engine = make_engine("cole", directory)
    try:
        workload = SmallBankWorkload(num_accounts=10, seed=1)
        setup, _metrics = run_chain(engine, workload.setup_transactions(), 5)
        first_height = setup.height
        _executor, metrics = run_chain(
            engine, workload.transactions(20), 5, executor=setup
        )
        assert setup.height == first_height + 4
        assert metrics.transactions == 20
    finally:
        cleanup(engine, directory)


def test_tiny_overall_experiment():
    from repro.bench.experiments import run_overall_performance

    rows = run_overall_performance(
        "smallbank", heights=(5,), engines=("cole",), num_accounts=10
    )
    assert len(rows) == 1
    assert rows[0]["storage_bytes"] >= 0  # tiny runs may stay in L0
    assert rows[0]["tps"] > 0


def test_tiny_latency_experiment():
    from repro.bench.experiments import run_latency

    rows = run_latency("smallbank", heights=(5,), engines=("cole",), num_accounts=10)
    assert rows[0]["tail_s"] >= rows[0]["median_s"]


def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")


def test_format_helpers():
    assert format_bytes(512) == "512.0B"
    assert format_bytes(2048) == "2.0KB"
    assert format_seconds(0.5e-3).endswith("us")
    assert format_seconds(5e-3).endswith("ms")
    assert format_seconds(2.0).endswith("s")
