"""Tests for COLE's read path (Algorithm 6): gets and historical gets."""

import pytest

from repro.common.params import ColeParams, SystemParams
from repro.core import Cole


@pytest.fixture
def params():
    system = SystemParams(addr_size=20, value_size=32)
    return ColeParams(system=system, mem_capacity=16, size_ratio=3, mht_fanout=4)


def build_history(cole, rng, blocks=60, pool_size=24, puts_per_block=5):
    pool = [rng.randbytes(20) for _ in range(pool_size)]
    model = {}
    history = {}
    for blk in range(1, blocks + 1):
        cole.begin_block(blk)
        for _ in range(puts_per_block):
            addr = rng.choice(pool)
            value = rng.randbytes(32)
            cole.put(addr, value)
            model[addr] = value
            versions = history.setdefault(addr, [])
            if versions and versions[-1][0] == blk:
                versions[-1] = (blk, value)
            else:
                versions.append((blk, value))
        cole.commit_block()
    return pool, model, history


def test_get_latest_values(workdir, params, rng):
    cole = Cole(workdir, params)
    pool, model, _history = build_history(cole, rng)
    for addr in pool:
        assert cole.get(addr) == model.get(addr)
    cole.close()


def test_get_missing_address(workdir, params, rng):
    cole = Cole(workdir, params)
    build_history(cole, rng)
    assert cole.get(rng.randbytes(20)) is None
    cole.close()


def test_get_from_memory_level_only(workdir, params, rng):
    cole = Cole(workdir, params)
    addr = rng.randbytes(20)
    cole.begin_block(1)
    cole.put(addr, b"\x09" * 32)
    assert cole.get(addr) == b"\x09" * 32  # before any flush
    cole.close()


def test_get_at_historical_blocks(workdir, params, rng):
    cole = Cole(workdir, params)
    _pool, _model, history = build_history(cole, rng)
    for addr, versions in list(history.items())[:8]:
        for blk, value in versions:
            assert cole.get_at(addr, blk) == value
    cole.close()


def test_get_at_between_versions_returns_previous(workdir, params, rng):
    cole = Cole(workdir, params)
    addr = rng.randbytes(20)
    for blk, tag in ((1, b"\x01"), (5, b"\x05"), (9, b"\x09")):
        cole.begin_block(blk)
        cole.put(addr, tag * 32)
        cole.commit_block()
    assert cole.get_at(addr, 3) == b"\x01" * 32
    assert cole.get_at(addr, 5) == b"\x05" * 32
    assert cole.get_at(addr, 8) == b"\x05" * 32
    assert cole.get_at(addr, 100) == b"\x09" * 32
    cole.close()


def test_get_at_before_first_version(workdir, params, rng):
    cole = Cole(workdir, params)
    addr = rng.randbytes(20)
    cole.begin_block(10)
    cole.put(addr, b"\x0a" * 32)
    cole.commit_block()
    assert cole.get_at(addr, 5) is None
    cole.close()


def test_newest_version_wins_across_levels(workdir, params, rng):
    cole = Cole(workdir, params)
    addr = rng.randbytes(20)
    filler = [rng.randbytes(20) for _ in range(32)]
    # Old version, pushed to disk by filler traffic.
    cole.begin_block(1)
    cole.put(addr, b"\x01" * 32)
    cole.commit_block()
    for blk in range(2, 20):
        cole.begin_block(blk)
        for f in filler[:5]:
            cole.put(f, rng.randbytes(32))
        cole.commit_block()
    # New version still in memory.
    cole.begin_block(20)
    cole.put(addr, b"\x02" * 32)
    cole.commit_block()
    assert cole.get(addr) == b"\x02" * 32
    cole.close()


def test_read_io_bounded_by_levels(workdir, params, rng):
    cole = Cole(workdir, params)
    pool, model, _history = build_history(cole, rng, blocks=80, pool_size=48)
    stats = cole.stats
    before = stats.snapshot()
    for addr in pool[:10]:
        cole.get(addr)
    reads = stats.delta(before).total_reads
    # Loose bound: T runs/level * (layers + value pages) * levels.
    assert reads < 10 * 40
    cole.close()
