"""Unit and property tests for the Merkle B+-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mbtree import MBTree


def build(entries, order=4):
    tree = MBTree(order=order, key_width=8)
    for key, value in entries:
        tree.insert(key, value)
    return tree


def test_empty_tree():
    tree = MBTree()
    assert len(tree) == 0
    assert tree.is_empty()
    assert tree.get(1) is None
    assert tree.floor_search(10) is None


def test_insert_and_get():
    tree = build([(5, b"five"), (1, b"one"), (9, b"nine")])
    assert tree.get(5) == b"five"
    assert tree.get(1) == b"one"
    assert tree.get(2) is None
    assert len(tree) == 3


def test_duplicate_insert_overwrites():
    tree = build([(5, b"old")])
    tree.insert(5, b"new")
    assert tree.get(5) == b"new"
    assert len(tree) == 1


def test_items_sorted():
    keys = random.Random(3).sample(range(10000), 500)
    tree = build([(k, str(k).encode()) for k in keys])
    assert [k for k, _ in tree.items()] == sorted(keys)


def test_floor_search_semantics():
    tree = build([(10, b"a"), (20, b"b"), (30, b"c")])
    assert tree.floor_search(5) is None
    assert tree.floor_search(10) == (10, b"a")
    assert tree.floor_search(25) == (20, b"b")
    assert tree.floor_search(99) == (30, b"c")


def test_range_items():
    tree = build([(i, bytes([i])) for i in range(0, 100, 10)])
    assert [k for k, _ in tree.range_items(15, 45)] == [20, 30, 40]


def test_root_hash_changes_on_insert():
    tree = build([(1, b"a")])
    before = tree.root_hash()
    tree.insert(2, b"b")
    assert tree.root_hash() != before


def test_root_hash_deterministic_for_same_insert_order():
    # B+-tree shape depends on insertion order (unlike a trie); blockchain
    # execution is deterministic, so equal insert order => equal root.
    entries = [(i, bytes([i % 250])) for i in range(200)]
    random.Random(5).shuffle(entries)
    assert build(entries).root_hash() == build(entries).root_hash()


def test_root_hash_depends_on_values():
    a = build([(1, b"x")])
    b = build([(1, b"y")])
    assert a.root_hash() != b.root_hash()


def test_clear():
    tree = build([(i, b"v") for i in range(50)])
    tree.clear()
    assert tree.is_empty()
    assert tree.get(3) is None


def test_order_must_be_at_least_three():
    with pytest.raises(ValueError):
        MBTree(order=2)


def test_large_tree_consistency():
    rng = random.Random(11)
    model = {}
    tree = MBTree(order=8, key_width=8)
    for _ in range(3000):
        key = rng.randrange(10**9)
        value = rng.randbytes(4)
        tree.insert(key, value)
        model[key] = value
    assert len(tree) == len(model)
    for key in rng.sample(list(model), 200):
        assert tree.get(key) == model[key]
    assert list(tree.items()) == sorted(model.items())


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=2**40),
        st.binary(min_size=1, max_size=8),
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=0, max_value=2**40),
)
def test_floor_search_matches_model(mapping, probe):
    tree = build(mapping.items(), order=5)
    expected_keys = [k for k in mapping if k <= probe]
    found = tree.floor_search(probe)
    if not expected_keys:
        assert found is None
    else:
        best = max(expected_keys)
        assert found == (best, mapping[best])
