"""The cursor subsystem: sorted-source cursors, the k-way merge, and
key-ordered range scans end-to-end on both engine shapes.

Scans are verified against a brute-force in-memory model of the full
write history (``addr -> {blk: value}``): for any address range, block
height, and limit, the model computes the exact live-version result the
engine must return, byte for byte — latest scans, historical ``at_blk``
scans, paging by limit + continuation, and the cross-shard merge.
"""

import random

import pytest

from repro.common.errors import StorageError
from repro.common.params import ColeParams, ShardParams, SystemParams
from repro.core import Cole, CompoundKey, MAX_BLK, addr_successor
from repro.core.cursor import ListCursor, MergingCursor, resolve_versions
from repro.core.run import Run
from repro.mbtree import MBTree
from repro.sharding import ShardedCole

ADDR = 8
VALUE = 16
PARAMS = ColeParams(
    system=SystemParams(addr_size=ADDR, value_size=VALUE),
    mem_capacity=32,
    size_ratio=2,
)


def key_of(addr: bytes, blk: int) -> int:
    return CompoundKey(addr=addr, blk=blk).to_int()


# =============================================================================
# cursor primitives
# =============================================================================

def test_list_cursor_seek_and_exhaustion():
    entries = [(k, bytes([k])) for k in (2, 5, 9)]
    cursor = ListCursor(entries)
    cursor.seek(5)
    assert cursor.next() == (5, b"\x05")
    assert cursor.next() == (9, b"\x09")
    assert cursor.next() is None
    cursor.seek(0)
    assert list(cursor) == entries
    cursor.seek(10)
    assert cursor.next() is None


def test_mbtree_iter_from_matches_items():
    tree = MBTree(order=4, key_width=8)
    rng = random.Random(5)
    keys = rng.sample(range(10_000), 300)
    for key in keys:
        tree.insert(key, key.to_bytes(4, "big"))
    ordered = list(tree.items())
    for probe in [0, 1, 4_999, 9_999, 10_001] + rng.sample(keys, 20):
        expect = [(k, v) for k, v in ordered if k >= probe]
        assert list(tree.iter_from(probe)) == expect
    assert list(MBTree(order=4, key_width=8).iter_from(0)) == []


def test_run_cursor_streams_from_seek(tmp_path, rng):
    from repro.diskio.workspace import Workspace

    ws = Workspace(str(tmp_path / "ws"), PARAMS.system.page_size)
    entries = sorted(
        (key_of(rng.randbytes(ADDR), blk), rng.randbytes(VALUE))
        for blk in range(4)
        for _ in range(60)
    )
    run = Run.build(ws, "L1_0", 1, iter(entries), len(entries), PARAMS)
    cursor = run.cursor()
    # Seek before, at, between, and after real keys.
    probes = [0, entries[0][0], entries[10][0], entries[10][0] + 1,
              entries[-1][0], entries[-1][0] + 1]
    for probe in probes:
        cursor.seek(probe)
        assert list(cursor) == [e for e in entries if e[0] >= probe]
    ws.close()


def test_merging_cursor_orders_and_dedups_newest_wins():
    older = ListCursor([(1, b"old1"), (3, b"old3"), (5, b"old5")])
    newer = ListCursor([(2, b"new2"), (3, b"new3")])
    merged = MergingCursor([newer, older])  # newest first
    merged.seek(0)
    assert list(merged) == [
        (1, b"old1"), (2, b"new2"), (3, b"new3"), (5, b"old5")
    ]
    # Re-seek resets the heap and the dedup watermark.
    merged.seek(3)
    assert list(merged) == [(3, b"new3"), (5, b"old5")]


def test_disk_level_cursor_merges_its_runs(tmp_path, rng):
    engine = Cole(str(tmp_path / "ws"), PARAMS)
    pool = [rng.randbytes(ADDR) for _ in range(64)]
    for blk in range(1, 10):
        engine.begin_block(blk)
        engine.put_many([(a, rng.randbytes(VALUE)) for a in pool])
        engine.commit_block()
    level = engine.levels[0]
    assert len(level.search_order()) >= 1
    cursor = level.cursor()
    cursor.seek(0)
    keys = [key for key, _v in cursor]
    assert keys == sorted(keys)
    assert len(keys) == sum(run.num_entries for run in level.search_order())
    engine.close()


def test_resolve_versions_picks_live_version_and_skips_unborn():
    a1, a2, a3 = (bytes([n]) * ADDR for n in (1, 2, 3))
    stream = [
        (key_of(a1, 2), b"a1@2"), (key_of(a1, 5), b"a1@5"),
        (key_of(a2, 7), b"a2@7"),
        (key_of(a3, 1), b"a3@1"), (key_of(a3, 9), b"a3@9"),
    ]
    high = key_of(a3, MAX_BLK)
    resolved = list(resolve_versions(
        iter(stream), at_blk=5, addr_size=ADDR, key_high=high))
    # a1: version 5 live; a2: unborn at 5; a3: version 1 live.
    assert resolved == [(a1, 5, b"a1@5"), (a3, 1, b"a3@1")]
    # key_high truncates mid-stream.
    resolved = list(resolve_versions(
        iter(stream), at_blk=MAX_BLK, addr_size=ADDR, key_high=key_of(a2, MAX_BLK)))
    assert resolved == [(a1, 5, b"a1@5"), (a2, 7, b"a2@7")]


def test_addr_successor():
    assert addr_successor(b"\x00\x00") == b"\x00\x01"
    assert addr_successor(b"\x00\xff") == b"\x01\x00"
    assert addr_successor(b"\xff\xff") is None


# =============================================================================
# engine scans vs a brute-force model
# =============================================================================

class History:
    """Brute-force model of every version ever written."""

    def __init__(self):
        self.versions = {}  # addr -> {blk: value}

    def put(self, addr, blk, value):
        self.versions.setdefault(addr, {})[blk] = value

    def scan(self, addr_low, addr_high, at_blk=MAX_BLK, limit=None):
        out = []
        for addr in sorted(self.versions):
            if not addr_low <= addr <= addr_high:
                continue
            live = [blk for blk in self.versions[addr] if blk <= at_blk]
            if not live:
                continue
            blk = max(live)
            out.append((addr, blk, self.versions[addr][blk]))
            if limit is not None and len(out) >= limit:
                break
        return out


def _load(engine, history, rng, blocks=40, puts_per_block=48, pool_size=120):
    pool = [rng.randbytes(ADDR) for _ in range(pool_size)]
    for blk in range(1, blocks + 1):
        batch = [(rng.choice(pool), rng.randbytes(VALUE)) for _ in range(puts_per_block)]
        engine.begin_block(blk)
        engine.put_many(batch)
        engine.commit_block()
        for addr, value in batch:
            history.put(addr, blk, value)
    return sorted(set(pool)), blk


def _assert_scan_parity(engine, history, addrs, top_blk, rng, trials=120):
    for _ in range(trials):
        i = rng.randrange(len(addrs))
        j = rng.randrange(i, len(addrs))
        low, high = addrs[i], addrs[j]
        at_blk = rng.randint(0, top_blk + 2)
        limit = rng.choice([None, 1, 2, 7, 10_000])
        assert engine.scan(low, high, at_blk=at_blk, limit=limit) == history.scan(
            low, high, at_blk, limit
        ), (low.hex(), high.hex(), at_blk, limit)
        assert engine.scan(low, high, limit=limit) == history.scan(
            low, high, limit=limit
        )


@pytest.mark.parametrize("async_merge", [False, True])
def test_cole_scan_matches_model(tmp_path, async_merge):
    rng = random.Random(11 + async_merge)
    engine = Cole(str(tmp_path / "ws"), PARAMS.with_async(async_merge))
    history = History()
    addrs, top = _load(engine, history, rng)
    try:
        _assert_scan_parity(engine, history, addrs, top, rng)
        # Full-range scan (no limit) over the whole address space.
        assert engine.scan(b"\x00" * ADDR, b"\xff" * ADDR) == history.scan(
            b"\x00" * ADDR, b"\xff" * ADDR
        )
        # Behind a merge cascade in flight the answers hold too.
        engine.wait_for_merges()
        _assert_scan_parity(engine, history, addrs, top, rng, trials=30)
    finally:
        engine.close()


@pytest.mark.parametrize("num_shards", [2, 4])
def test_sharded_scan_matches_model_globally_sorted(tmp_path, num_shards):
    rng = random.Random(23 + num_shards)
    engine = ShardedCole(
        str(tmp_path / "ws"), ShardParams(cole=PARAMS, num_shards=num_shards)
    )
    history = History()
    addrs, top = _load(engine, history, rng)
    try:
        _assert_scan_parity(engine, history, addrs, top, rng)
        # Limits force the adaptive per-shard paging + refill path: a
        # tight limit with many matching addresses makes every shard's
        # first page overshoot, a huge one forces refills.
        full = history.scan(addrs[0], addrs[-1])
        for limit in (1, 3, len(full) - 1, len(full), len(full) + 5):
            assert engine.scan(addrs[0], addrs[-1], limit=limit) == full[:limit]
    finally:
        engine.close()


def test_scan_continuation_paging_equals_one_shot(tmp_path):
    """Paging with limit + addr_successor reassembles the full scan —
    the primitive the server's continuation protocol rides."""
    rng = random.Random(31)
    engine = Cole(str(tmp_path / "ws"), PARAMS.with_async(True))
    history = History()
    addrs, _top = _load(engine, history, rng, blocks=20)
    try:
        low, high = b"\x00" * ADDR, b"\xff" * ADDR
        paged = []
        cursor = low
        while True:
            page = engine.scan(cursor, high, limit=7)
            paged.extend(page)
            if len(page) < 7:
                break
            cursor = addr_successor(page[-1][0])
            if cursor is None:
                break
        assert paged == engine.scan(low, high)
    finally:
        engine.close()


def test_scan_validates_arguments(tmp_path):
    engine = Cole(str(tmp_path / "ws"), PARAMS)
    try:
        with pytest.raises(StorageError):
            engine.scan(b"\x01" * (ADDR - 1), b"\xff" * ADDR)
        with pytest.raises(StorageError):
            engine.scan(b"\x02" * ADDR, b"\x01" * ADDR)  # inverted range
        with pytest.raises(StorageError):
            engine.scan(b"\x00" * ADDR, b"\xff" * ADDR, at_blk=-1)
        assert engine.scan(b"\x00" * ADDR, b"\xff" * ADDR, limit=0) == []
        assert engine.scan(b"\x00" * ADDR, b"\xff" * ADDR) == []  # empty store
    finally:
        engine.close()


def test_scan_sees_only_committed_heights_midstream(tmp_path):
    """An at_blk scan over committed history is immune to later writes."""
    engine = Cole(str(tmp_path / "ws"), PARAMS.with_async(True))
    addr = b"\x42" * ADDR
    try:
        for blk in (1, 2, 3):
            engine.begin_block(blk)
            engine.put(addr, bytes([blk]) * VALUE)
            engine.commit_block()
        frozen = engine.scan(addr, addr, at_blk=2)
        assert frozen == [(addr, 2, b"\x02" * VALUE)]
        engine.begin_block(9)
        engine.put(addr, b"\x09" * VALUE)
        engine.commit_block()
        assert engine.scan(addr, addr, at_blk=2) == frozen
        assert engine.scan(addr, addr) == [(addr, 9, b"\x09" * VALUE)]
    finally:
        engine.close()


def test_get_and_get_at_ride_the_same_sources(tmp_path):
    """The refactored point lookups answer exactly as the scan layer
    (both traverse ``_read_sources``)."""
    rng = random.Random(47)
    engine = Cole(str(tmp_path / "ws"), PARAMS.with_async(True))
    history = History()
    addrs, top = _load(engine, history, rng, blocks=25)
    try:
        for addr in rng.sample(addrs, 40):
            latest = history.scan(addr, addr)
            got = engine.get(addr)
            assert got == (latest[0][2] if latest else None)
            blk = rng.randint(0, top)
            at = history.scan(addr, addr, at_blk=blk)
            assert engine.get_at(addr, blk) == (at[0][2] if at else None)
    finally:
        engine.close()
