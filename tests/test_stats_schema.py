"""STATS payload schema across server roles.

The STATS blob is the operator- and tooling-facing contract: the
``repro query`` CLI, the CI regression gate, and dashboards all parse
it.  These tests pin the schema per role — primary with and without a
WAL, replica, sharded vs single-engine — so a section silently
disappearing or changing type fails loudly here rather than in a
consumer.
"""

import asyncio
import os

from repro.common.params import ColeParams, ShardParams, SystemParams
from repro.core import Cole
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.sharding import ShardedCole
from repro.wal import WriteAheadLog

ADDR = 20
VALUE = 24
PARAMS = ColeParams(
    system=SystemParams(addr_size=ADDR, value_size=VALUE),
    mem_capacity=64,
    size_ratio=2,
    async_merge=True,
)


def addr_of(n: int) -> bytes:
    return n.to_bytes(4, "big") * 5


def value_of(n: int) -> bytes:
    return n.to_bytes(4, "big") * 6


async def loaded_stats(host, port, writes=24):
    """Drive a little of everything, then fetch STATS."""
    async with ServerClient(host, port) as client:
        for n in range(writes):
            await client.put(addr_of(n), value_of(n))
        await client.flush()
        await client.get(addr_of(0))
        await client.get(addr_of(0))       # read-cache hit
        await client.get(addr_of(10_000))  # negative
        await client.scan(addr_of(0), addr_of(writes), limit=5)
        await client.multi_get([addr_of(0), addr_of(1)])
        return await client.stats()


HIST_SUMMARY_KEYS = {"count", "sum", "avg", "min", "max", "p50", "p99"}


def assert_core_schema(stats: dict) -> None:
    """Sections every role serves, with types."""
    assert isinstance(stats["ops"], dict)
    for op in (
        "put", "get", "get_at", "prov", "root", "stats", "flush",
        "repl", "scan", "multi_get", "multi_put", "metrics",
    ):
        assert isinstance(stats["ops"][op], int), op
    assert isinstance(stats["connections_total"], int)
    assert isinstance(stats["version"], int)
    assert isinstance(stats["committed_height"], int)
    assert isinstance(stats["open_height"], int)
    assert isinstance(stats["buffered_puts"], int)
    assert isinstance(stats["overlay_hits"], int)

    for cache_key in ("cache", "negative_cache"):
        cache = stats[cache_key]
        for field in ("hits", "misses", "lookups", "entries", "capacity"):
            assert isinstance(cache[field], int), (cache_key, field)
        assert isinstance(cache["hit_rate"], float)
        assert cache["lookups"] == cache["hits"] + cache["misses"]

    engine = stats["engine"]
    assert isinstance(engine["puts_total"], int)
    assert isinstance(engine["storage_bytes"], int)
    assert isinstance(engine["disk_levels"], int)
    assert isinstance(engine["shards"], int)
    assert isinstance(engine["workspace"], str) and engine["workspace"]

    compaction = engine["compaction"]
    assert compaction["policy"] in ("leveling", "tiering")
    assert isinstance(compaction["bytes_flushed"], int)
    assert isinstance(compaction["bytes_rewritten"], int)
    assert isinstance(compaction["write_amp"], (int, float))
    # STATS travels as JSON, so level keys arrive as strings.
    assert isinstance(compaction["levels"], dict)
    for row in compaction["levels"].values():
        assert set(row) >= {"runs", "entries", "bytes", "bytes_rewritten"}

    latency = stats["latency"]
    assert isinstance(latency["op"], dict)
    assert isinstance(latency["merge"], dict)
    for summary in latency["op"].values():
        assert set(summary) == HIST_SUMMARY_KEYS

    io = stats["io"]
    assert isinstance(io["page_reads"], int)
    assert isinstance(io["page_writes"], int)
    assert isinstance(io["page_cache"], dict)


def assert_primary_schema(stats: dict) -> None:
    batcher = stats["batcher"]
    for field in (
        "commits", "batched_puts", "size_flushes", "timer_flushes",
        "forced_flushes", "multi_put_batches",
    ):
        assert isinstance(batcher[field], int), field
    assert isinstance(batcher["avg_batch"], float)
    # A loaded primary has recorded per-op service latency.
    ops_seen = stats["latency"]["op"]
    for op in ("put", "get", "scan", "multi_get"):
        assert ops_seen[op]["count"] > 0, op
    assert stats["latency"]["commit_flush"]["count"] > 0
    assert stats["latency"]["commit_batch_size"]["count"] > 0


# =============================================================================
# roles
# =============================================================================

def test_stats_schema_primary_without_wal(tmp_path):
    engine = Cole(str(tmp_path / "ws"), PARAMS)
    with ServerThread(engine, config=ServerConfig(batch_max_puts=8)) as thread:
        stats = asyncio.run(loaded_stats(*thread.start()))
    engine.close()
    assert_core_schema(stats)
    assert_primary_schema(stats)
    assert "wal" not in stats
    assert "replication" not in stats
    assert stats["engine"]["shards"] == 1
    assert "wal_fsync" not in stats["latency"]


def test_stats_schema_primary_with_wal(tmp_path):
    directory = str(tmp_path / "ws")
    engine = Cole(directory, PARAMS)
    wal = WriteAheadLog(os.path.join(directory, "wal"))
    with ServerThread(
        engine, config=ServerConfig(batch_max_puts=8), wal=wal
    ) as thread:
        stats = asyncio.run(loaded_stats(*thread.start()))
    engine.close()
    assert_core_schema(stats)
    assert_primary_schema(stats)
    wal_stats = stats["wal"]
    assert isinstance(wal_stats["directory"], str) and wal_stats["directory"]
    for field in ("records_appended", "bytes_appended", "syncs"):
        assert isinstance(wal_stats[field], int), field
    assert wal_stats["records_appended"] > 0
    # Durable acks mean fsync latency was recorded.
    assert stats["latency"]["wal_fsync"]["count"] > 0
    # A WAL'd standalone primary still reports replication (hub side).
    assert stats["replication"]["role"] == "primary"


def test_stats_schema_sharded(tmp_path):
    engine = ShardedCole(
        str(tmp_path / "ws"), ShardParams(cole=PARAMS, num_shards=2)
    )
    with ServerThread(engine, config=ServerConfig(batch_max_puts=8)) as thread:
        stats = asyncio.run(loaded_stats(*thread.start()))
    engine.close()
    assert_core_schema(stats)
    assert_primary_schema(stats)
    assert stats["engine"]["shards"] == 2


def test_stats_schema_replica(tmp_path):
    primary_dir = str(tmp_path / "primary")
    primary_engine = Cole(primary_dir, PARAMS)
    wal = WriteAheadLog(os.path.join(primary_dir, "wal"))
    replica_engine = Cole(str(tmp_path / "replica"), PARAMS)
    with ServerThread(
        primary_engine,
        config=ServerConfig(batch_max_puts=8, batch_max_delay=0.01),
        wal=wal,
    ) as primary:
        phost, pport = primary.start()
        with ServerThread(replica_engine, replica_of=(phost, pport)) as rt:
            rhost, rport = rt.start()

            async def scenario():
                async with ServerClient(phost, pport) as pc, \
                        ServerClient(rhost, rport) as rc:
                    for n in range(16):
                        await pc.put(addr_of(n), value_of(n))
                    info = await pc.flush()
                    deadline = asyncio.get_running_loop().time() + 10.0
                    while True:
                        rinfo = await rc.root()
                        if rinfo.height >= info.height:
                            break
                        assert (
                            asyncio.get_running_loop().time() < deadline
                        ), "replica never caught up"
                        await asyncio.sleep(0.02)
                    await rc.get(addr_of(0))
                    return await rc.stats()

            stats = asyncio.run(scenario())
    primary_engine.close()
    replica_engine.close()
    assert_core_schema(stats)
    # No batcher on a replica — committed == open height.
    assert "batcher" not in stats
    assert stats["open_height"] == stats["committed_height"]
    replication = stats["replication"]
    assert replication["role"] == "replica"
    assert isinstance(replication["connected"], bool)
    assert replication["diverged"] is False
    for field in (
        "applied_height", "primary_height", "lag_blocks",
        "stream_offset", "batches_applied", "subscribes",
    ):
        assert isinstance(replication[field], int), field
    assert replication["batches_applied"] > 0
    # Applying streamed batches recorded apply latency.
    assert stats["latency"]["replica_apply"]["count"] > 0
