"""Tests for the sharding layer: routing, composite Hstate, equivalence
with the unsharded engine, proof verification, and per-shard recovery."""

import random

import pytest

from repro.chain import BlockExecutor
from repro.chain.contracts import (
    ExecutionContext,
    KVStoreContract,
    SmallBankContract,
)
from repro.common.errors import VerificationError
from repro.common.params import ColeParams, ShardParams, SystemParams
from repro.core import Cole, verify_provenance
from repro.sharding import (
    ShardedCole,
    shard_of,
    verify_sharded_provenance,
)
from repro.workloads import Mix, SmallBankWorkload, YCSBWorkload

ADDR_SIZE = 32
CONTEXT = ExecutionContext(addr_size=ADDR_SIZE, value_size=40)
SYSTEM = SystemParams(addr_size=ADDR_SIZE, value_size=40)
COLE_PARAMS = ColeParams(system=SYSTEM, mem_capacity=32, size_ratio=3, async_merge=True)


def make_sharded(path, num_shards=4, params=COLE_PARAMS):
    return ShardedCole(str(path), ShardParams(cole=params, num_shards=num_shards))


def put_stream(seed=41, blocks=100, pool_size=64, puts_per_block=8):
    """A deterministic (blk, [(addr, value), ...]) stream."""
    rng = random.Random(seed)
    pool = [rng.randbytes(ADDR_SIZE) for _ in range(pool_size)]
    return [
        (blk, [(rng.choice(pool), rng.randbytes(40)) for _ in range(puts_per_block)])
        for blk in range(1, blocks + 1)
    ], pool


def apply_stream(engine, log, from_blk=0, replay=False):
    for blk, batch in log:
        if blk <= from_blk:
            continue
        engine.begin_block(blk)
        if replay:
            for addr, value in batch:
                engine.replay_put(addr, value)
        else:
            engine.put_many(batch)
        engine.commit_block()


# =============================================================================
# routing
# =============================================================================

def test_routing_deterministic_and_covers_all_shards(rng):
    addrs = [rng.randbytes(ADDR_SIZE) for _ in range(2000)]
    routes = [shard_of(addr, 4) for addr in addrs]
    assert routes == [shard_of(addr, 4) for addr in addrs]  # stable
    assert set(routes) == {0, 1, 2, 3}  # every shard gets traffic
    counts = [routes.count(index) for index in range(4)]
    assert min(counts) > len(addrs) // 8  # no pathological imbalance
    assert all(shard_of(addr, 1) == 0 for addr in addrs[:16])
    with pytest.raises(ValueError):
        shard_of(addrs[0], 0)


def test_every_put_lands_on_its_routed_shard(tmp_path):
    engine = make_sharded(tmp_path / "route")
    log, pool = put_stream(blocks=30)
    try:
        apply_stream(engine, log)
        for addr in pool:
            owner = shard_of(addr, 4)
            for index, shard in enumerate(engine.shards):
                value = shard.get(addr)
                if index == owner:
                    assert value == engine.get(addr)
                else:
                    assert value is None
    finally:
        engine.close()


# =============================================================================
# composite Hstate
# =============================================================================

def test_composite_root_deterministic_across_nodes(tmp_path):
    log, _pool = put_stream()
    node_a = make_sharded(tmp_path / "a")
    node_b = make_sharded(tmp_path / "b")
    try:
        apply_stream(node_a, log)
        apply_stream(node_b, log)
        assert node_a.root_digest() == node_b.root_digest()
        assert node_a.shard_roots() == node_b.shard_roots()
    finally:
        node_a.close()
        node_b.close()


def test_composite_root_is_ordered_hash_of_shard_roots(tmp_path):
    from repro.common.hashing import hash_concat

    engine = make_sharded(tmp_path / "c")
    log, _pool = put_stream(blocks=40)
    try:
        apply_stream(engine, log)
        assert engine.root_digest() == hash_concat(engine.shard_roots())
        assert len(engine.shard_roots()) == 4
    finally:
        engine.close()


def test_put_many_equivalent_to_single_puts(tmp_path):
    log, _pool = put_stream(blocks=60)
    batched = make_sharded(tmp_path / "batched")
    single = make_sharded(tmp_path / "single")
    try:
        apply_stream(batched, log)
        for blk, batch in log:
            single.begin_block(blk)
            for addr, value in batch:
                single.put(addr, value)
            single.commit_block()
        assert batched.root_digest() == single.root_digest()
        assert batched.puts_total == single.puts_total
    finally:
        batched.close()
        single.close()


# =============================================================================
# equivalence with the unsharded engine (SmallBank + YCSB)
# =============================================================================

def run_workload(engine, *phases):
    executor = BlockExecutor(engine, CONTEXT, txs_per_block=10)
    for transactions in phases:
        executor.run(transactions)
    return executor


def test_smallbank_matches_unsharded(tmp_path):
    workload = SmallBankWorkload(num_accounts=24, seed=43)
    contract = SmallBankContract(CONTEXT)
    sharded = make_sharded(tmp_path / "shards")
    unsharded = Cole(str(tmp_path / "one"), COLE_PARAMS)
    try:
        for engine in (sharded, unsharded):
            run_workload(
                engine,
                list(workload.setup_transactions()),
                list(workload.transactions(500)),
            )
        for index in range(24):
            expected = contract.execute(unsharded, "get_balance", (f"acct{index}",))
            assert contract.execute(sharded, "get_balance", (f"acct{index}",)) == expected
    finally:
        sharded.close()
        unsharded.close()


def test_ycsb_matches_unsharded_with_verifying_proofs(tmp_path):
    workload = YCSBWorkload(num_keys=32, seed=44)
    contract = KVStoreContract(CONTEXT)
    sharded = make_sharded(tmp_path / "shards")
    unsharded = Cole(str(tmp_path / "one"), COLE_PARAMS)
    try:
        for engine in (sharded, unsharded):
            run_workload(
                engine,
                list(workload.load_transactions()),
                list(workload.run_transactions(400, Mix.READ_WRITE)),
            )
        sharded_root = sharded.root_digest()
        unsharded_root = unsharded.root_digest()
        for index in range(32):
            addr = contract.key_addr(f"user{index}")
            assert sharded.get(addr) == unsharded.get(addr)
            ours = sharded.prov_query(addr, 5, 40)
            theirs = unsharded.prov_query(addr, 5, 40)
            assert ours.versions == theirs.versions
            assert ours.boundary_version == theirs.boundary_version
            # Both proofs verify against their engine's state root.
            assert (
                verify_sharded_provenance(ours, sharded_root, addr_size=ADDR_SIZE)
                == ours.versions
            )
            assert (
                verify_provenance(theirs, unsharded_root, addr_size=ADDR_SIZE)
                == theirs.versions
            )
    finally:
        sharded.close()
        unsharded.close()


# =============================================================================
# sharded proof verification (negative cases)
# =============================================================================

def build_proof_fixture(tmp_path):
    engine = make_sharded(tmp_path / "proof")
    log, pool = put_stream(blocks=80)
    apply_stream(engine, log)
    addr = pool[0]
    result = engine.prov_query(addr, 20, 70)
    return engine, engine.root_digest(), result


def test_tampered_shard_roots_rejected(tmp_path):
    engine, root, result = build_proof_fixture(tmp_path)
    try:
        result.shard_roots[(result.shard_index + 1) % 4] = b"\x13" * 32
        with pytest.raises(VerificationError):
            verify_sharded_provenance(result, root, addr_size=ADDR_SIZE)
    finally:
        engine.close()


def test_wrong_shard_claim_rejected(tmp_path):
    engine, root, result = build_proof_fixture(tmp_path)
    try:
        result.shard_index = (result.shard_index + 1) % 4
        with pytest.raises(VerificationError):
            verify_sharded_provenance(result, root, addr_size=ADDR_SIZE)
    finally:
        engine.close()


def test_stale_composite_root_rejected(tmp_path):
    engine, _root, result = build_proof_fixture(tmp_path)
    try:
        engine.begin_block(engine.current_blk + 1)
        engine.put(b"\x55" * ADDR_SIZE, b"\x66" * 40)
        new_root = engine.commit_block()
        with pytest.raises(VerificationError):
            verify_sharded_provenance(result, new_root, addr_size=ADDR_SIZE)
    finally:
        engine.close()


# =============================================================================
# per-shard crash recovery
# =============================================================================

def crash(engine):
    """Abandon without the clean-close bookkeeping (as the tests of the
    unsharded engine do): merges quiesce, then file handles drop."""
    for shard in engine.shards:
        shard.wait_for_merges()
        shard.workspace.close()


def test_recovery_replays_to_identical_root(tmp_path):
    log, _pool = put_stream(blocks=120, pool_size=48)

    reference = make_sharded(tmp_path / "ref")
    apply_stream(reference, log)
    expected = reference.root_digest()

    crashed = make_sharded(tmp_path / "crash")
    apply_stream(crashed, log)
    checkpoint = crashed.checkpoint_blk
    assert checkpoint > 0  # the workload is large enough to checkpoint
    # Shards checkpoint independently; replay starts at the earliest.
    assert checkpoint == min(s.checkpoint_blk for s in crashed.shards)
    crash(crashed)

    recovered = make_sharded(tmp_path / "crash")
    assert recovered.checkpoint_blk == checkpoint
    apply_stream(recovered, log, from_blk=checkpoint, replay=True)
    assert recovered.root_digest() == expected
    reference.close()
    recovered.close()


def test_recovery_restarts_aborted_shard_merges(tmp_path):
    log, pool = put_stream(blocks=150, pool_size=64, puts_per_block=10)
    engine = make_sharded(tmp_path / "m")
    apply_stream(engine, log)
    merging = [bool(level.merging.runs) for s in engine.shards for level in s.levels]
    assert any(merging)  # a merge was mid-flight somewhere
    crash(engine)

    recovered = make_sharded(tmp_path / "m")
    # Every shard whose manifest recorded a merging group restarted it.
    for shard in recovered.shards:
        for level in shard.levels:
            if level.merging.runs:
                assert level.pending is not None
    recovered.wait_for_merges()
    # And recovered shards still serve reads for their addresses.
    model = {}
    for blk, batch in log:
        for addr, value in batch:
            if blk <= recovered.checkpoint_blk:
                model[addr] = (blk, value)
    hits = sum(1 for addr in pool if recovered.get(addr) is not None)
    assert hits > 0
    recovered.close()


def test_replay_put_skips_durable_blocks(tmp_path):
    log, _pool = put_stream(blocks=120, pool_size=48)
    engine = make_sharded(tmp_path / "skip")
    apply_stream(engine, log)
    crash(engine)

    recovered = make_sharded(tmp_path / "skip")
    checkpoints = [shard.checkpoint_blk for shard in recovered.shards]
    if len(set(checkpoints)) > 1:
        # A block height some shard holds durably and another does not:
        # replaying it must write only to the lagging shards.
        height = max(checkpoints)
        recovered.begin_block(height)
        applied = {index: 0 for index in range(4)}
        for blk, batch in log:
            if blk != height:
                continue
            for addr, value in batch:
                if recovered.replay_put(addr, value):
                    applied[shard_of(addr, 4)] += 1
        for index, shard in enumerate(recovered.shards):
            if shard.checkpoint_blk >= height:
                assert applied[index] == 0
    recovered.close()


# =============================================================================
# lifecycle odds and ends
# =============================================================================

def test_rewind_is_deterministic_across_nodes(tmp_path):
    log, pool = put_stream(blocks=90)
    node_a = make_sharded(tmp_path / "ra")
    node_b = make_sharded(tmp_path / "rb")
    try:
        apply_stream(node_a, log)
        apply_stream(node_b, log)
        dropped_a = node_a.rewind_to(45)
        dropped_b = node_b.rewind_to(45)
        assert dropped_a == dropped_b > 0
        assert node_a.root_digest() == node_b.root_digest()
        model = {}
        for blk, batch in log:
            if blk <= 45:
                for addr, value in batch:
                    model[addr] = value
        for addr in pool:
            assert node_a.get(addr) == model.get(addr)
    finally:
        node_a.close()
        node_b.close()


def test_begin_block_rejects_decreasing_heights(tmp_path):
    from repro.common.errors import StorageError

    engine = make_sharded(tmp_path / "h", num_shards=2)
    try:
        engine.begin_block(5)
        engine.commit_block()
        with pytest.raises(StorageError):
            engine.begin_block(4)
    finally:
        engine.close()


def test_storage_and_levels_aggregate(tmp_path):
    engine = make_sharded(tmp_path / "agg")
    log, _pool = put_stream(blocks=60)
    try:
        apply_stream(engine, log)
        engine.wait_for_merges()
        assert engine.storage_bytes() == sum(s.storage_bytes() for s in engine.shards)
        assert engine.num_disk_levels() == max(s.num_disk_levels() for s in engine.shards)
        assert engine.puts_total == sum(s.puts_total for s in engine.shards)
    finally:
        engine.close()


def test_single_shard_matches_unsharded_engine(tmp_path):
    """N=1 sharding is the unsharded engine plus a hash over one root."""
    from repro.common.hashing import hash_concat

    log, pool = put_stream(blocks=70)
    sharded = make_sharded(tmp_path / "s1", num_shards=1)
    plain = Cole(str(tmp_path / "plain"), COLE_PARAMS)
    try:
        apply_stream(sharded, log)
        apply_stream(plain, log)
        assert sharded.root_digest() == hash_concat([plain.root_digest()])
        for addr in pool:
            assert sharded.get(addr) == plain.get(addr)
    finally:
        sharded.close()
        plain.close()
